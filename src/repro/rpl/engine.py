"""Per-node RPL engine: neighbor table, parent selection, DIO/DAO handling.

The engine is a storing-mode RPL node reduced to the behaviours GT-TSCH needs:

* maintain a neighbor table from received DIOs (rank, GT-TSCH ``l_rx`` option,
  freshness);
* select and keep a preferred parent using MRHOF with ETX and hysteresis;
* advertise its own Rank through Trickle-paced DIOs;
* announce itself to the selected parent with a DAO so the parent learns its
  children set (which GT-TSCH's channel and cell allocation need);
* notify the scheduling function of parent switches and child arrivals.

The evaluation scenarios of the paper use static topologies measured after
the network has formed; to keep runs deterministic, scenario code may
*warm-start* the DODAG (preset parents and ranks) and let RPL maintain it from
there.  Both cold and warm start paths are exercised by the test suite.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.kernel.state import LocalBacking, NodeStateStore, bind_backing
from repro.net.packet import Packet
from repro.rpl.messages import make_dao, make_dio
from repro.rpl.rank import (
    INFINITE_RANK,
    MIN_HOP_RANK_INCREASE,
    MrhofObjectiveFunction,
    RankCalculator,
)
from repro.rpl.trickle import TrickleTimer
from repro.sim.events import EventQueue

if TYPE_CHECKING:
    import random  # reprolint: disable=RL001

    from repro.phy.linkstats import EtxEstimator


@dataclass
class RplConfig:
    """RPL configuration knobs.

    ``dio_interval_min_s`` corresponds to Table II's "minimum DIO interval".
    The paper sets it to 300 s for the measured (steady-state) phase to keep
    control overhead negligible; scenarios in this repository use a small
    value during warm-up so the DODAG forms quickly, then the Trickle doubling
    naturally backs the rate off.
    """

    dio_interval_min_s: float = 4.0
    dio_interval_doublings: int = 8
    dio_redundancy: int = 0
    #: Memoise per-neighbor candidate ranks behind version counters on their
    #: inputs (advertised rank / DODAG id / DODAG version, per-link ETX
    #: state, neighbor-set and children-set membership), so a DIO that
    #: changes nothing settles without re-ranking and evaluations re-score
    #: only dirtied candidates.  Results are bit-identical either way;
    #: ``False`` is the debugging escape hatch that re-scores everything on
    #: every reception, as the seed engine did.
    rank_memo: bool = True
    #: Delay between selecting a parent and sending the DAO announcing it.
    dao_delay_s: float = 1.0
    #: Period of DAO refreshes (keeps the parent's children set alive).
    dao_period_s: float = 60.0
    #: Neighbors not heard from for this long are evicted.
    neighbor_lifetime_s: float = 600.0
    min_hop_rank_increase: int = MIN_HOP_RANK_INCREASE
    parent_switch_threshold: int = 192
    root_rank: int = MIN_HOP_RANK_INCREASE


@dataclass
class RplNeighbor:
    """An entry of the RPL neighbor (candidate parent) table."""

    node_id: int
    rank: int = INFINITE_RANK
    dodag_id: Optional[int] = None
    version: int = 0
    #: GT-TSCH DIO option: reception cells the neighbor offers to children.
    l_rx: int = 0
    last_heard: float = 0.0
    #: Memoised candidate rank (the rank this node would advertise if it
    #: joined through this neighbor) and the input stamp it was computed
    #: under: ``(rank, dodag_id, dodag version, per-link ETX version)``.
    #: ``None`` means never scored; see :meth:`RplEngine._evaluate_parents`.
    cand_rank: int = INFINITE_RANK
    cand_stamp: Optional[tuple] = None


class RplEngine:
    """RPL state machine for one node."""

    def __init__(
        self,
        node_id: int,
        config: RplConfig,
        queue: EventQueue,
        rng: random.Random,
        send_packet: Callable[[Packet], None],
        etx_of: Callable[[int], float],
        is_root: bool = False,
        etx_state: Optional[EtxEstimator] = None,
    ) -> None:
        """
        Parameters
        ----------
        send_packet:
            Callback handing a control packet (DIO broadcast or DAO unicast)
            to the node's MAC queue.
        etx_of:
            Callback returning the current ETX estimate towards a neighbor
            (provided by the MAC's link statistics).
        etx_state:
            The :class:`~repro.phy.linkstats.EtxEstimator` behind ``etx_of``
            (anything exposing ``version`` and ``neighbor_versions``).  Its
            version counters let the engine prove an ETX estimate unchanged
            since the last parent evaluation; without it the rank memo is
            disabled and every reception re-ranks, as the seed engine did.
        """
        self.node_id = node_id
        self.config = config
        self.queue = queue
        self.rng = rng
        self._send_packet = send_packet
        self._etx_of = etx_of
        self._etx_state = etx_state
        self.is_root = is_root
        #: Struct-of-arrays backing row for the node's own advertised rank
        #: and joined flag (see :meth:`bind_state`); assigned before the
        #: ``rank`` / ``preferred_parent`` properties below are first set.
        self._backing = LocalBacking()
        self._row = 0
        #: Rank-memo escape hatch (see :attr:`RplConfig.rank_memo`); may be
        #: flipped at any time -- the memo stamps conservatively re-score on
        #: the next evaluation after re-enabling.
        self.memo_enabled = config.rank_memo
        #: Version counter over every non-ETX input of parent selection:
        #: material neighbor-table updates (advertised rank / DODAG id /
        #: DODAG version, insertion, eviction), children-set membership and
        #: warm-started DODAG state.  Compared against
        #: :attr:`_memo_evaluated_inputs` to prove a reception input-free.
        self._memo_inputs = 0
        self._memo_evaluated_inputs = -1
        self._memo_evaluated_etx = -1
        #: True when the last evaluation left our own rank / preferred parent
        #: untouched: only then is re-running it with unchanged inputs a
        #: provable no-op (our own state is itself a selection input -- e.g.
        #: a rank refresh upward can make rank-rule-filtered neighbors
        #: eligible), so only then may a reception be skipped.
        self._memo_fixed_point = False

        self.objective = MrhofObjectiveFunction(
            min_hop_rank_increase=config.min_hop_rank_increase,
            parent_switch_threshold=config.parent_switch_threshold,
        )
        self.rank_calculator = RankCalculator(
            min_hop_rank_increase=config.min_hop_rank_increase,
            root_rank=config.root_rank,
        )

        self.dodag_id: Optional[int] = node_id if is_root else None
        self.rank = config.root_rank if is_root else INFINITE_RANK
        self.version: int = 0
        self.preferred_parent = None
        self.neighbors: dict[int, RplNeighbor] = {}
        self.children: set[int] = set()

        # Callbacks wired by the node / scheduling function.
        self.on_parent_changed: Optional[Callable[[Optional[int], Optional[int]], None]] = None
        self.on_child_added: Optional[Callable[[int], None]] = None
        self.on_child_removed: Optional[Callable[[int], None]] = None
        #: Provider of scheduler-specific DIO fields (e.g. GT-TSCH ``l_rx``).
        self.dio_extra_provider: Optional[Callable[[], dict]] = None

        self.trickle = TrickleTimer(
            queue,
            rng,
            self._emit_dio,
            i_min=config.dio_interval_min_s,
            doublings=config.dio_interval_doublings,
            redundancy=config.dio_redundancy,
            wheel=queue.wheel("trickle"),
        )
        self._dao_timer_started = False
        #: Diagnostics.
        self.dio_sent = 0
        self.dao_sent = 0
        self.parent_switches = 0
        #: Rank-memo diagnostics: full evaluations run, receptions settled
        #: without re-ranking, and candidate ranks actually recomputed.
        self.parent_evaluations = 0
        self.evaluations_skipped = 0
        self.candidate_recomputes = 0

    # ------------------------------------------------------------------
    # struct-of-arrays view plumbing
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """The node's own advertised rank, stored in the ``adv_rank`` column."""
        return int(self._backing.adv_rank[self._row])

    @rank.setter
    def rank(self, value: int) -> None:
        self._backing.adv_rank[self._row] = value

    @property
    def preferred_parent(self) -> Optional[int]:
        return self._preferred_parent

    @preferred_parent.setter
    def preferred_parent(self, value: Optional[int]) -> None:
        self._preferred_parent = value
        # The joined flag is a pure function of (is_root, parent); keeping it
        # in the store lets the kernel bulk-scan membership without touching
        # engine objects.
        self._backing.joined[self._row] = 1 if (self.is_root or value is not None) else 0

    def bind_state(self, store: NodeStateStore, row: int) -> None:
        """Move the advertised-rank / joined columns onto ``store[row]``."""
        bind_backing(self, store, row, ("adv_rank", "joined"))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start advertising (roots) or listening for a DODAG (other nodes)."""
        if self.is_root:
            self.trickle.start()

    def warm_start(self, parent: Optional[int], rank: int, dodag_id: int) -> None:
        """Preset the DODAG state (used by scenario builders for determinism).

        The node behaves exactly as if it had joined through DIO exchange:
        the parent-switch callback fires, a DAO is scheduled and Trickle
        starts advertising the preset Rank.
        """
        self.dodag_id = dodag_id
        self.rank = rank
        self._memo_inputs += 1
        if self.is_root:
            self.trickle.start()
            return
        old_parent = self.preferred_parent
        self.preferred_parent = parent
        if parent is not None:
            self.neighbors.setdefault(parent, RplNeighbor(node_id=parent))
            self.neighbors[parent].dodag_id = dodag_id
            if self.on_parent_changed is not None:
                self.on_parent_changed(old_parent, parent)
            self._schedule_dao()
        self.trickle.start()

    # ------------------------------------------------------------------
    # message processing
    # ------------------------------------------------------------------
    def process_dio(self, packet: Packet, now: float) -> None:
        """Handle a received DIO broadcast.

        Only *material* changes -- the advertised rank, DODAG id or DODAG
        version, or a brand-new neighbor -- dirty the rank memo; ``l_rx`` and
        freshness updates influence no candidate rank.  A reception that is
        provably input-free (memo clean and no ETX estimate changed since the
        last evaluation) settles without re-ranking anything: re-running the
        evaluation would recompute the same fixed point, fire no callbacks
        and draw no randomness, so skipping it is bit-identical.
        """
        payload = packet.payload
        sender = packet.link_source
        rank = payload.get("rank", INFINITE_RANK)
        dodag_id = payload.get("dodag_id")
        version = payload.get("version", 0)
        neighbor = self.neighbors.get(sender)
        if neighbor is None:
            neighbor = RplNeighbor(node_id=sender)
            self.neighbors[sender] = neighbor
            neighbor.rank = rank
            neighbor.dodag_id = dodag_id
            neighbor.version = version
            self._memo_inputs += 1
        elif (
            rank != neighbor.rank
            or dodag_id != neighbor.dodag_id
            or version != neighbor.version
        ):
            neighbor.rank = rank
            neighbor.dodag_id = dodag_id
            neighbor.version = version
            self._memo_inputs += 1
        neighbor.l_rx = payload.get("l_rx", neighbor.l_rx)
        neighbor.last_heard = now
        self.trickle.hear_consistent()
        if self.is_root:
            return
        if (
            self.memo_enabled
            and self._memo_fixed_point
            and self._etx_state is not None
            and self._memo_evaluated_inputs == self._memo_inputs
            and self._memo_evaluated_etx == self._etx_state.version
        ):
            self.evaluations_skipped += 1
            return
        self._evaluate_parents()

    def process_dao(self, packet: Packet, now: float) -> None:
        """Handle a received DAO: the sender declares us as its parent."""
        child = packet.source
        if child == self.node_id:
            return
        if child not in self.children:
            self.children.add(child)
            # Children are filtered out of parent selection, so membership is
            # an evaluation input even though no candidate rank changes.
            self._memo_inputs += 1
            if self.on_child_added is not None:
                self.on_child_added(child)

    def remove_child(self, child: int) -> None:
        """Forget a child (e.g. it switched to another parent)."""
        if child in self.children:
            self.children.discard(child)
            self._memo_inputs += 1
            if self.on_child_removed is not None:
                self.on_child_removed(child)

    def evict_neighbor(self, node_id: int) -> None:
        """Drop a neighbor from the candidate set (e.g. lifetime expiry).

        The entry's memoised candidate rank disappears with it and the memo
        is dirtied, so the next reception re-evaluates.  Evicting the
        preferred parent detaches first (callback included), then parent
        selection runs immediately to adopt a replacement if one exists.
        """
        if self.neighbors.pop(node_id, None) is None:
            return
        self._memo_inputs += 1
        if node_id == self.preferred_parent:
            self.preferred_parent = None
            self.rank = INFINITE_RANK
            if self.on_parent_changed is not None:
                self.on_parent_changed(node_id, None)
        if not self.is_root:
            self._evaluate_parents()

    # ------------------------------------------------------------------
    # parent selection
    # ------------------------------------------------------------------
    def _candidate_rank(self, neighbor: RplNeighbor) -> int:
        """Rank this node would advertise if it joined through ``neighbor``."""
        if neighbor.rank >= INFINITE_RANK or neighbor.dodag_id is None:
            return INFINITE_RANK
        return self.objective.rank_via(neighbor.rank, self._etx_of(neighbor.node_id))

    def _evaluate_parents(self) -> None:
        """Run MRHOF parent selection over the current neighbor table.

        With the rank memo active, each neighbor's candidate rank is a pure
        function of its stamp ``(advertised rank, DODAG id, DODAG version,
        per-link ETX version)``: only stamp-dirtied candidates are re-scored,
        everyone else reuses the memoised rank.  The selection itself (the
        children filter, the rank rule, hysteresis) always runs live -- it
        depends on this node's own state, which the stamps do not cover.
        """
        self.parent_evaluations += 1
        entry_rank = self.rank
        entry_parent = self.preferred_parent
        best: Optional[RplNeighbor] = None
        best_rank = INFINITE_RANK
        memo = self.memo_enabled and self._etx_state is not None
        etx_versions = self._etx_state.neighbor_versions if memo else None
        for neighbor in self.neighbors.values():
            # A child must never be selected as parent (avoids 2-node loops);
            # neither can a neighbor advertising a rank not better than ours.
            if neighbor.node_id in self.children:
                continue
            if memo:
                stamp = (
                    neighbor.rank,
                    neighbor.dodag_id,
                    neighbor.version,
                    etx_versions.get(neighbor.node_id, 0),
                )
                if stamp != neighbor.cand_stamp:
                    neighbor.cand_rank = self._candidate_rank(neighbor)
                    neighbor.cand_stamp = stamp
                    self.candidate_recomputes += 1
                candidate = neighbor.cand_rank
            else:
                candidate = self._candidate_rank(neighbor)
                self.candidate_recomputes += 1
            if candidate >= INFINITE_RANK:
                continue
            if neighbor.rank >= self.rank and self.preferred_parent is not None:
                # Rank rule: never attach to a neighbor deeper than ourselves.
                if neighbor.node_id != self.preferred_parent:
                    continue
            if candidate < best_rank:
                best_rank = candidate
                best = neighbor

        if best is not None:
            if self.preferred_parent is None:
                self._adopt_parent(best, best_rank)
            elif best.node_id == self.preferred_parent:
                # Refresh our own rank through the (possibly changed) link cost.
                self.rank = best_rank
            elif self.objective.is_worth_switching(self.rank, best_rank):
                self._adopt_parent(best, best_rank)

        if memo:
            self._memo_evaluated_inputs = self._memo_inputs
            self._memo_evaluated_etx = self._etx_state.version
            self._memo_fixed_point = (
                self.rank == entry_rank and self.preferred_parent == entry_parent
            )

    def _adopt_parent(self, neighbor: RplNeighbor, new_rank: int) -> None:
        old_parent = self.preferred_parent
        self.preferred_parent = neighbor.node_id
        self.dodag_id = neighbor.dodag_id
        self.rank = new_rank
        if old_parent is not None:
            self.parent_switches += 1
        if self.on_parent_changed is not None:
            self.on_parent_changed(old_parent, neighbor.node_id)
        self._schedule_dao()
        if not self.trickle.running:
            self.trickle.start()
        else:
            self.trickle.hear_inconsistent()

    # ------------------------------------------------------------------
    # control traffic emission
    # ------------------------------------------------------------------
    def _emit_dio(self) -> None:
        if self.dodag_id is None or self.rank >= INFINITE_RANK:
            return
        extra = self.dio_extra_provider() if self.dio_extra_provider else None
        l_rx = None
        if extra and "l_rx" in extra:
            extra = dict(extra)
            l_rx = extra.pop("l_rx")
        packet = make_dio(
            sender=self.node_id,
            dodag_id=self.dodag_id,
            rank=self.rank,
            version=self.version,
            l_rx=l_rx,
            extra=extra,
            now=self.queue.now,
        )
        self.dio_sent += 1
        self._send_packet(packet)

    def _schedule_dao(self) -> None:
        self.queue.schedule_in(self.config.dao_delay_s, self._emit_dao, label="rpl-dao")
        if not self._dao_timer_started:
            self._dao_timer_started = True
            self.queue.schedule_in(self.config.dao_period_s, self._periodic_dao, label="rpl-dao-refresh")

    def _periodic_dao(self) -> None:
        self._emit_dao()
        self.queue.schedule_in(self.config.dao_period_s, self._periodic_dao, label="rpl-dao-refresh")

    def _emit_dao(self) -> None:
        if self.preferred_parent is None or self.dodag_id is None:
            return
        packet = make_dao(
            sender=self.node_id,
            parent=self.preferred_parent,
            dodag_id=self.dodag_id,
            rank=self.rank,
            now=self.queue.now,
        )
        self.dao_sent += 1
        self._send_packet(packet)

    # ------------------------------------------------------------------
    # queries used by schedulers and the game model
    # ------------------------------------------------------------------
    def parent_l_rx(self) -> int:
        """The parent's advertised number of reception cells (``l^rx_{p_i}``)."""
        if self.preferred_parent is None:
            return 0
        neighbor = self.neighbors.get(self.preferred_parent)
        return neighbor.l_rx if neighbor else 0

    def normalised_rank(self) -> float:
        """Eq. (3) normalised Rank of this node."""
        return self.rank_calculator.normalised_rank(self.rank)

    def hop_distance(self) -> float:
        """ETX-weighted hop distance to the root implied by the Rank."""
        return self.rank_calculator.hop_distance(self.rank)

    def is_joined(self) -> bool:
        """Whether the node is part of a DODAG (root or has a parent)."""
        return self.is_root or self.preferred_parent is not None
