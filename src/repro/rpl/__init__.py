"""RPL routing (RFC 6550) for Low-power Lossy Networks.

GT-TSCH "tightly interacts with the RPL routing protocol": it reads the
node's Rank and preferred parent, learns the children set, and piggybacks the
parent's number of reception cells (``l^rx``) on DIO messages.  This package
provides the pieces of RPL the scheduler depends on:

* :mod:`repro.rpl.rank` -- Rank arithmetic and the MRHOF objective function
  (ETX-based, per Table II of the paper).
* :mod:`repro.rpl.trickle` -- the Trickle timer driving DIO emission.
* :mod:`repro.rpl.messages` -- DIO / DAO payload construction helpers.
* :mod:`repro.rpl.engine` -- the per-node RPL state machine: neighbor table,
  parent selection and switching, children tracking, DIO/DAO processing.
"""

from repro.rpl.engine import RplConfig, RplEngine, RplNeighbor
from repro.rpl.messages import make_dao, make_dio
from repro.rpl.rank import (
    INFINITE_RANK,
    MIN_HOP_RANK_INCREASE,
    MrhofObjectiveFunction,
    RankCalculator,
)
from repro.rpl.trickle import TrickleTimer

__all__ = [
    "INFINITE_RANK",
    "MIN_HOP_RANK_INCREASE",
    "MrhofObjectiveFunction",
    "RankCalculator",
    "TrickleTimer",
    "make_dio",
    "make_dao",
    "RplConfig",
    "RplEngine",
    "RplNeighbor",
]
