"""RPL Rank arithmetic and the MRHOF objective function.

The Rank encodes a node's logical distance to the DODAG root.  The paper's
evaluation uses MRHOF (the Minimum Rank with Hysteresis Objective Function,
RFC 6719) with the ETX metric, which is also Contiki-NG's default: a node's
Rank is its parent's Rank plus ``ETX x MinHopRankIncrease``.

GT-TSCH's utility function (Eqs. (2)-(3)) uses the normalised Rank

    Rank~_i = MinHopRankIncrease / (Rank_i - Rank_min)

so that nodes closer to the root obtain more profit per allocated Tx cell --
the helpers here expose both raw and normalised quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: RFC 6550 default MinHopRankIncrease: the minimum Rank increase per hop.
MIN_HOP_RANK_INCREASE = 256

#: Rank advertised by a node that is not part of any DODAG.
INFINITE_RANK = 0xFFFF

#: MRHOF hysteresis (RFC 6719 / Contiki-NG PARENT_SWITCH_THRESHOLD): a
#: candidate parent must improve the path cost by at least this much before
#: the node switches, which prevents parent flapping on borderline links.
DEFAULT_PARENT_SWITCH_THRESHOLD = 192

#: MRHOF caps the link metric used in Rank computation (RFC 6719 MAX_LINK_METRIC).
MAX_LINK_METRIC_ETX = 4.0


@dataclass
class MrhofObjectiveFunction:
    """MRHOF with the ETX metric.

    ``rank_via(parent_rank, etx)`` computes the Rank a node would advertise if
    it selected a parent with ``parent_rank`` over a link with the given ETX.
    """

    min_hop_rank_increase: int = MIN_HOP_RANK_INCREASE
    parent_switch_threshold: int = DEFAULT_PARENT_SWITCH_THRESHOLD
    max_link_metric: float = MAX_LINK_METRIC_ETX

    def link_cost(self, etx: float) -> float:
        """Rank units contributed by a link with the given ETX."""
        capped = min(max(etx, 1.0), self.max_link_metric)
        return capped * self.min_hop_rank_increase

    def rank_via(self, parent_rank: int, etx: float) -> int:
        """Rank obtained by joining through a parent with ``parent_rank``."""
        if parent_rank >= INFINITE_RANK:
            return INFINITE_RANK
        rank = parent_rank + self.link_cost(etx)
        return min(int(round(rank)), INFINITE_RANK)

    def is_worth_switching(self, current_rank: int, candidate_rank: int) -> bool:
        """MRHOF hysteresis test for switching preferred parents."""
        if current_rank >= INFINITE_RANK:
            return candidate_rank < INFINITE_RANK
        return candidate_rank + self.parent_switch_threshold < current_rank


class RankCalculator:
    """Helpers for the Rank-derived quantities used by the GT-TSCH game."""

    def __init__(
        self,
        min_hop_rank_increase: int = MIN_HOP_RANK_INCREASE,
        root_rank: int = MIN_HOP_RANK_INCREASE,
    ) -> None:
        """``root_rank`` is the Rank advertised by the DODAG root.

        RFC 6550 allows any value; Contiki-NG roots advertise
        ``MinHopRankIncrease`` so that Rank/MinHopRankIncrease equals the
        (ETX-weighted) hop distance, and the paper's Fig. 1 labels the root
        with Rank 0 after normalisation.  The normalised Rank of Eq. (3) only
        depends on the difference ``Rank_i - Rank_min``.
        """
        self.min_hop_rank_increase = min_hop_rank_increase
        self.root_rank = root_rank

    def hop_distance(self, rank: int) -> float:
        """Approximate hop distance to the root implied by a Rank."""
        if rank >= INFINITE_RANK:
            return float("inf")
        return max(0.0, (rank - self.root_rank) / self.min_hop_rank_increase)

    def normalised_rank(self, rank: int, rank_min: Optional[int] = None) -> float:
        """Eq. (3): ``Rank~_i = MinHopRankIncrease / (Rank_i - Rank_min)``.

        Defined for non-root nodes (``rank > rank_min``).  Root nodes never
        request Tx cells (they have no parent), so the value is irrelevant for
        them; for robustness the root case returns the maximum weight (1.0
        hop equivalent), and unreachable nodes return 0.
        """
        rank_min = self.root_rank if rank_min is None else rank_min
        if rank >= INFINITE_RANK:
            return 0.0
        difference = rank - rank_min
        if difference <= 0:
            return 1.0
        return self.min_hop_rank_increase / difference
