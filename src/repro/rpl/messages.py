"""RPL control message construction.

Only the fields consumed by the simulated stack are modelled.  GT-TSCH
extends the DIO with one option carrying the sender's number of unicast
reception cells (``l^rx``), which children use as the upper bound of their
strategy set in the game (Section VII of the paper): that option travels in
the ``l_rx`` payload field here.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType


def make_dio(
    sender: int,
    dodag_id: int,
    rank: int,
    version: int = 0,
    l_rx: Optional[int] = None,
    extra: Optional[dict[str, Any]] = None,
    now: float = 0.0,
) -> Packet:
    """Build a DODAG Information Object broadcast frame.

    Parameters
    ----------
    sender:
        Node id of the advertising node.
    dodag_id:
        Identifier of the DODAG (the root's node id in this model).
    rank:
        The sender's advertised Rank.
    version:
        DODAG version number (bumped by the root on global repair).
    l_rx:
        GT-TSCH option: the sender's number of unicast reception cells
        available to children (``l^rx_{p_i}`` in the game model).
    extra:
        Additional scheduler-specific fields to piggyback.
    """
    payload: dict[str, Any] = {
        "dodag_id": dodag_id,
        "rank": rank,
        "version": version,
    }
    if l_rx is not None:
        payload["l_rx"] = int(l_rx)
    if extra:
        payload.update(extra)
    return Packet(
        ptype=PacketType.DIO,
        source=sender,
        destination=BROADCAST_ADDRESS,
        link_source=sender,
        link_destination=BROADCAST_ADDRESS,
        payload=payload,
        created_at=now,
        size_bytes=76,
    )


def make_dao(
    sender: int,
    parent: int,
    dodag_id: int,
    rank: int,
    now: float = 0.0,
) -> Packet:
    """Build a Destination Advertisement Object unicast to the parent.

    In storing-mode RPL the DAO lets the parent learn its children (and the
    root learn downward routes).  GT-TSCH relies on this to maintain the
    children set ``cs_i`` used in channel and cell allocation.
    """
    payload: dict[str, Any] = {
        "dodag_id": dodag_id,
        "rank": rank,
    }
    return Packet(
        ptype=PacketType.DAO,
        source=sender,
        destination=parent,
        link_source=sender,
        link_destination=parent,
        payload=payload,
        created_at=now,
        size_bytes=60,
    )
