"""Trickle timer (RFC 6206) used to pace RPL DIO transmissions.

Trickle adapts the DIO emission rate to network conditions: the interval
doubles from ``i_min`` up to ``i_min * 2**doublings`` while the network is
consistent and resets to ``i_min`` when an inconsistency (topology change) is
detected.  Within each interval the transmission is scheduled at a random
point of the second half and suppressed if at least ``k`` consistent messages
were already heard.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event, EventQueue, TimerWheel

if TYPE_CHECKING:
    import random  # reprolint: disable=RL001


class TrickleTimer:
    """A single RFC 6206 Trickle instance driving one message type."""

    def __init__(
        self,
        queue: EventQueue,
        rng: random.Random,
        callback: Callable[[], None],
        i_min: float = 4.0,
        doublings: int = 8,
        redundancy: int = 10,
        wheel: Optional[TimerWheel] = None,
    ) -> None:
        """
        Parameters
        ----------
        queue:
            Event queue providing the time base.
        rng:
            ``random.Random`` stream for the in-interval jitter.
        callback:
            Invoked when the timer decides to transmit (i.e. the message was
            not suppressed by redundancy).
        i_min:
            Minimum interval in seconds.  Table II of the paper configures
            the *minimum DIO interval* explicitly; scenario code passes it
            through :class:`repro.rpl.engine.RplConfig`.
        doublings:
            Number of interval doublings (``i_max = i_min * 2**doublings``).
        redundancy:
            Suppression constant ``k``; 0 disables suppression.
        wheel:
            Optional cohort wheel the interval/fire events are placed on
            (every node's Trickle instance shares it); firing times and
            order are identical to flat scheduling on ``queue``.
        """
        if i_min <= 0:
            raise ValueError("i_min must be positive")
        if doublings < 0:
            raise ValueError("doublings must be non-negative")
        self.queue = queue
        self._scheduler = wheel if wheel is not None else queue
        self.rng = rng
        self.callback = callback
        self.i_min = i_min
        self.i_max = i_min * (2 ** doublings)
        self.redundancy = redundancy
        self.interval = i_min
        self.counter = 0
        self._fire_event: Optional[Event] = None
        self._interval_event: Optional[Event] = None
        self._running = False
        #: Optional phase observer: called with the absolute time of the next
        #: scheduled DIO fire decision whenever an interval begins, and with
        #: ``-1.0`` when the timer stops.  Mirrors the Trickle phase into the
        #: struct-of-arrays node-state columns (see :mod:`repro.kernel.state`).
        self.on_phase: Optional[Callable[[float], None]] = None
        #: Diagnostics: transmissions vs suppressions.
        self.transmissions = 0
        self.suppressions = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Start the timer with the minimum interval."""
        if self._running:
            return
        self._running = True
        self.interval = self.i_min
        self._begin_interval()

    def stop(self) -> None:
        self._running = False
        for event in (self._fire_event, self._interval_event):
            if event is not None:
                event.cancel()
        self._fire_event = None
        self._interval_event = None
        if self.on_phase is not None:
            self.on_phase(-1.0)

    def hear_consistent(self) -> None:
        """Record a consistent message heard from a neighbor (suppression input)."""
        self.counter += 1

    def hear_inconsistent(self) -> None:
        """Reset to the minimum interval upon detecting an inconsistency."""
        if not self._running:
            return
        if self.interval > self.i_min:
            self.interval = self.i_min
            self._cancel_pending()
            self._begin_interval()

    def reset(self) -> None:
        """External reset (e.g. a new DODAG version)."""
        self.hear_inconsistent()

    # ------------------------------------------------------------------
    def _cancel_pending(self) -> None:
        for event in (self._fire_event, self._interval_event):
            if event is not None:
                event.cancel()

    def _begin_interval(self) -> None:
        self.counter = 0
        # Fire somewhere in the second half of the interval.
        offset = self.interval / 2.0 + self.rng.random() * (self.interval / 2.0)
        self._fire_event = self._scheduler.schedule_in(offset, self._fire, label="trickle-fire")
        self._interval_event = self._scheduler.schedule_in(
            self.interval, self._end_interval, label="trickle-interval"
        )
        if self.on_phase is not None:
            self.on_phase(self._fire_event.time)

    def _fire(self) -> None:
        if not self._running:
            return
        if self.redundancy and self.counter >= self.redundancy:
            self.suppressions += 1
            return
        self.transmissions += 1
        self.callback()

    def _end_interval(self) -> None:
        if not self._running:
            return
        self.interval = min(self.interval * 2.0, self.i_max)
        self._begin_interval()
