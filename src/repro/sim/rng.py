"""Named, seeded random-number streams.

A simulation mixes several independent sources of randomness: link-level
packet loss, CSMA/CA back-off draws, application traffic jitter, topology
generation, Trickle timer jitter, and so on.  Seeding a single global
``random.Random`` makes results depend on the *order* in which layers happen
to draw numbers, which is brittle: adding one extra draw anywhere perturbs
every later draw.

``RngRegistry`` instead derives one independent stream per *name* from a
single scenario seed, so each subsystem owns its own stream and results stay
reproducible under refactoring.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of named :class:`random.Random` streams derived from one seed.

    Examples
    --------
    >>> rngs = RngRegistry(seed=42)
    >>> phy_rng = rngs.stream("phy")
    >>> traffic_rng = rngs.stream("traffic.node3")
    >>> rngs.stream("phy") is phy_rng   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it on demand."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def _derive(self, name: str) -> int:
        """Derive a 64-bit sub-seed from the scenario seed and the stream name."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def reset(self) -> None:
        """Drop all cached streams so they are re-created from the seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
