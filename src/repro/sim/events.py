"""Event queue, timer wheels and periodic timers for the simulator.

The TSCH slot loop is the primary driver of simulated time, but many protocol
behaviours are naturally expressed as timers in seconds: application packet
generation periods, the RPL Trickle timer, the EB period, 6P transaction
timeouts and the GT-TSCH load-balancing period.  Those are scheduled on an
:class:`EventQueue` and drained at every slot boundary by the network loop.

At hundreds of nodes the periodic protocol timers dominate the queue: every
node contributes an EB event, a traffic event and a Trickle pair, so the heap
holds O(N) entries and every (re)schedule sifts through all of them.  A
:class:`TimerWheel` groups one family of same-period, phase-offset timers
into its own small heap behind a single logical head, so the main heap stays
O(families) deep while firing order -- including ties between events at the
same instant, which fire in global creation order -- is exactly that of the
flat queue.  :class:`PeriodicTimer` members may additionally carry an *idle
probe* that settles provably-inert ticks (EB period of a node that has not
joined, traffic tick during the drain phase) without invoking the protocol
callback, keeping the rng/ordering draws of a fired tick.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    import random  # reprolint: disable=RL001


class _QueueEntry:
    """Heap entry ordered by ``(time, sequence)``; the event never compares."""

    __slots__ = ("time", "sequence", "event")

    def __init__(self, time: float, sequence: int, event: "Event") -> None:
        self.time = time
        self.sequence = sequence
        self.event = event

    def __lt__(self, other: "_QueueEntry") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _QueueEntry):
            return NotImplemented
        return (self.time, self.sequence) == (other.time, other.sequence)

    __hash__ = None  # type: ignore[assignment]


def _validate_rearm_delay(delay: float) -> None:
    """Reject non-finite and negative re-arm delays.

    ``schedule_in`` documents a clamp for negative delays (a timer computed
    from stale state fires immediately); ``reschedule_in`` has no such
    excuse -- its only callers are periodic timers whose period draw must be
    a finite, non-negative number, so anything else is a bug upstream and is
    surfaced instead of silently clamped.
    """
    if not math.isfinite(delay):
        raise ValueError("delay must be finite")
    if delay < 0:
        raise ValueError("delay must be non-negative")


class Event:
    """A single scheduled callback.

    Events are created through :meth:`EventQueue.schedule` and can be
    cancelled; a cancelled event is skipped when popped, and the owning queue
    compacts its heap once cancelled entries outnumber live ones (Trickle
    resets and 6P timeout cancellations would otherwise accumulate for the
    whole run).
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "label", "_queue")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.label = label
        #: Owning queue, set by :meth:`EventQueue.schedule`; lets the queue
        #: keep an exact count of cancelled-but-still-heaped entries.
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so it will be silently dropped when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._on_event_cancelled()

    def fire(self) -> Any:
        """Invoke the callback (used by the queue; not normally called directly)."""
        if self.kwargs:
            return self.callback(*self.args, **self.kwargs)
        if self.args:
            return self.callback(*self.args)
        # The overwhelmingly common shape (periodic timer ticks): skip the
        # empty argument spreads.
        return self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4f}, {self.label or self.callback!r}, {state})"


class EventQueue:
    """A monotonic priority queue of :class:`Event` objects.

    Events scheduled for the same instant fire in insertion order, which keeps
    behaviour deterministic (important for reproducibility of the benchmark
    figures).
    """

    #: Compaction never triggers below this heap size (the bookkeeping is not
    #: worth it for a handful of entries).
    COMPACT_MIN_SIZE = 16

    __slots__ = (
        "_heap",
        "_counter",
        "_now",
        "_cancelled",
        "compactions",
        "use_wheels",
        "_wheel_map",
        "_wheels",
    )

    def __init__(self, use_wheels: bool = True) -> None:
        self._heap: list[_QueueEntry] = []
        self._counter = itertools.count()
        self._now = 0.0
        #: Number of cancelled events still sitting in the heap.
        self._cancelled = 0
        #: Total number of heap compactions performed (diagnostics / tests).
        self.compactions = 0
        #: When False, :meth:`wheel` returns ``None`` and every timer family
        #: falls back to flat scheduling on this queue -- the reference
        #: configuration the wheel equivalence tests compare against.
        self.use_wheels = use_wheels
        self._wheel_map: dict[str, "TimerWheel"] = {}
        self._wheels: list["TimerWheel"] = []

    @property
    def now(self) -> float:
        """Time of the most recently processed instant."""
        return self._now

    def __len__(self) -> int:
        live = len(self._heap) - self._cancelled
        for wheel in self._wheels:
            live += len(wheel)
        return live

    def wheel(self, name: str) -> Optional["TimerWheel"]:
        """Get or create the cohort wheel ``name`` (``None`` when disabled).

        Timers of one family (same nominal period, phase-offset across nodes)
        share a wheel; callers pass the result straight to
        :class:`PeriodicTimer` / :class:`~repro.rpl.trickle.TrickleTimer`,
        which fall back to flat scheduling when it is ``None``.
        """
        if not self.use_wheels:
            return None
        wheel = self._wheel_map.get(name)
        if wheel is None:
            wheel = TimerWheel(self, name)
            self._wheel_map[name] = wheel
            self._wheels.append(wheel)
        return wheel

    def stats(self) -> dict:
        """Live/cancelled entry counts and per-wheel cohort sizes."""
        return {
            "live": len(self),
            "heap_entries": len(self._heap),
            "cancelled_in_heap": self._cancelled,
            "compactions": self.compactions,
            "wheels": {
                wheel.name: {
                    "members": len(wheel),
                    "fired": wheel.fired,
                    "compactions": wheel.compactions,
                }
                for wheel in self._wheels
            },
        }

    def _on_event_cancelled(self) -> None:
        """A live heap entry was cancelled; compact when they dominate."""
        self._cancelled += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap in one pass.

        Entries order by ``(time, sequence)``, so filtering the backing list
        and re-heapifying preserves both the firing order and the
        insertion-order tie-break of live events.
        """
        for entry in self._heap:
            if entry.event.cancelled:
                entry.event._queue = None
        self._heap = [entry for entry in self._heap if not entry.event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute ``time`` seconds."""
        if time < self._now:
            # Clamp to "now": a timer computed from stale state should fire
            # immediately rather than silently travel back in time.
            time = self._now
        event = Event(time, callback, args, kwargs, label=label)
        event._queue = self
        heapq.heappush(self._heap, _QueueEntry(time, next(self._counter), event))
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds after the current time.

        Negative delays are clamped to "now"; a NaN delay is rejected (the
        silent ``max(0.0, nan)`` clamp used to evaluate to NaN-or-zero
        depending on argument order, scheduling the event at an arbitrary
        instant).
        """
        if delay != delay:
            raise ValueError("delay must not be NaN")
        return self.schedule(self._now + max(0.0, delay), callback, *args, label=label, **kwargs)

    def reschedule_in(self, event: Event, delay: float) -> Event:
        """Re-arm a fired (popped, uncancelled) event ``delay`` seconds out.

        Self-rescheduling periodic timers re-heap the same :class:`Event`
        instead of allocating a fresh one every tick; the sequence number is
        drawn from the same counter at the same point, so firing order is
        exactly that of a fresh ``schedule_in``.
        """
        _validate_rearm_delay(delay)
        time = self._now + delay
        event.time = time
        event._queue = self
        heapq.heappush(self._heap, _QueueEntry(time, next(self._counter), event))
        return event

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest pending event, if any."""
        heap = self._heap
        while heap and heap[0].event.cancelled:
            entry = heapq.heappop(heap)
            entry.event._queue = None
            self._cancelled -= 1
        best = heap[0].time if heap else None
        for wheel in self._wheels:
            key = wheel._head_key()
            if key is not None and (best is None or key[0] < best):
                best = key[0]
        return best

    def run_until(self, time: float) -> int:
        """Fire every pending event with ``event.time <= time``.

        Returns the number of events fired.  Events scheduled by callbacks
        during the run are also fired if they fall within the window.  Wheel
        members interleave with flat events by ``(time, creation order)``,
        exactly as if they lived in the flat heap.
        """
        fired = 0
        heap = self._heap
        wheels = self._wheels
        while True:
            while heap and heap[0].event.cancelled:
                entry = heapq.heappop(heap)
                entry.event._queue = None
                self._cancelled -= 1
            if heap:
                head = heap[0]
                best_key: Optional[tuple[float, int]] = (head.time, head.sequence)
            else:
                best_key = None
            best_wheel: Optional["TimerWheel"] = None
            for wheel in wheels:
                key = wheel._head_key()
                if key is not None and (best_key is None or key < best_key):
                    best_key = key
                    best_wheel = wheel
            if best_key is None or best_key[0] > time:
                break
            if best_wheel is not None:
                best_wheel._fire_head()
            else:
                entry = heapq.heappop(heap)
                entry.event._queue = None
                self._now = entry.time
                entry.event.fire()
            fired += 1
        if time > self._now:
            self._now = time
        return fired

    def advance_to(self, time: float) -> None:
        """Advance the queue clock without firing anything.

        The slot-skipping kernel calls this after leaping over idle slots so
        ``now`` matches what slot-by-slot :meth:`run_until` calls would have
        left behind.  Must only be used for instants known to precede every
        pending event.
        """
        if time > self._now:
            self._now = time

    def clear(self) -> None:
        """Drop all pending events and reset the clock to zero."""
        for entry in self._heap:
            entry.event._queue = None
        self._heap.clear()
        self._cancelled = 0
        self._now = 0.0
        for wheel in self._wheels:
            wheel.clear()


class TimerWheel:
    """One cohort of timer events behind a single logical queue head.

    A wheel is a sub-queue of the owning :class:`EventQueue`: members are
    plain ``(time, sequence, event)`` tuples in a private heap, with sequence
    numbers drawn from the queue's global counter at exactly the points a
    flat ``schedule_in`` would draw them.  The queue's ``peek_time`` /
    ``run_until`` merge every wheel head with the flat heap, so the total
    firing order -- including same-instant ties -- is bit-identical to flat
    scheduling while the main heap no longer scales with the node count.
    """

    #: Compaction never triggers below this heap size.
    COMPACT_MIN_SIZE = 16

    __slots__ = (
        "queue",
        "name",
        "_heap",
        "_cancelled",
        "fired",
        "compactions",
        "_head",
        "_head_dirty",
    )

    def __init__(self, queue: EventQueue, name: str) -> None:
        self.queue = queue
        self.name = name
        self._heap: list[tuple[float, int, Event]] = []
        self._cancelled = 0
        #: Members fired so far (diagnostics, surfaced by EventQueue.stats()).
        self.fired = 0
        self.compactions = 0
        #: Memoised earliest live (time, sequence), recomputed only after a
        #: mutation: ``run_until`` re-reads every wheel head once per fired
        #: event, so serving the unchanged ones from cache keeps the merge
        #: O(changed wheels) instead of O(wheels x members inspected).
        self._head: Optional[tuple[float, int]] = None
        self._head_dirty = True

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    # ------------------------------------------------------------------
    # EventQueue-compatible scheduling interface (used by timers)
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule a member event at absolute ``time`` seconds."""
        queue = self.queue
        if time < queue._now:
            time = queue._now
        event = Event(time, callback, args, kwargs, label=label)
        event._queue = self
        heapq.heappush(self._heap, (time, next(queue._counter), event))
        self._head_dirty = True
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule a member ``delay`` seconds after the queue's current time."""
        if delay != delay:
            raise ValueError("delay must not be NaN")
        return self.schedule(
            self.queue._now + max(0.0, delay), callback, *args, label=label, **kwargs
        )

    def reschedule_in(self, event: Event, delay: float) -> Event:
        """Re-arm a fired (popped, uncancelled) member (see EventQueue's)."""
        _validate_rearm_delay(delay)
        queue = self.queue
        time = queue._now + delay
        event.time = time
        event._queue = self
        heapq.heappush(self._heap, (time, next(queue._counter), event))
        self._head_dirty = True
        return event

    # ------------------------------------------------------------------
    # head management (driven by the owning EventQueue)
    # ------------------------------------------------------------------
    def _head_key(self) -> Optional[tuple[float, int]]:
        """(time, sequence) of the earliest live member, if any (memoised)."""
        if not self._head_dirty:
            return self._head
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _, _, event = heapq.heappop(heap)
            event._queue = None
            self._cancelled -= 1
        self._head = (heap[0][0], heap[0][1]) if heap else None
        self._head_dirty = False
        return self._head

    def head_time(self) -> Optional[float]:
        key = self._head_key()
        return None if key is None else key[0]

    def _fire_head(self) -> None:
        """Pop and fire the earliest member (caller checked it is due)."""
        time, _, event = heapq.heappop(self._heap)
        self._head_dirty = True
        event._queue = None
        self.queue._now = time
        self.fired += 1
        event.fire()

    # ------------------------------------------------------------------
    # bookkeeping (mirrors EventQueue's cancellation/compaction policy)
    # ------------------------------------------------------------------
    def _on_event_cancelled(self) -> None:
        self._cancelled += 1
        self._head_dirty = True
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        for _, _, event in self._heap:
            if event.cancelled:
                event._queue = None
        self._heap = [item for item in self._heap if not item[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._head_dirty = True
        self.compactions += 1

    def clear(self) -> None:
        for _, _, event in self._heap:
            event._queue = None
        self._heap.clear()
        self._cancelled = 0
        self._head_dirty = True


class PeriodicTimer:
    """A self-rescheduling timer built on :class:`EventQueue`.

    Used for the EB period, the application traffic generator and the
    GT-TSCH load-balancing period.  The callback may return ``False`` to stop
    the timer; any other return value keeps it running.
    """

    __slots__ = (
        "queue",
        "period",
        "callback",
        "label",
        "jitter",
        "rng",
        "idle_probe",
        "on_phase",
        "_period_fn",
        "_scheduler",
        "settled_ticks",
        "_event",
        "_running",
        "_start_offset",
    )

    def __init__(
        self,
        queue: EventQueue,
        period: float,
        callback: Callable[[], Any],
        start_offset: Optional[float] = None,
        label: str = "",
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        wheel: Optional[TimerWheel] = None,
        idle_probe: Optional[Callable[[], bool]] = None,
        period_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        """``jitter`` (0..1) randomises each period by ``±jitter*period``.

        Periodic protocol timers (Enhanced Beacons in particular) must not be
        phase-locked across nodes: two nodes whose identical periods happen to
        align would contend for the same broadcast cell at every firing,
        forever.  A small jitter breaks that symmetry, exactly as Contiki-NG
        jitters its EB timer.

        ``wheel`` places the timer's events on a cohort wheel instead of the
        flat queue (same firing times and order either way).  ``idle_probe``
        is consulted at each tick: when it returns True the tick is settled
        without invoking ``callback`` -- the probe must only claim ticks whose
        callback would provably have no effect (it may bulk-apply trivial
        counters itself).  ``period_fn`` overrides the jitter model with an
        arbitrary per-tick period draw (Poisson traffic, legacy jitter
        formulas); it wins over ``jitter``.
        """
        if not math.isfinite(period) or period <= 0:
            raise ValueError("period must be positive and finite")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if jitter > 0.0 and rng is None:
            raise ValueError("a jittered timer needs an rng")
        self.queue = queue
        self.period = period
        self.callback = callback
        self.label = label
        self.jitter = jitter
        self.rng = rng
        self.idle_probe = idle_probe
        #: Optional phase observer: called with the absolute next-fire time
        #: whenever the timer (re)arms, and with ``-1.0`` when it stops.  The
        #: struct-of-arrays kernel uses it to mirror per-node timer phases
        #: into the node-state columns (see :mod:`repro.kernel.state`).
        self.on_phase: Optional[Callable[[float], None]] = None
        self._period_fn = period_fn
        self._scheduler = wheel if wheel is not None else queue
        #: Ticks settled by the idle probe instead of fired (diagnostics).
        self.settled_ticks = 0
        self._event: Optional[Event] = None
        self._running = False
        self._start_offset = period if start_offset is None else start_offset

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Arm the timer; the first firing happens after ``start_offset`` seconds."""
        if self._running:
            return
        self._running = True
        self._event = self._scheduler.schedule_in(self._start_offset, self._tick, label=self.label)
        if self.on_phase is not None:
            self.on_phase(self._event.time)

    def stop(self) -> None:
        """Disarm the timer."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if self.on_phase is not None:
            self.on_phase(-1.0)

    def _next_period(self) -> float:
        if self._period_fn is not None:
            period = self._period_fn()
            # An arbitrary per-tick draw (Poisson traffic, legacy jitter
            # formulas) is the one place a NaN/inf/negative period could
            # enter the scheduler; fail here, at the source, rather than
            # corrupt the heap invariant or spin at the current instant.
            if not math.isfinite(period) or period < 0:
                raise ValueError("period_fn must return a finite, non-negative period")
            return period
        if self.jitter <= 0.0:
            return self.period
        return self.period * (1.0 + self.jitter * (2.0 * self.rng.random() - 1.0))

    def _tick(self) -> None:
        if not self._running:
            return
        probe = self.idle_probe
        if probe is not None and probe():
            # Provably-inert tick: skip the protocol callback but keep the
            # cadence -- the reschedule below draws the same rng/sequence
            # numbers a fired tick would, so settling is unobservable.
            self.settled_ticks += 1
        else:
            result = self.callback()
            if result is False:
                self._running = False
                if self.on_phase is not None:
                    self.on_phase(-1.0)
                return
        event = self._event
        if event is not None and not event.cancelled:
            # The tick runs as this event's callback, so it has just been
            # popped: re-heap the same object instead of allocating one per
            # period (the sequence draw and firing order are unchanged).
            self._scheduler.reschedule_in(event, self._next_period())
        else:
            event = self._event = self._scheduler.schedule_in(
                self._next_period(), self._tick, label=self.label
            )
        if self.on_phase is not None:
            self.on_phase(event.time)
