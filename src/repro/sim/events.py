"""Event queue and periodic timers for the slot-synchronous simulator.

The TSCH slot loop is the primary driver of simulated time, but many protocol
behaviours are naturally expressed as timers in seconds: application packet
generation periods, the RPL Trickle timer, the EB period, 6P transaction
timeouts and the GT-TSCH load-balancing period.  Those are scheduled on an
:class:`EventQueue` and drained at every slot boundary by the network loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A single scheduled callback.

    Events are created through :meth:`EventQueue.schedule` and can be
    cancelled; a cancelled event is skipped when popped, and the owning queue
    compacts its heap once cancelled entries outnumber live ones (Trickle
    resets and 6P timeout cancellations would otherwise accumulate for the
    whole run).
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "label", "_queue")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.label = label
        #: Owning queue, set by :meth:`EventQueue.schedule`; lets the queue
        #: keep an exact count of cancelled-but-still-heaped entries.
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so it will be silently dropped when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._on_event_cancelled()

    def fire(self) -> Any:
        """Invoke the callback (used by the queue; not normally called directly)."""
        return self.callback(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4f}, {self.label or self.callback!r}, {state})"


class EventQueue:
    """A monotonic priority queue of :class:`Event` objects.

    Events scheduled for the same instant fire in insertion order, which keeps
    behaviour deterministic (important for reproducibility of the benchmark
    figures).
    """

    #: Compaction never triggers below this heap size (the bookkeeping is not
    #: worth it for a handful of entries).
    COMPACT_MIN_SIZE = 16

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._now = 0.0
        #: Number of cancelled events still sitting in the heap.
        self._cancelled = 0
        #: Total number of heap compactions performed (diagnostics / tests).
        self.compactions = 0

    @property
    def now(self) -> float:
        """Time of the most recently processed instant."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def _on_event_cancelled(self) -> None:
        """A live heap entry was cancelled; compact when they dominate."""
        self._cancelled += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap in one pass.

        Entries order by ``(time, sequence)``, so filtering the backing list
        and re-heapifying preserves both the firing order and the
        insertion-order tie-break of live events.
        """
        for entry in self._heap:
            if entry.event.cancelled:
                entry.event._queue = None
        self._heap = [entry for entry in self._heap if not entry.event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute ``time`` seconds."""
        if time < self._now:
            # Clamp to "now": a timer computed from stale state should fire
            # immediately rather than silently travel back in time.
            time = self._now
        event = Event(time, callback, args, kwargs, label=label)
        event._queue = self
        heapq.heappush(self._heap, _QueueEntry(time, next(self._counter), event))
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds after the current time."""
        return self.schedule(self._now + max(0.0, delay), callback, *args, label=label, **kwargs)

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest pending event, if any."""
        while self._heap and self._heap[0].event.cancelled:
            entry = heapq.heappop(self._heap)
            entry.event._queue = None
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def run_until(self, time: float) -> int:
        """Fire every pending event with ``event.time <= time``.

        Returns the number of events fired.  Events scheduled by callbacks
        during the run are also fired if they fall within the window.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            entry = heapq.heappop(self._heap)
            entry.event._queue = None
            if entry.event.cancelled:
                self._cancelled -= 1
                continue
            self._now = entry.time
            entry.event.fire()
            fired += 1
        if time > self._now:
            self._now = time
        return fired

    def advance_to(self, time: float) -> None:
        """Advance the queue clock without firing anything.

        The slot-skipping kernel calls this after leaping over idle slots so
        ``now`` matches what slot-by-slot :meth:`run_until` calls would have
        left behind.  Must only be used for instants known to precede every
        pending event.
        """
        if time > self._now:
            self._now = time

    def clear(self) -> None:
        """Drop all pending events and reset the clock to zero."""
        for entry in self._heap:
            entry.event._queue = None
        self._heap.clear()
        self._cancelled = 0
        self._now = 0.0


class PeriodicTimer:
    """A self-rescheduling timer built on :class:`EventQueue`.

    Used for the EB period, the application traffic generator and the
    GT-TSCH load-balancing period.  The callback may return ``False`` to stop
    the timer; any other return value keeps it running.
    """

    def __init__(
        self,
        queue: EventQueue,
        period: float,
        callback: Callable[[], Any],
        start_offset: Optional[float] = None,
        label: str = "",
        jitter: float = 0.0,
        rng=None,
    ) -> None:
        """``jitter`` (0..1) randomises each period by ``±jitter*period``.

        Periodic protocol timers (Enhanced Beacons in particular) must not be
        phase-locked across nodes: two nodes whose identical periods happen to
        align would contend for the same broadcast cell at every firing,
        forever.  A small jitter breaks that symmetry, exactly as Contiki-NG
        jitters its EB timer.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if jitter > 0.0 and rng is None:
            raise ValueError("a jittered timer needs an rng")
        self.queue = queue
        self.period = period
        self.callback = callback
        self.label = label
        self.jitter = jitter
        self.rng = rng
        self._event: Optional[Event] = None
        self._running = False
        self._start_offset = period if start_offset is None else start_offset

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Arm the timer; the first firing happens after ``start_offset`` seconds."""
        if self._running:
            return
        self._running = True
        self._event = self.queue.schedule_in(self._start_offset, self._tick, label=self.label)

    def stop(self) -> None:
        """Disarm the timer."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_period(self) -> float:
        if self.jitter <= 0.0:
            return self.period
        return self.period * (1.0 + self.jitter * (2.0 * self.rng.random() - 1.0))

    def _tick(self) -> None:
        if not self._running:
            return
        result = self.callback()
        if result is False:
            self._running = False
            return
        self._event = self.queue.schedule_in(self._next_period(), self._tick, label=self.label)
