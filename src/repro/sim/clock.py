"""Simulation clock for slot-synchronous TSCH simulations.

TSCH divides time into fixed-length timeslots.  The global timeslot counter is
the Absolute Slot Number (ASN); every node in a synchronised TSCH network
shares the same ASN.  The simulator advances the clock one ASN at a time, and
all higher-level timers (traffic generation, Trickle, 6P timeouts, the
GT-TSCH load-balancing period) are expressed in seconds and resolved against
this clock at slot boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default TSCH timeslot duration used in the paper (Table II): 15 ms.
DEFAULT_SLOT_DURATION_S = 0.015


@dataclass
class SimClock:
    """Tracks simulated time both as seconds and as a TSCH ASN.

    Parameters
    ----------
    slot_duration_s:
        Duration of a single TSCH timeslot in seconds.  The paper uses
        15 ms timeslots (Table II), which is also the Contiki-NG default for
        the CC2538-based Zolertia Firefly platform.
    """

    slot_duration_s: float = DEFAULT_SLOT_DURATION_S
    asn: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.slot_duration_s <= 0:
            raise ValueError("slot_duration_s must be positive")

    @property
    def now(self) -> float:
        """Current simulated time in seconds (start of the current slot)."""
        return self.asn * self.slot_duration_s

    def advance_slot(self) -> int:
        """Advance the clock by exactly one timeslot and return the new ASN."""
        self.asn += 1
        return self.asn

    def advance_slots(self, count: int) -> int:
        """Jump the clock forward by ``count`` timeslots and return the new ASN.

        Used by the slot-skipping simulation kernel to leap over runs of
        guaranteed-idle slots in one step.
        """
        if count < 0:
            raise ValueError("cannot advance the clock backwards")
        self.asn += count
        return self.asn

    def seconds_to_slots(self, seconds: float) -> int:
        """Convert a duration in seconds to a whole number of timeslots.

        The result is rounded up so that a timer never fires early; a zero or
        negative duration maps to a single slot (the earliest representable
        future instant).
        """
        if seconds <= 0:
            return 1
        slots = int(round(seconds / self.slot_duration_s))
        return max(1, slots)

    def slots_to_seconds(self, slots: int) -> float:
        """Convert a number of timeslots to seconds."""
        return slots * self.slot_duration_s

    def reset(self) -> None:
        """Reset the clock to ASN 0 (used when re-running a scenario)."""
        self.asn = 0
