"""Discrete-event simulation substrate.

This package provides the time base and event machinery that every other
layer of the simulated 6TiSCH stack builds on:

* :mod:`repro.sim.clock` -- the simulation clock, expressed both in seconds
  and in TSCH Absolute Slot Numbers (ASN).
* :mod:`repro.sim.events` -- a monotonic event queue with cancellable events
  and periodic timers.
* :mod:`repro.sim.rng` -- named, seeded random streams so that every scenario
  is exactly reproducible from a single integer seed.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue, PeriodicTimer
from repro.sim.rng import RngRegistry

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "PeriodicTimer",
    "RngRegistry",
]
