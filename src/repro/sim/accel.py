"""Shared gated-numpy detection for the optional accelerator paths.

Several subsystems use :mod:`numpy` *only* as an accelerator: the frozen
medium's same-channel arbitration, the struct-of-arrays node-state store
(:mod:`repro.kernel.state`), and the experiment exporters.  None of them may
*require* it -- the package ships dependency-free and CI runs the full tier-1
suite without numpy installed -- so each used to carry its own
``try: import numpy`` block.  This module is the single shared gate.

``numpy_or_none()`` returns the imported module, or ``None`` when numpy is
unavailable **or** when the ``REPRO_NO_NUMPY=1`` escape hatch is set.  The
escape hatch lets tests exercise the pure-Python fallbacks on machines where
numpy *is* installed, which is how the equivalence suite proves the fallback
bit-identical without a second virtualenv.

The import itself is cached (numpy's import cost is paid once); the escape
hatch is re-read on every call so tests can flip it per-case with
``monkeypatch.setenv``.  Callers that treat numpy as a hard analysis
dependency rather than an optional kernel accelerator (``core/nash.py``)
pass ``ignore_disable=True``: the escape hatch is about forcing the
*fallback* paths, and modules with no fallback have nothing to force.
"""

from __future__ import annotations

import os
from types import ModuleType
from typing import Optional

_NUMPY: Optional[ModuleType] = None
_PROBED = False


def _import_numpy() -> Optional[ModuleType]:
    global _NUMPY, _PROBED
    if not _PROBED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on environment
            _NUMPY = None
        else:
            _NUMPY = numpy
        _PROBED = True
    return _NUMPY


def numpy_or_none(*, ignore_disable: bool = False) -> Optional[ModuleType]:
    """Return the numpy module, or ``None`` when absent or disabled.

    ``REPRO_NO_NUMPY=1`` forces ``None`` (pure-Python fallbacks) unless the
    caller opts out with ``ignore_disable=True``.
    """
    if not ignore_disable and os.environ.get("REPRO_NO_NUMPY") == "1":
        return None
    return _import_numpy()
