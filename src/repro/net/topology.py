"""Topology builders for the evaluation scenarios.

The paper evaluates GT-TSCH on DODAG-shaped static networks: Fig. 8 uses two
DODAGs with 14 nodes in total, Fig. 9 sweeps the number of nodes per DODAG
from 6 to 9 (two DODAGs, one root each), and Fig. 10 reuses a fixed topology.
DODAGs are placed far apart ("in many applications of LLNs there is no common
area in wireless ranges of DODAGs"), so inter-DODAG interference is absent by
construction.

A topology is described declaratively as a list of :class:`NodeSpec` entries
-- position, root flag, and (optionally) the intended parent for
deterministic warm-started runs -- which :class:`repro.net.network.Network`
turns into actual nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.rpl.rank import MIN_HOP_RANK_INCREASE

Position = tuple[float, float]


@dataclass
class NodeSpec:
    """Declarative description of one node in a topology."""

    node_id: int
    position: Position
    is_root: bool = False
    #: Intended preferred parent for warm-started (deterministic) scenarios.
    parent: Optional[int] = None
    #: Hop distance to the root implied by the intended tree (0 for roots).
    depth: int = 0
    #: Identifier of the DODAG this node belongs to (its root's node id).
    dodag_id: Optional[int] = None


@dataclass
class TopologyBuilder:
    """A collection of node specs plus convenience queries."""

    nodes: list[NodeSpec] = field(default_factory=list)

    def add(self, spec: NodeSpec) -> NodeSpec:
        if any(existing.node_id == spec.node_id for existing in self.nodes):
            raise ValueError(f"duplicate node id {spec.node_id}")
        self.nodes.append(spec)
        return spec

    def roots(self) -> list[NodeSpec]:
        return [spec for spec in self.nodes if spec.is_root]

    def node_ids(self) -> list[int]:
        return [spec.node_id for spec in self.nodes]

    def spec(self, node_id: int) -> NodeSpec:
        for candidate in self.nodes:
            if candidate.node_id == node_id:
                return candidate
        raise KeyError(node_id)

    def parent_map(self) -> dict[int, Optional[int]]:
        return {spec.node_id: spec.parent for spec in self.nodes}

    def children_of(self, node_id: int) -> list[int]:
        return [spec.node_id for spec in self.nodes if spec.parent == node_id]

    def max_depth(self) -> int:
        return max((spec.depth for spec in self.nodes), default=0)

    def initial_rank(self, node_id: int, initial_etx: float = 2.0) -> int:
        """Rank to preset for warm-started runs (root rank + depth x ETX x MinHopRankIncrease)."""
        spec = self.spec(node_id)
        if spec.is_root:
            return MIN_HOP_RANK_INCREASE
        return int(MIN_HOP_RANK_INCREASE + spec.depth * initial_etx * MIN_HOP_RANK_INCREASE)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


# ----------------------------------------------------------------------
# position helpers
# ----------------------------------------------------------------------
def grid_positions(count: int, spacing: float, origin: Position = (0.0, 0.0)) -> list[Position]:
    """Positions on a square grid, row-major, ``spacing`` metres apart."""
    side = max(1, math.ceil(math.sqrt(count)))
    positions = []
    for index in range(count):
        row, col = divmod(index, side)
        positions.append((origin[0] + col * spacing, origin[1] + row * spacing))
    return positions


def _ring_position(center: Position, radius: float, angle: float) -> Position:
    return (center[0] + radius * math.cos(angle), center[1] + radius * math.sin(angle))


# ----------------------------------------------------------------------
# canonical topologies
# ----------------------------------------------------------------------
def line_topology(num_nodes: int, spacing: float = 15.0, first_id: int = 0) -> TopologyBuilder:
    """A multi-hop chain: node 0 is the root, node k's parent is node k-1."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    topo = TopologyBuilder()
    root_id = first_id
    for index in range(num_nodes):
        node_id = first_id + index
        topo.add(
            NodeSpec(
                node_id=node_id,
                position=(index * spacing, 0.0),
                is_root=index == 0,
                parent=None if index == 0 else node_id - 1,
                depth=index,
                dodag_id=root_id,
            )
        )
    return topo


def star_topology(num_leaves: int, radius: float = 15.0, first_id: int = 0) -> TopologyBuilder:
    """One root with ``num_leaves`` one-hop children placed on a circle."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    topo = TopologyBuilder()
    root_id = first_id
    topo.add(NodeSpec(node_id=root_id, position=(0.0, 0.0), is_root=True, dodag_id=root_id))
    for index in range(num_leaves):
        angle = 2.0 * math.pi * index / num_leaves
        topo.add(
            NodeSpec(
                node_id=first_id + 1 + index,
                position=_ring_position((0.0, 0.0), radius, angle),
                parent=root_id,
                depth=1,
                dodag_id=root_id,
            )
        )
    return topo


def tree_topology(
    depth: int,
    branching: int,
    spacing: float = 15.0,
    first_id: int = 0,
    origin: Position = (0.0, 0.0),
) -> TopologyBuilder:
    """A complete ``branching``-ary tree of the given depth (root = depth 0)."""
    if depth < 0 or branching < 1:
        raise ValueError("depth must be >= 0 and branching >= 1")
    topo = TopologyBuilder()
    root_id = first_id
    topo.add(NodeSpec(node_id=root_id, position=origin, is_root=True, dodag_id=root_id))
    next_id = first_id + 1
    current_level = [root_id]
    for level in range(1, depth + 1):
        new_level: list[int] = []
        radius = spacing * level
        total_at_level = len(current_level) * branching
        slot = 0
        for parent in current_level:
            for _ in range(branching):
                angle = 2.0 * math.pi * slot / max(total_at_level, 1)
                node_id = next_id
                next_id += 1
                topo.add(
                    NodeSpec(
                        node_id=node_id,
                        position=_ring_position(origin, radius, angle),
                        parent=parent,
                        depth=level,
                        dodag_id=root_id,
                    )
                )
                new_level.append(node_id)
                slot += 1
        current_level = new_level
    return topo


def single_dodag_topology(
    num_nodes: int,
    first_id: int = 0,
    origin: Position = (0.0, 0.0),
    hop_spacing: float = 28.0,
    max_children_per_node: int = 3,
) -> TopologyBuilder:
    """One DODAG of ``num_nodes`` nodes (root included), filled breadth-first.

    The root sits at ``origin``; children are attached to the shallowest node
    that still has capacity (at most ``max_children_per_node`` children), and
    placed within reliable radio range of their parent.  This mirrors the
    compact indoor DODAGs of the paper's testbed, where most nodes are one or
    two hops from the border router.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    topo = TopologyBuilder()
    root_id = first_id
    topo.add(NodeSpec(node_id=root_id, position=origin, is_root=True, dodag_id=root_id))

    # Breadth-first attachment: parents are consumed in creation order.
    attach_order: list[int] = [root_id]
    children_count: dict[int, int] = {root_id: 0}
    parent_cursor = 0
    for index in range(1, num_nodes):
        while children_count[attach_order[parent_cursor]] >= max_children_per_node:
            parent_cursor += 1
        parent_id = attach_order[parent_cursor]
        parent_spec = topo.spec(parent_id)
        child_id = first_id + index
        child_index = children_count[parent_id]
        # Fan children out on the side of the parent facing away from the root.
        base_angle = math.atan2(
            parent_spec.position[1] - origin[1], parent_spec.position[0] - origin[0]
        ) if parent_spec.depth > 0 else 0.0
        angle = base_angle + (child_index - (max_children_per_node - 1) / 2.0) * (math.pi / 4.0)
        position = _ring_position(parent_spec.position, hop_spacing, angle)
        topo.add(
            NodeSpec(
                node_id=child_id,
                position=position,
                parent=parent_id,
                depth=parent_spec.depth + 1,
                dodag_id=root_id,
            )
        )
        children_count[parent_id] += 1
        children_count[child_id] = 0
        attach_order.append(child_id)
    return topo


def multi_dodag_topology(
    num_dodags: int = 2,
    nodes_per_dodag: int = 7,
    dodag_separation: float = 500.0,
    hop_spacing: float = 28.0,
    max_children_per_node: int = 3,
) -> TopologyBuilder:
    """Several non-interfering DODAGs, as in the paper's Fig. 8/9 scenarios.

    ``nodes_per_dodag`` counts the root, matching the paper's accounting
    ("the total size of the network is increased from 12 to 18 nodes (for two
    DODAGs)" when sweeping 6 to 9 nodes per DODAG).  DODAGs are separated by
    ``dodag_separation`` metres, far beyond interference range, because the
    paper's building-automation scenario assumes no common wireless area
    between DODAGs.
    """
    if num_dodags < 1:
        raise ValueError("num_dodags must be >= 1")
    topo = TopologyBuilder()
    for dodag_index in range(num_dodags):
        origin = (dodag_index * dodag_separation, 0.0)
        sub = single_dodag_topology(
            num_nodes=nodes_per_dodag,
            first_id=dodag_index * nodes_per_dodag,
            origin=origin,
            hop_spacing=hop_spacing,
            max_children_per_node=max_children_per_node,
        )
        for spec in sub:
            topo.add(spec)
    return topo


def scale_topology(
    num_nodes: int,
    nodes_per_dodag: int = 10,
    dodag_separation: float = 500.0,
    hop_spacing: float = 28.0,
    max_children_per_node: int = 3,
) -> TopologyBuilder:
    """A large building-automation site: many paper-sized DODAGs.

    The paper evaluates DODAGs of 6-9 nodes and scales by adding DODAGs
    ("in many applications of LLNs there is no common area in wireless
    ranges of DODAGs"); this builder extends that construction to hundreds
    of nodes -- ``num_nodes`` total, split into DODAGs of ``nodes_per_dodag``
    (the last one takes the remainder), each far outside the others'
    interference range.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if nodes_per_dodag < 1:
        raise ValueError("nodes_per_dodag must be >= 1")
    topo = TopologyBuilder()
    first_id = 0
    dodag_index = 0
    remaining = num_nodes
    while remaining > 0:
        size = min(nodes_per_dodag, remaining)
        sub = single_dodag_topology(
            num_nodes=size,
            first_id=first_id,
            origin=(dodag_index * dodag_separation, 0.0),
            hop_spacing=hop_spacing,
            max_children_per_node=max_children_per_node,
        )
        for spec in sub:
            topo.add(spec)
        first_id += size
        remaining -= size
        dodag_index += 1
    return topo


def random_topology(
    num_nodes: int,
    area: float,
    rng,
    communication_range: float = 40.0,
    root_id: int = 0,
) -> TopologyBuilder:
    """Uniformly random node placement with a BFS-derived intended tree.

    Nodes are dropped uniformly in an ``area x area`` square; the intended
    parents follow shortest hop paths to the root over the connectivity graph
    implied by ``communication_range``.  Unreachable nodes are re-dropped near
    already-connected ones so the topology is always a single DODAG.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    positions: list[Position] = [(area / 2.0, area / 2.0)]
    for _ in range(num_nodes - 1):
        positions.append((rng.uniform(0, area), rng.uniform(0, area)))

    def connected(a: Position, b: Position) -> bool:
        return math.hypot(a[0] - b[0], a[1] - b[1]) <= communication_range

    # Re-drop isolated nodes next to a random already-placed node.
    for index in range(1, num_nodes):
        attempts = 0
        while not any(connected(positions[index], positions[j]) for j in range(index)):
            anchor = positions[rng.randrange(0, index)]
            offset_angle = rng.uniform(0, 2 * math.pi)
            offset_radius = rng.uniform(0.3, 0.8) * communication_range
            positions[index] = _ring_position(anchor, offset_radius, offset_angle)
            attempts += 1
            if attempts > 100:  # pragma: no cover - defensive
                raise RuntimeError("failed to build a connected random topology")

    # BFS from the root over the connectivity graph.
    parents: dict[int, Optional[int]] = {0: None}
    depths: dict[int, int] = {0: 0}
    frontier = [0]
    while frontier:
        nxt: list[int] = []
        for current in frontier:
            for candidate in range(num_nodes):
                if candidate in parents:
                    continue
                if connected(positions[current], positions[candidate]):
                    parents[candidate] = current
                    depths[candidate] = depths[current] + 1
                    nxt.append(candidate)
        frontier = nxt

    topo = TopologyBuilder()
    for index in range(num_nodes):
        topo.add(
            NodeSpec(
                node_id=root_id + index,
                position=positions[index],
                is_root=index == 0,
                parent=None if index == 0 else root_id + parents[index],
                depth=depths.get(index, 1),
                dodag_id=root_id,
            )
        )
    return topo
