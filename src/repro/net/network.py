"""The slot-synchronous network: nodes, medium, and the main simulation loop.

The :class:`Network` is the Cooja-equivalent of this reproduction: it owns the
shared clock and event queue, the radio medium, the metrics collector and all
nodes, and advances the whole system one TSCH timeslot at a time:

1. asynchronous timers (traffic generation, Trickle, EB period, 6P timeouts,
   the GT-TSCH load-balancing period) that expired before the slot boundary
   are fired;
2. every node plans its slot (transmit / listen / sleep) from its installed
   schedule;
3. the medium arbitrates all concurrent transmissions (collisions, link loss,
   ACKs);
4. decoded frames are delivered, transmitters learn their ACK outcome, and
   radio duty-cycle accounting is updated.

``run_experiment`` wraps the warm-up / measurement / drain phasing used by
every benchmark so the figures measure steady-state behaviour, as the paper
does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.mac.tsch import SlotPlan
from repro.metrics.collector import MetricsCollector, NetworkMetrics
from repro.net.node import Node, NodeConfig
from repro.net.topology import TopologyBuilder
from repro.phy.medium import Medium
from repro.phy.propagation import PropagationModel, UnitDiskLossyEdgeModel
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry

#: Factory signature used when building a network from a topology:
#: ``scheduler_factory(node_id, is_root) -> SchedulingFunction``.
SchedulerFactory = Callable[[int, bool], "object"]
#: ``traffic_factory(node_id, is_root) -> TrafficGenerator | None``.
TrafficFactory = Callable[[int, bool], "object"]


class Network:
    """A complete simulated 6TiSCH network."""

    def __init__(
        self,
        propagation: Optional[PropagationModel] = None,
        seed: int = 0,
        default_node_config: Optional[NodeConfig] = None,
    ) -> None:
        self.rngs = RngRegistry(seed)
        self.default_node_config = default_node_config or NodeConfig()
        self.clock = SimClock(self.default_node_config.tsch.slot_duration_s)
        self.events = EventQueue()
        self.medium = Medium(
            propagation or UnitDiskLossyEdgeModel(), self.rngs.stream("phy")
        )
        self.metrics = MetricsCollector()
        self.nodes: Dict[int, Node] = {}
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: int,
        position,
        scheduler,
        is_root: bool = False,
        config: Optional[NodeConfig] = None,
        traffic=None,
    ) -> Node:
        """Create a node, register it on the medium and return it."""
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already exists")
        node = Node(
            node_id=node_id,
            position=position,
            scheduler=scheduler,
            config=config or self.default_node_config,
            event_queue=self.events,
            rng_registry=self.rngs,
            is_root=is_root,
        )
        node.set_metrics(self.metrics)
        if traffic is not None:
            node.set_traffic_generator(traffic)
        self.nodes[node_id] = node
        self.medium.register_node(node_id, position)
        return node

    def build_from_topology(
        self,
        topology: TopologyBuilder,
        scheduler_factory: SchedulerFactory,
        traffic_factory: Optional[TrafficFactory] = None,
        warm_start: bool = True,
        config: Optional[NodeConfig] = None,
    ) -> List[Node]:
        """Instantiate every node of ``topology``.

        ``warm_start=True`` presets the RPL parents/ranks declared by the
        topology (the deterministic setup used by the benchmark figures);
        with ``warm_start=False`` the DODAG forms from scratch through
        DIO exchange.
        """
        created: List[Node] = []
        for spec in topology:
            traffic = traffic_factory(spec.node_id, spec.is_root) if traffic_factory else None
            node = self.add_node(
                node_id=spec.node_id,
                position=spec.position,
                scheduler=scheduler_factory(spec.node_id, spec.is_root),
                is_root=spec.is_root,
                config=config,
                traffic=traffic,
            )
            created.append(node)
        if warm_start:
            for spec in topology:
                node = self.nodes[spec.node_id]
                dodag_id = spec.dodag_id if spec.dodag_id is not None else spec.node_id
                node.rpl.warm_start(
                    parent=spec.parent,
                    rank=topology.initial_rank(spec.node_id),
                    dodag_id=dodag_id,
                )
        return created

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node's protocol machinery (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def step_slot(self) -> None:
        """Advance the whole network by one TSCH timeslot."""
        asn = self.clock.asn
        now = self.clock.now
        # 1. fire asynchronous timers due at or before this slot boundary.
        self.events.run_until(now)

        # 2. every node plans its slot.
        plans: Dict[int, SlotPlan] = {}
        intents = []
        intent_owners: List[int] = []
        listeners: Dict[int, int] = {}
        for node_id, node in self.nodes.items():
            plan = node.tsch.plan_slot(asn)
            plans[node_id] = plan
            if plan.is_tx:
                intents.append(node.tsch.build_intent(plan))
                intent_owners.append(node_id)
            elif plan.is_rx:
                listeners[node_id] = plan.channel

        # 3. the medium arbitrates.
        results = self.medium.resolve_slot(intents, listeners)

        # 4a. deliver decoded frames.  A unicast frame may be *decoded* by
        # overhearing neighbours (they listened on the same channel), but only
        # the link-layer destination processes it -- real radios filter on the
        # destination address before handing the frame to the MAC.
        nodes_that_received = set()
        for result in results:
            packet = result.intent.packet
            for receiver in result.receivers:
                nodes_that_received.add(receiver)
                if packet.is_broadcast or packet.link_destination == receiver:
                    self.nodes[receiver].tsch.on_frame_received(packet, asn, now)

        # 4b. transmitters process their outcome (ACK, retransmission, drop).
        for node_id, result in zip(intent_owners, results):
            self.nodes[node_id].tsch.on_transmission_result(plans[node_id], result, asn, now)

        # 4c. duty-cycle accounting.
        for node_id, plan in plans.items():
            self.nodes[node_id].tsch.account_slot(
                plan, frame_received=node_id in nodes_that_received
            )

        self.clock.advance_slot()

    def run_slots(self, num_slots: int) -> None:
        """Run the network for a fixed number of timeslots."""
        self.start()
        for _ in range(num_slots):
            self.step_slot()

    def run_seconds(self, seconds: float) -> None:
        """Run the network for (approximately) ``seconds`` of simulated time."""
        self.run_slots(self.clock.seconds_to_slots(seconds))

    def run_experiment(
        self,
        warmup_s: float,
        measurement_s: float,
        drain_s: float = 5.0,
        scheduler_name: str = "",
    ) -> NetworkMetrics:
        """Warm-up, measure, drain, and return the headline metrics.

        * warm-up: the DODAG forms / schedules converge; nothing is measured;
        * measurement: application traffic is generated and all six paper
          metrics are accumulated;
        * drain: generation stops so that packets created near the end of the
          window still get a chance to reach the root (keeps the PDR estimate
          unbiased); MAC counters are frozen at the start of the drain.
        """
        self.start()
        self.run_seconds(warmup_s)
        self.metrics.begin_measurement(self.nodes.values(), self.clock.now)
        self.run_seconds(measurement_s)
        self.metrics.end_measurement(self.nodes.values(), self.clock.now)
        for node in self.nodes.values():
            node.traffic_enabled = False
            if node.traffic is not None:
                node.traffic.stop()
        self.run_seconds(drain_s)
        if not scheduler_name and self.nodes:
            scheduler_name = next(iter(self.nodes.values())).scheduler.name
        return self.metrics.finalize(self.nodes.values(), self.clock.now, scheduler_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def roots(self) -> List[Node]:
        return [node for node in self.nodes.values() if node.is_root]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)
