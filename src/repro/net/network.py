"""The slot-synchronous network: nodes, medium, and the main simulation loop.

The :class:`Network` is the Cooja-equivalent of this reproduction: it owns the
shared clock and event queue, the radio medium, the metrics collector and all
nodes, and advances the whole system one TSCH timeslot at a time:

1. asynchronous timers (traffic generation, Trickle, EB period, 6P timeouts,
   the GT-TSCH load-balancing period) that expired before the slot boundary
   are fired;
2. every node plans its slot (transmit / listen / sleep) from its installed
   schedule;
3. the medium arbitrates all concurrent transmissions (collisions, link loss,
   ACKs);
4. decoded frames are delivered, transmitters learn their ACK outcome, and
   radio duty-cycle accounting is updated.

``run_experiment`` wraps the warm-up / measurement / drain phasing used by
every benchmark so the figures measure steady-state behaviour, as the paper
does.

The slot loop comes in two flavours.  The naive loop (``fast=False``) visits
every single timeslot and every node.  The default kernel exploits the facts
that the schedule is periodic and mutations are observable (every
:class:`~repro.mac.slotframe.Slotframe` mutation bumps a version counter),
and that only nodes with queued packets can put energy on the air:

* a network-wide *active-offset index* (the union of installed slot offsets
  modulo each slotframe length, with an inverted ``(length, offset) ->
  participants`` view, maintained incrementally per mutated node) answers
  :meth:`Network.next_active_asn`;
* a *horizon heap* of per-node "earliest ASN whose TX cells match my queued
  packets" entries -- guarded by queue/schedule version stamps and
  maintained push-style through the engines' queue hooks -- answers "who
  could transmit, and when is the next slot anyone can?";
* both combine with :meth:`EventQueue.peek_time` to jump the clock in O(1)
  over idle and transmission-free runs alike, and each *stepped* slot is
  dispatched transmitter-centrically: only the due transmitters plus their
  interference audience (precomputed by :meth:`Medium.freeze`) are planned,
  everyone else's radio activity being a pure function of its schedule;
* duty-cycle accounting is *deferred*: per-node windows of untouched slots
  are settled in integer bulk (idle-listen where the schedule has an active
  RX cell, sleep elsewhere) by
  :meth:`~repro.mac.tsch.TschEngine.settle_duty_cycle`, with schedule
  mutations as settlement barriers.

Jumped slots and unvisited nodes provably fire no callbacks, draw no random
numbers and touch nothing but integer counters, and visited nodes are
processed in node insertion order, so the kernel's finalized metrics are
bit-identical to the naive loop's.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable
from heapq import heappop, heappush
from typing import Optional

from repro.kernel.state import NodeStateStore
from repro.mac.tsch import SlotPlan, next_offset_occurrence
from repro.metrics.collector import MetricsCollector, NetworkMetrics
from repro.net.node import Node, NodeConfig
from repro.net.topology import TopologyBuilder
from repro.phy.medium import Medium
from repro.phy.propagation import PropagationModel, UnitDiskLossyEdgeModel
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry

#: Factory signature used when building a network from a topology:
#: ``scheduler_factory(node_id, is_root) -> SchedulingFunction``.
SchedulerFactory = Callable[[int, bool], "object"]
#: ``traffic_factory(node_id, is_root) -> TrafficGenerator | None``.
TrafficFactory = Callable[[int, bool], "object"]


class Network:
    """A complete simulated 6TiSCH network."""

    def __init__(
        self,
        propagation: Optional[PropagationModel] = None,
        seed: int = 0,
        default_node_config: Optional[NodeConfig] = None,
        fast: bool = True,
        timer_wheels: bool = True,
        csma_pruning: bool = True,
        rank_memo: bool = True,
        soa: bool = True,
    ) -> None:
        self.rngs = RngRegistry(seed)
        self.default_node_config = default_node_config or NodeConfig()
        self.clock = SimClock(self.default_node_config.tsch.slot_duration_s)
        #: ``timer_wheels=False`` schedules every protocol timer on the flat
        #: event heap (the reference layout the wheel equivalence tests
        #: compare against); results are bit-identical either way.
        self.events = EventQueue(use_wheels=timer_wheels)
        #: Enable shared-cell contention pruning in the slot-skipping kernel
        #: (bulk CSMA back-off settlement; ``False`` keeps the per-slot
        #: countdown of the reference loop -- results are identical).
        self.csma_pruning = csma_pruning
        #: Enable RPL candidate-rank memoisation on every node built through
        #: :meth:`add_node` (``False`` is the debugging escape hatch that
        #: re-ranks on every reception; results are bit-identical either way
        #: and independent of the ``fast`` kernel flag -- the protocol code
        #: is shared by both slot loops).
        self.rank_memo = rank_memo
        #: Struct-of-arrays node-state store (see :mod:`repro.kernel.state`).
        #: Every node's hot counters/flags live here regardless of ``soa``;
        #: the flag only selects between the kernel's bulk array settlement
        #: paths (``True``) and the per-object loops the reference semantics
        #: are defined by (``False`` is the escape hatch -- results are
        #: bit-identical either way, only the cost differs).
        self.state = NodeStateStore()
        self.soa = soa
        self.medium = Medium(
            propagation or UnitDiskLossyEdgeModel(), self.rngs.stream("phy")
        )
        self.metrics = MetricsCollector()
        self.nodes: dict[int, Node] = {}
        #: node id -> TSCH engine, kept in sync with :attr:`nodes` (frame
        #: delivery resolves receivers through this to skip an attribute hop
        #: per decoded frame).
        self._engines: dict[int, "object"] = {}
        self._started = False
        #: Use the slot-skipping kernel in :meth:`run_slots` (bit-identical to
        #: the naive loop; ``fast=False`` is the escape hatch).
        self.fast = fast
        #: slotframe length -> sorted union of installed slot offsets, across
        #: every node; rebuilt whenever any schedule version changes.
        self._active_index: dict[int, list[int]] = {}
        self._active_index_dirty = True
        #: Flat node list, kept in sync with :attr:`nodes` (hot-loop iteration).
        self._node_list: list[Node] = []
        self._single_length = 0
        self._single_offsets: list[int] = []
        #: Inverted participant index (maintained incrementally, see
        #: :meth:`_refresh_active_index`): ``slotframe length -> slot offset
        #: -> {node order index -> node}`` -- dicts make one node's
        #: contribution removable in O(its cells) when only that node's
        #: schedule changed, and keying by order index lets dispatch restore
        #: node insertion order.  Queried per slot by the dispatch loop and
        #: through :meth:`_participants_at`.
        self._part_tables: dict[int, dict[int, dict[int, Node]]] = {}
        #: node id -> set of (length, offset) pairs it currently contributes.
        self._node_contrib: dict[int, set] = {}
        #: Reference counts behind the active-offset union: ``length ->
        #: offset -> number of contributing nodes``.
        self._offset_counts: dict[int, dict[int, int]] = {}
        #: Nodes whose schedule changed since the last index refresh; only
        #: their contributions are recomputed.
        self._dirty_nodes: set = set()
        #: node id -> position in :attr:`_node_list` (multi-length dispatch
        #: merges participant buckets back into insertion order with this).
        self._node_order: dict[int, int] = {}
        #: Backlog index: nodes currently holding at least one queued packet,
        #: push-maintained through :attr:`TschEngine.on_queue_change`.  Only
        #: these nodes can make a slot "risky", so the kernel's transmission
        #: horizon tracking is bounded by backlogged nodes, not network size.
        self._backlogged: dict[int, Node] = {}
        #: Scan registry: nodes currently in the unsynchronised EB scan,
        #: push-maintained through :attr:`Node.on_scan_state`.  A scanning
        #: node has no schedule (it is invisible to the participant index)
        #: but listens on the deterministic scan channel every slot, so the
        #: dispatch kernel adds these nodes to every stepped slot's
        #: audience; in jumped/transmission-free slots they provably decode
        #: nothing and their all-idle-listen window settles in bulk.
        self._scanning: dict[int, Node] = {}
        #: Min-heap of per-node TX horizons: ``(occurrence, order index,
        #: node, queue version, schedule version)``.  An entry is authoritative
        #: only while both versions still match its node (stale entries are
        #: discarded lazily when they surface); nodes listed in
        #: :attr:`_risky_dirty` need their horizon (re)computed.
        self._risky_heap: list[tuple] = []
        self._risky_dirty: set = set()
        #: Slots actually stepped (planned + arbitrated) by the dispatch
        #: kernel, as opposed to slots jumped in bulk; the scaling benchmark
        #: divides wall-clock by this to report per-active-slot cost.
        self.stepped_slots = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: int,
        position,
        scheduler,
        is_root: bool = False,
        config: Optional[NodeConfig] = None,
        traffic=None,
    ) -> Node:
        """Create a node, register it on the medium and return it."""
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already exists")
        node = Node(
            node_id=node_id,
            position=position,
            scheduler=scheduler,
            config=config or self.default_node_config,
            event_queue=self.events,
            rng_registry=self.rngs,
            is_root=is_root,
        )
        node.set_metrics(self.metrics)
        if not self.rank_memo:
            node.rpl.memo_enabled = False
        if traffic is not None:
            node.set_traffic_generator(traffic)
        node.tsch.on_schedule_change = lambda bound=node: self._on_schedule_change(bound)
        node.tsch.on_queue_change = lambda bound=node: self._on_queue_change(bound)
        node.on_scan_state = self._on_scan_state
        node.clock = self.clock
        # Adopt the node into the struct-of-arrays store: all of its views
        # (liveness, timers, queue, meter, ETX, RPL rank) move onto one row.
        node.bind_state(self.state, self.state.add_row())
        # A node created mid-run owes no duty-cycle accounting for the slots
        # that elapsed before it existed.
        node.tsch.duty_accounted_asn = self.clock.asn
        self.nodes[node_id] = node
        self._engines[node_id] = node.tsch
        self.medium.register_node(node_id, position)
        self._dirty_nodes.add(node)
        self._active_index_dirty = True
        self._node_list = list(self.nodes.values())
        self._node_order = {n.node_id: i for i, n in enumerate(self._node_list)}
        return node

    def build_from_topology(
        self,
        topology: TopologyBuilder,
        scheduler_factory: SchedulerFactory,
        traffic_factory: Optional[TrafficFactory] = None,
        warm_start: bool = True,
        config: Optional[NodeConfig] = None,
    ) -> list[Node]:
        """Instantiate every node of ``topology``.

        ``warm_start=True`` presets the RPL parents/ranks declared by the
        topology (the deterministic setup used by the benchmark figures);
        with ``warm_start=False`` the DODAG forms from scratch through
        DIO exchange.
        """
        created: list[Node] = []
        for spec in topology:
            traffic = traffic_factory(spec.node_id, spec.is_root) if traffic_factory else None
            node = self.add_node(
                node_id=spec.node_id,
                position=spec.position,
                scheduler=scheduler_factory(spec.node_id, spec.is_root),
                is_root=spec.is_root,
                config=config,
                traffic=traffic,
            )
            created.append(node)
        if warm_start:
            for spec in topology:
                node = self.nodes[spec.node_id]
                dodag_id = spec.dodag_id if spec.dodag_id is not None else spec.node_id
                node.rpl.warm_start(
                    parent=spec.parent,
                    rank=topology.initial_rank(spec.node_id),
                    dodag_id=dodag_id,
                )
        return created

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node's protocol machinery (idempotent).

        The topology is final once the network starts, so the medium's dense
        PRR / interference tables are precomputed here in one pass (adding a
        node later un-freezes and the next start of a slot run re-freezes).
        """
        self.medium.freeze()
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            # Late arrivals (FaultPlan.arrivals) are pre-marked dead at
            # injector arm time; their boot is the scheduled arrival event.
            if node.alive:
                node.start()

    def step_slot(self) -> None:
        """Advance the whole network by one TSCH timeslot.

        Public per-slot entry point: dispatches the slot through the
        participant index and then settles every node's deferred sleep
        accounting, so duty-cycle meters are exact after each call.  The
        slot-skipping kernel calls :meth:`_step_slot_dispatch` directly and
        settles once per :meth:`run_slots` instead.
        """
        self._step_slot_dispatch()
        self._flush_duty_cycle()

    def _step_slot_dispatch(self) -> None:
        """Advance one timeslot, planning only the nodes that matter to it.

        Transmitter-centric two-phase dispatch:

        1. plan the nodes whose queued packets match a TX cell at this ASN --
           the only possible transmitters, named directly by the horizon heap
           (:meth:`_collect_transmitters`); planning them applies all CSMA
           bookkeeping.  If none transmits, the slot is over: every node's
           radio activity is the pure idle-listen/sleep function of its
           schedule that :meth:`~repro.mac.tsch.TschEngine.settle_duty_cycle`
           credits in bulk, and the medium draws nothing.
        2. otherwise additionally plan the transmitters' interference
           audience (precomputed at medium freeze): only those nodes can draw
           RNG numbers or decode.  Listeners outside every audience hear
           nothing by construction, so deferring them as idle-listeners is
           bit-identical; audience members without a cell at this ASN (per
           the inverted participant index) provably sleep and are skipped
           without planning.

        Nodes are visited in insertion order throughout, so intents,
        listeners, and therefore arbitration and the RNG stream are exactly
        those of the full per-node scan.
        """
        asn = self.clock.asn
        now = self.clock.now
        # 1. fire asynchronous timers due at or before this slot boundary
        # (these may mutate schedules and queues, so they run before the
        # participant lookup below).
        self.events.run_until(now)
        self.stepped_slots += 1

        # 2a. the possible transmitters plan first (CSMA side effects
        # included); they are the only nodes that can put energy on the air,
        # and the horizon heap names them without scanning anyone else.
        tx_plans: list[SlotPlan] = []
        intents = []
        intent_owners: list[int] = []
        planned: dict[int, SlotPlan] = {}
        for node in self._collect_transmitters(asn):
            plan = node.tsch.plan_slot(asn)
            planned[node.node_id] = plan
            if plan.action == "tx":
                intents.append(node.tsch.build_intent(plan))
                intent_owners.append(node.node_id)
                tx_plans.append(plan)

        if not intents:
            # Transmission-free slot: nothing reaches the medium, no RNG is
            # drawn, and every participant's duty cycle stays the pure
            # function of its schedule that deferred settling reproduces.
            self.clock.advance_slot()
            return

        # 2b. the transmitters' interference audience completes the slot;
        # unreachable listeners -- and every listener that ends up decoding
        # nothing -- stay deferred.
        if not self.medium.frozen:
            # Normally done by start(); covers direct step_slot() use.
            self.medium.freeze()
        if self._active_index_dirty:
            self._refresh_active_index()
        # This ASN's participant buckets from the inverted index: an audience
        # member with a cell in none of them provably sleeps, so it is
        # skipped without even being planned.  Each member's listen/sleep
        # decision is served from its engine's per-residue memo
        # (:meth:`~repro.mac.tsch.TschEngine.idle_listen_channel_offset`).
        # Crucially, nothing is settled here: an idle listener that decodes
        # nothing this slot is exactly the idle-listen slot its deferred
        # profile settling credits, so only the nodes whose slot *deviates*
        # from the pure schedule function (transmitters, and listeners that
        # actually receive energy) are accounted eagerly in step 4c.
        buckets: list[dict[int, Node]] = []
        for length, table in self._part_tables.items():
            bucket = table.get(asn % length)
            if bucket:
                buckets.append(bucket)
        audience: set = set(planned)
        audience_of = self.medium.audience_of
        for node_id in intent_owners:
            audience |= audience_of(node_id)
        scanning = self._scanning
        if scanning:
            # Unsynchronised scanners listen on their scan channel every
            # slot regardless of interference geometry: the reference loop
            # plans them as listeners unconditionally, so every stepped
            # slot must offer them to the medium (non-audible listeners
            # draw no RNG in resolve_slot, keeping arbitration identical).
            audience |= scanning.keys()
        order = self._node_order
        nodes = self.nodes
        listeners: dict[int, int] = {}
        by_channel: dict[int, list[int]] = {}
        backlogged = self._backlogged
        single_bucket = buckets[0] if len(buckets) == 1 else None
        if 4 * len(audience) >= len(nodes):
            # Network-wide audiences (many concurrently active DODAGs):
            # filtering the insertion-ordered node list yields the same
            # order as the sort below without the O(A log A) comparison
            # cost per slot.
            ordered_audience = [
                node.node_id for node in self._node_list if node.node_id in audience
            ]
        else:
            ordered_audience = sorted(audience, key=order.__getitem__)
        for node_id in ordered_audience:
            if node_id in scanning:
                # Scanning nodes have no cells (no participant bucket) and
                # an empty queue; their slot is the pure ASN function of
                # the scan-channel sequence.
                channel = scanning[node_id].tsch.scan_channel(asn)
                listeners[node_id] = channel
                bucket = by_channel.get(channel)
                if bucket is None:
                    by_channel[channel] = [node_id]
                else:
                    bucket.append(node_id)
                continue
            plan = planned.get(node_id)
            if plan is None:
                node_order = order[node_id]
                if single_bucket is not None:
                    node = single_bucket.get(node_order)
                    if node is None:
                        # No cell at this residue: the node provably sleeps,
                        # and deferred settling credits exactly that.
                        continue
                else:
                    node = None
                    for bucket in buckets:
                        node = bucket.get(node_order)
                        if node is not None:
                            break
                    if node is None:
                        continue
                engine = node.tsch
                if node_id in backlogged:
                    deferral = engine._csma_deferral
                    if deferral is not None and asn < deferral[4]:
                        # Every matching cell this slot is a provably-losing
                        # shared-cell pass: bulk-credit it and fall through
                        # to the pure listen/sleep decision, skipping the TX
                        # scan entirely.
                        engine.absorb_deferred_pass(asn)
                    else:
                        # The queue (and CSMA state) may shape this node's
                        # slot: plan it fully, side effects included.
                        plan = engine.plan_slot(asn)
                        if plan.action != "rx":
                            # A TX plan is impossible here (the horizon heap
                            # named every possible transmitter), so the node
                            # either listens or sleeps -- and both reduce to
                            # the lazy pure function of its schedule.
                            continue
                        channel: Optional[int] = plan.channel
                if plan is None:
                    # Empty queue, or a backlog fully absorbed above: the
                    # slot is the memoised per-residue listen/sleep decision.
                    offset = engine.idle_listen_channel_offset(asn)
                    if offset is None:
                        # Pure sleep, exactly what deferred settling credits.
                        continue
                    channel = engine.hopping.channel_for(asn, offset)
            else:
                if plan.action != "rx":
                    # Transmitters are accounted in step 4c; a sleeping plan
                    # reduces to the lazy schedule function.
                    continue
                channel = plan.channel
            listeners[node_id] = channel
            bucket = by_channel.get(channel)
            if bucket is None:
                by_channel[channel] = [node_id]
            else:
                bucket.append(node_id)

        # 3. the medium arbitrates (the per-channel listener grouping was
        # built for free while planning).
        results = self.medium.resolve_slot(intents, listeners, by_channel)

        # 4a. deliver decoded frames.  A unicast frame may be *decoded* by
        # overhearing neighbours (they listened on the same channel), but only
        # the link-layer destination processes it -- real radios filter on the
        # destination address before handing the frame to the MAC.
        engines = self._engines
        nodes_that_received = set()
        for result in results:
            packet = result.intent.packet
            if packet.is_broadcast:
                for receiver in result.receivers:
                    nodes_that_received.add(receiver)
                    engines[receiver].on_frame_received(packet, asn, now)
            else:
                destination = packet.link_destination
                for receiver in result.receivers:
                    nodes_that_received.add(receiver)
                    if destination == receiver:
                        engines[receiver].on_frame_received(packet, asn, now)

        # 4b. transmitters process their outcome (ACK, retransmission, drop).
        for node_id, plan, result in zip(intent_owners, tx_plans, results):
            engines[node_id].on_transmission_result(plan, result, asn, now)

        # 4c. eager duty-cycle accounting for exactly the nodes whose slot
        # deviated from the pure function of their schedule: transmitters
        # (the profile would credit idle-listen/sleep, not TX) and listeners
        # that received energy (a frame beats the idle-listen credit).
        # Every other listener idle-listened, which is exactly what its
        # deferred profile settling will credit -- bit-identical, so it is
        # left lazy.
        for node_id in intent_owners:
            engines[node_id].account_tx_slot(asn)
        if self.soa and len(nodes_that_received) > 2:
            # Bulk flavour of account_rx_frame_slot: settle each receiver's
            # deferred window first (profile-dependent, per node), then
            # credit the busy-RX slot and the advanced watermark for all of
            # them in one array operation.
            rx_rows: list[int] = []
            for node_id in sorted(nodes_that_received):
                engine = engines[node_id]
                if engine.duty_accounted_asn < asn:
                    engine.settle_duty_cycle(asn)
                rx_rows.append(engine._row)
            self.state.account_rx_frames(rx_rows, asn)
        else:
            for node_id in sorted(nodes_that_received):
                engines[node_id].account_rx_frame_slot(asn)

        self.clock.advance_slot()

    def step_slot_reference(self) -> None:
        """The seed's slot loop, preserved verbatim as the naive kernel.

        ``run_slots(fast=False)`` drives the network through this method with
        every schedule cache disabled: each slot plans every node with the
        original gather-and-sort, arbitrates the medium, and accounts every
        node through :meth:`~repro.mac.tsch.TschEngine.account_slot`.  It is
        the ground truth the skip-equivalence tests compare the kernel
        against, and the baseline the kernel-speed benchmark measures.
        """
        asn = self.clock.asn
        now = self.clock.now
        self.events.run_until(now)

        plans: dict[int, SlotPlan] = {}
        intents = []
        intent_owners: list[int] = []
        listeners: dict[int, int] = {}
        for node_id, node in self.nodes.items():
            plan = node.tsch.plan_slot(asn)
            plans[node_id] = plan
            if plan.is_tx:
                intents.append(node.tsch.build_intent(plan))
                intent_owners.append(node_id)
            elif plan.is_rx:
                listeners[node_id] = plan.channel

        results = self.medium.resolve_slot(intents, listeners)

        nodes_that_received = set()
        for result in results:
            packet = result.intent.packet
            for receiver in result.receivers:
                nodes_that_received.add(receiver)
                if packet.is_broadcast or packet.link_destination == receiver:
                    self.nodes[receiver].tsch.on_frame_received(packet, asn, now)

        for node_id, result in zip(intent_owners, results):
            self.nodes[node_id].tsch.on_transmission_result(plans[node_id], result, asn, now)

        next_asn = asn + 1
        for node_id, plan in plans.items():
            engine = self.nodes[node_id].tsch
            engine.account_slot(plan, frame_received=node_id in nodes_that_received)
            # Per-slot accounting is complete; keep the deferred-accounting
            # watermark in step so settle hooks firing later are no-ops.
            engine.duty_accounted_asn = next_asn

        self.clock.advance_slot()

    # ------------------------------------------------------------------
    # slot-skipping kernel
    # ------------------------------------------------------------------
    def _on_schedule_change(self, node: Node) -> None:
        """``node``'s schedule mutated; its index contributions are stale.

        The node's deferred duty-cycle window is settled first, under the
        *pre-mutation* profile it accumulated under -- after this, windows
        only ever span a constant schedule, which is what makes lazy
        idle-listen/sleep accounting exact.
        """
        engine = node.tsch
        asn = self.clock.asn
        # The CSMA countdown model was derived under the pre-mutation
        # schedule; credit the passes that provably happened before now.
        engine.settle_csma(asn)
        if engine.duty_accounted_asn < asn:
            profile = engine.cached_profile()
            if profile is not None:
                engine.settle_duty_cycle(asn, profile)
            elif engine._scanning:
                # A scanning node's window is busy listening, not sleep;
                # the engine's own settle knows that.  (Unreachable through
                # the join paths -- scan transitions settle eagerly -- but
                # cheap insurance against future mutation orderings.)
                engine.settle_duty_cycle(asn)
            else:
                # No profile was ever derived: the node never had a cell, so
                # the whole window is sleep.
                meter = engine.duty_cycle
                debt = asn - engine.duty_accounted_asn
                meter.sleep_slots += debt
                meter.total_slots += debt
                engine.duty_accounted_asn = asn
        self._dirty_nodes.add(node)
        self._active_index_dirty = True
        if node.node_id in self._backlogged:
            self._risky_dirty.add(node)

    def _refresh_active_index(self) -> None:
        """Re-index the nodes whose schedule changed since the last refresh.

        Both kernel indexes are derived from the per-node
        :class:`ScheduleProfile`: the active-offset union (``length -> sorted
        offsets``, feeding :meth:`next_active_asn`) and the inverted
        participant index (``length -> offset -> nodes``, feeding
        :meth:`_participants_at`).  Maintenance is incremental -- a schedule
        mutation re-indexes only that node's cells, so a 6top ADD/DELETE or a
        GT-TSCH load-balancing move costs O(that node's cells), not O(network
        size) -- while participant buckets are kept in node insertion order so
        dispatch plans nodes exactly as the full per-node scan would.
        """
        if not self._active_index_dirty:
            return
        stale_lengths: set = set()
        node_order = self._node_order
        for node in sorted(self._dirty_nodes, key=lambda n: node_order[n.node_id]):
            node_id = node.node_id
            order = node_order[node_id]
            old_contrib = self._node_contrib.get(node_id, frozenset())
            profile = node.tsch.schedule_profile()
            new_contrib = set()
            for length, offsets in profile.frame_offsets:
                for offset in offsets:
                    new_contrib.add((length, offset))
            for length, offset in sorted(old_contrib - new_contrib):
                del self._part_tables[length][offset][order]
                counts = self._offset_counts[length]
                counts[offset] -= 1
                if not counts[offset]:
                    del counts[offset]
                    del self._part_tables[length][offset]
                    stale_lengths.add(length)
            for length, offset in sorted(new_contrib - old_contrib):
                table = self._part_tables.setdefault(length, {})
                table.setdefault(offset, {})[order] = node
                counts = self._offset_counts.setdefault(length, {})
                if offset not in counts:
                    counts[offset] = 1
                    stale_lengths.add(length)
                else:
                    counts[offset] += 1
            self._node_contrib[node_id] = new_contrib
        self._dirty_nodes.clear()
        # Re-sort only the per-length offset unions whose membership changed.
        for length in sorted(stale_lengths):
            offsets = self._offset_counts.get(length)
            if offsets:
                self._active_index[length] = sorted(offsets)
            else:
                self._active_index.pop(length, None)
                self._offset_counts.pop(length, None)
                self._part_tables.pop(length, None)
        # Unpacked single-slotframe-length form for the kernel's hot loop.
        if len(self._active_index) == 1:
            ((self._single_length, self._single_offsets),) = self._active_index.items()
        else:
            self._single_length = 0
            self._single_offsets = []
        self._active_index_dirty = False

    def _participants_at(self, asn: int) -> list[Node]:
        """Nodes with any installed cell active at ``asn``, in insertion order.

        Derived on demand from the inverted index's buckets (dispatch reads
        those directly; this is the introspection/test query).  Only these
        nodes can plan anything but ``sleep`` at this ASN.
        """
        if self._active_index_dirty:
            self._refresh_active_index()
        merged: dict[int, Node] = {}
        for length, table in self._part_tables.items():
            bucket = table.get(asn % length)
            if bucket:
                merged.update(bucket)
        return [merged[order] for order in sorted(merged)]

    def _on_queue_change(self, node: Node) -> None:
        """A node's MAC queue mutated; update the backlog and horizon indexes.

        An armed CSMA deferral is settled first: its countdown model held
        exactly while the queue (and quiet set, which reports through this
        same hook) was unchanged, so the passes up to the current slot are
        credited under the pre-mutation state.
        """
        node.tsch.settle_csma(self.clock.asn)
        if len(node.tsch.queue):
            self._backlogged[node.node_id] = node
            self._risky_dirty.add(node)
        else:
            self._backlogged.pop(node.node_id, None)
            self._risky_dirty.discard(node)

    def _on_scan_state(self, node: Node, scanning: bool) -> None:
        """``node`` entered or left the unsynchronised EB scan.

        The engine's own scan transition already settled the node's
        deferred duty-cycle window (``begin_scan``/``end_scan`` are
        settlement barriers), so this hook only maintains the registry the
        dispatch kernel reads.
        """
        if scanning:
            self._scanning[node.node_id] = node
        else:
            self._scanning.pop(node.node_id, None)
            if node.alive:
                # Fresh synchronisation (a dead node leaves the registry
                # with ``alive`` already cleared): the booted RPL stack
                # would now multicast a DIS, so trigger the neighbors'
                # solicited-DIO reaction.
                self.solicit_dios(node)

    def solicit_dios(self, node: Node) -> None:
        """Model the DIS multicast a freshly booted RPL node sends.

        Audible joined neighbors react per RFC 6206 by resetting their
        Trickle timers, which produces a prompt DIO for the newcomer to
        attach to; the DIS frame itself is not simulated.  Without the
        solicitation a node arriving late in a stable network could outwait
        the run: every neighbor's interval has backed off to hundreds of
        seconds by then.  Deterministic: neighbors are visited in sorted id
        order and each reset draws only from that neighbor's own trickle
        RNG stream, inside an event callback both slot loops fire
        identically.
        """
        for neighbor_id in sorted(self.medium.audience_of(node.node_id)):
            neighbor = self.nodes[neighbor_id]
            if neighbor.alive and neighbor.rpl.is_joined():
                neighbor.rpl.trickle.reset()

    def _flush_duty_cycle(self) -> None:
        """Settle every node's deferred duty-cycle window up to the clock.

        Slots in ``[duty_accounted_asn, asn)`` were never explicitly
        recorded, which the kernel only allows while the node's schedule is
        unchanged over the window (schedule mutations settle eagerly): the
        node idle-listened exactly where its profile has an active RX cell
        and slept everywhere else, so integer bulk credits reproduce the
        per-slot loop's counters exactly.
        """
        asn = self.clock.asn
        if not self.soa:
            for node in self._node_list:
                node.tsch.settle_duty_cycle(asn)
            return
        # Struct-of-arrays path: compute each node's idle-listen count under
        # its (constant-over-the-window) profile exactly as
        # :meth:`~repro.mac.tsch.TschEngine.settle_duty_cycle` would, then
        # credit all counters in one bulk array operation.  Integer credits
        # make the two orders indistinguishable (bit-identical).
        store = self.state
        accounted_col = store.duty_accounted_asn
        rows: list[int] = []
        idles: list[int] = []
        windows: list[int] = []
        for node in self._node_list:
            engine = node.tsch
            row = engine._row
            accounted = int(accounted_col[row])
            if accounted >= asn:
                continue
            if engine._scanning:
                # EB scan: every deferred slot was spent listening on the
                # scan channel -- record_rx(False) per slot, which is
                # exactly idle == window under settle_idle_rx.
                window = asn - accounted
                rows.append(row)
                idles.append(window)
                windows.append(window)
                continue
            profile = engine._profile
            if profile is None or profile.version != engine._version:
                profile = engine.schedule_profile()
            window = asn - accounted
            if not profile.has_rx:
                idle = 0
            elif profile._single:
                length, _, prefix = profile._frames[0][:3]
                full, rem = divmod(window, length)
                idle = full * prefix[length]
                start = accounted % length
                if start + rem <= length:
                    idle += prefix[start + rem] - prefix[start]
                else:
                    idle += (prefix[length] - prefix[start]) + prefix[start + rem - length]
            else:
                idle = profile.count_idle_listen(accounted, asn)
            rows.append(row)
            idles.append(idle)
            windows.append(window)
        if rows:
            store.settle_idle_rx(rows, idles, windows, asn)

    def next_active_asn(self, asn: int) -> Optional[int]:
        """Smallest ASN >= ``asn`` at which any node has a cell installed.

        ``None`` means no node has any cell at all (every future slot is
        idle).  Derived from the per-network active-offset index, which is
        invalidated automatically when any scheduler adds or removes cells.
        """
        self._refresh_active_index()
        best: Optional[int] = None
        for length, offsets in self._active_index.items():
            occurrence = next_offset_occurrence(asn, length, offsets)
            if occurrence is not None and (best is None or occurrence < best):
                best = occurrence
                if best == asn:
                    break
        return best

    def _next_event_asn(self, asn: int, limit: int) -> int:
        """First ASN in [``asn``, ``limit``] whose slot boundary fires a timer.

        Replicates the naive loop's per-slot test (``event_time <= asn *
        slot_duration``, evaluated with the same float arithmetic), so the
        kernel fires every timer at exactly the slot the naive loop would.
        """
        event_time = self.events.peek_time()
        if event_time is None:
            return limit
        slot = self.clock.slot_duration_s
        candidate = int(event_time / slot)
        if candidate < asn:
            candidate = asn
        while event_time > candidate * slot:
            candidate += 1
        while candidate > asn and event_time <= (candidate - 1) * slot:
            candidate -= 1
        return candidate if candidate < limit else limit

    def _push_horizon(self, node: Node, asn: int) -> None:
        """(Re)compute ``node``'s earliest TX-capable ASN >= ``asn`` and heap it.

        Nothing is pushed when no installed cell can ever carry the node's
        backlog; the node re-enters the heap through :attr:`_risky_dirty`
        when its queue or schedule changes.

        With contention pruning, a backlog gated entirely behind shared-cell
        CSMA back-off is heaped at its *post-back-off* occurrence (the first
        matching cell pass with the window expired) instead of the next
        matching cell: the skipped passes are pure counter decrements that
        :meth:`~repro.mac.tsch.TschEngine.settle_csma` credits in bulk, so
        the losing slots need not be stepped at all.
        """
        engine = node.tsch
        occurrence = engine.plan_csma_deferral(asn) if self.csma_pruning else None
        if occurrence is None:
            has_broadcast, has_unicast, destinations = engine.queue_signature()
            occurrence = engine.schedule_profile().next_tx_asn(
                asn, destinations, has_broadcast, has_unicast
            )
        self.state.tx_horizon[engine._row] = -1 if occurrence is None else occurrence
        if occurrence is not None:
            heappush(
                self._risky_heap,
                (
                    occurrence,
                    self._node_order[node.node_id],
                    node,
                    engine.queue_version,
                    engine.schedule_version,
                ),
            )

    def _refresh_horizons(self) -> None:
        """Recompute the TX horizon of every node whose state changed.

        Iterates a snapshot: arming or settling a CSMA deferral inside
        :meth:`_push_horizon` may re-dirty a node through the queue hook,
        which must land in the next refresh, not mutate this one.
        """
        if not self._risky_dirty:
            return
        asn = self.clock.asn
        backlogged = self._backlogged
        dirty = self._risky_dirty
        self._risky_dirty = set()
        for node in sorted(dirty, key=lambda n: self._node_order[n.node_id]):
            if node.node_id in backlogged:
                self._push_horizon(node, asn)

    def _next_risky_asn(self, asn: int, limit: int) -> int:
        """First ASN in [``asn``, ``limit``] at which a transmission is possible.

        A slot is "risky" when some node that currently holds queued packets
        reaches a TX cell that could carry one of them: such a slot can
        mutate queues, CSMA state and the medium, so it must be stepped.  The
        test is conservative (CSMA back-off is ignored), which only costs a
        stepped slot, never correctness.  Queues cannot change inside a
        transmission-free, event-free run, so the answer stays valid across
        the whole jump.

        The horizons live in a min-heap of per-node occurrences, each
        stamped with the (queue version, schedule version) it was derived
        from: entries whose stamps no longer match, or whose node drained its
        queue, are discarded lazily when they surface; occurrences that
        passed unused (e.g. CSMA held the packet back) are recomputed from
        the current ASN.  A query therefore costs O(changed nodes), not
        O(backlog) and certainly not O(network size).
        """
        self._refresh_horizons()
        heap = self._risky_heap
        backlogged = self._backlogged
        while heap:
            occurrence, _, node, queue_version, schedule_version = heap[0]
            engine = node.tsch
            if (
                node.node_id not in backlogged
                or queue_version != engine.queue_version
                or schedule_version != engine.schedule_version
            ):
                heappop(heap)
                continue
            if occurrence < asn:
                heappop(heap)
                self._push_horizon(node, asn)
                continue
            return occurrence if occurrence < limit else limit
        return limit

    def _collect_transmitters(self, asn: int) -> list[Node]:
        """Backlogged nodes with a TX cell matching their queue at ``asn``.

        Pops the due horizon entries off the heap (the popped nodes are
        marked dirty, so their next occurrence is recomputed after this
        slot's outcome) and returns the nodes in insertion order -- the only
        candidates :meth:`_step_slot_dispatch` must plan for transmission.
        """
        self._refresh_horizons()
        heap = self._risky_heap
        backlogged = self._backlogged
        matched: list[Node] = []
        matched_ids: set = set()
        while heap:
            occurrence, _, node, queue_version, schedule_version = heap[0]
            if occurrence > asn:
                break
            engine = node.tsch
            heappop(heap)
            if (
                node.node_id not in backlogged
                or queue_version != engine.queue_version
                or schedule_version != engine.schedule_version
                or node.node_id in matched_ids
            ):
                continue
            if occurrence < asn:
                self._push_horizon(node, asn)
                continue
            matched.append(node)
            matched_ids.add(node.node_id)
            self._risky_dirty.add(node)
        if len(matched) > 1:
            order = self._node_order
            matched.sort(key=lambda node: order[node.node_id])
        return matched

    def _jump_slots(self, target_asn: int) -> None:
        """Leap the clock to ``target_asn`` without visiting any slot.

        Valid over runs the kernel has proven boring -- fully idle (no cell
        anywhere) or transmission-free (cells active but no backlogged node
        reaches a matching TX cell): no callbacks fire, no random numbers are
        drawn, and every node's radio activity over the run is a pure
        function of its (unchanged) schedule, so the accounting is deferred
        entirely to the next settle.  O(1) regardless of run length or
        network size.
        """
        self.clock.asn = target_asn
        # The naive loop's run_until() advances the event clock at every slot
        # boundary it visits; mirror its final position.
        self.events.advance_to((target_asn - 1) * self.clock.slot_duration_s)

    def run_slots(self, num_slots: int, fast: Optional[bool] = None) -> None:
        """Run the network for a fixed number of timeslots.

        With ``fast`` unset the network's :attr:`fast` flag decides between
        the slot-skipping kernel and the naive slot-by-slot loop; results are
        bit-identical either way.
        """
        self.start()
        if fast is None:
            fast = self.fast
        # The naive loop doubles as the reference implementation: it visits
        # every slot, plans with the uncached gather-and-sort and arbitrates
        # through the general medium path, which is the ground truth the
        # skip-equivalence tests compare the kernel against.
        for node in self.nodes.values():
            node.tsch.cache_enabled = fast
        self.medium.fast_paths = fast
        if not fast:
            for _ in range(num_slots):
                self.step_slot_reference()
            return
        # The loop below is the hot kernel; the helpers it inlines
        # (_next_event_asn / next_active_asn / _next_risky_asn / _jump_slots)
        # remain the readable reference for what each block computes.
        clock = self.clock
        events = self.events
        slot = clock.slot_duration_s
        end_asn = clock.asn + num_slots
        while clock.asn < end_asn:
            asn = clock.asn
            # --- first slot boundary with a due timer (see _next_event_asn)
            event_time = events.peek_time()
            if event_time is None:
                boundary = end_asn
            else:
                boundary = int(event_time / slot)
                if boundary < asn:
                    boundary = asn
                while event_time > boundary * slot:
                    boundary += 1
                while boundary > asn and event_time <= (boundary - 1) * slot:
                    boundary -= 1
                if boundary > end_asn:
                    boundary = end_asn
                if boundary == asn:
                    # Fire this slot boundary's timers up front, exactly as
                    # step_slot would, then re-evaluate: the slot often stays
                    # skippable (e.g. a traffic tick on a node whose TX cell
                    # is slots away).  step_slot's own run_until is a no-op.
                    events.run_until(asn * slot)
                    boundary = self._next_event_asn(asn, end_asn)
            if boundary > asn:
                # --- next ASN with any installed cell (see next_active_asn)
                if self._active_index_dirty:
                    self._refresh_active_index()
                length = self._single_length
                if length:
                    offsets = self._single_offsets
                    residue = asn % length
                    index = bisect_left(offsets, residue)
                    if index < len(offsets):
                        active = asn + (offsets[index] - residue)
                    else:
                        active = asn + (offsets[0] + length - residue)
                    target = active if active < boundary else boundary
                else:
                    active = self.next_active_asn(asn)
                    target = boundary if active is None else min(active, boundary)
                if target > asn:
                    # Fully idle run: every node sleeps.  Inlined _jump_slots
                    # (this is the kernel's hottest jump).
                    clock.asn = target
                    events.advance_to((target - 1) * slot)
                    continue
                risky = self._next_risky_asn(asn, boundary)
                if risky > asn:
                    # Transmission-free run: active cells idle-listen, which
                    # deferred accounting settles in bulk later.
                    self._jump_slots(risky)
                    continue
            self._step_slot_dispatch()
        self._flush_duty_cycle()

    def run_seconds(self, seconds: float) -> None:
        """Run the network for (approximately) ``seconds`` of simulated time."""
        self.run_slots(self.clock.seconds_to_slots(seconds))

    def run_experiment(
        self,
        warmup_s: float,
        measurement_s: float,
        drain_s: float = 5.0,
        scheduler_name: str = "",
    ) -> NetworkMetrics:
        """Warm-up, measure, drain, and return the headline metrics.

        * warm-up: the DODAG forms / schedules converge; nothing is measured;
        * measurement: application traffic is generated and all six paper
          metrics are accumulated;
        * drain: generation stops so that packets created near the end of the
          window still get a chance to reach the root (keeps the PDR estimate
          unbiased); MAC counters are frozen at the start of the drain.
        """
        self.start()
        self.run_seconds(warmup_s)
        self.metrics.begin_measurement(self.nodes.values(), self.clock.now)
        self.run_seconds(measurement_s)
        self.metrics.end_measurement(self.nodes.values(), self.clock.now)
        for node in self.nodes.values():
            node.traffic_enabled = False
            if node.traffic is not None:
                node.traffic.stop()
        self.run_seconds(drain_s)
        if not scheduler_name and self.nodes:
            scheduler_name = next(iter(self.nodes.values())).scheduler.name
        return self.metrics.finalize(self.nodes.values(), self.clock.now, scheduler_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def roots(self) -> list[Node]:
        return [node for node in self.nodes.values() if node.is_root]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)
