"""The slot-synchronous network: nodes, medium, and the main simulation loop.

The :class:`Network` is the Cooja-equivalent of this reproduction: it owns the
shared clock and event queue, the radio medium, the metrics collector and all
nodes, and advances the whole system one TSCH timeslot at a time:

1. asynchronous timers (traffic generation, Trickle, EB period, 6P timeouts,
   the GT-TSCH load-balancing period) that expired before the slot boundary
   are fired;
2. every node plans its slot (transmit / listen / sleep) from its installed
   schedule;
3. the medium arbitrates all concurrent transmissions (collisions, link loss,
   ACKs);
4. decoded frames are delivered, transmitters learn their ACK outcome, and
   radio duty-cycle accounting is updated.

``run_experiment`` wraps the warm-up / measurement / drain phasing used by
every benchmark so the figures measure steady-state behaviour, as the paper
does.

The slot loop comes in two flavours.  The naive loop (``fast=False``) visits
every single timeslot.  The default slot-skipping kernel exploits the fact
that the schedule is periodic and mutations are observable (every
:class:`~repro.mac.slotframe.Slotframe` mutation bumps a version counter): it
maintains a network-wide *active-offset index* (the union of installed slot
offsets modulo each slotframe length) to compute :meth:`Network.next_active_asn`,
combines it with :meth:`EventQueue.peek_time`, and jumps the clock directly
over two kinds of provably-boring runs of slots:

* **idle runs** -- no node has any cell at those ASNs and no timer is due:
  every node sleeps, which is credited in bulk;
* **transmission-free runs** -- cells are active but no node that holds a
  queued packet reaches a TX-capable cell before the run ends: nodes with an
  active RX cell idle-listen, everyone else sleeps, both credited in bulk
  from each node's :class:`~repro.mac.tsch.ScheduleProfile`.

Neither kind of slot fires callbacks, draws random numbers, or touches the
medium in the naive loop, and the duty-cycle meter counts integer slots, so
the kernel's finalized metrics are bit-identical to the naive loop's.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence

from repro.mac.tsch import SlotPlan, next_offset_occurrence
from repro.net.packet import BROADCAST_ADDRESS
from repro.metrics.collector import MetricsCollector, NetworkMetrics
from repro.net.node import Node, NodeConfig
from repro.net.topology import TopologyBuilder
from repro.phy.medium import Medium
from repro.phy.propagation import PropagationModel, UnitDiskLossyEdgeModel
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry

#: Factory signature used when building a network from a topology:
#: ``scheduler_factory(node_id, is_root) -> SchedulingFunction``.
SchedulerFactory = Callable[[int, bool], "object"]
#: ``traffic_factory(node_id, is_root) -> TrafficGenerator | None``.
TrafficFactory = Callable[[int, bool], "object"]


class Network:
    """A complete simulated 6TiSCH network."""

    def __init__(
        self,
        propagation: Optional[PropagationModel] = None,
        seed: int = 0,
        default_node_config: Optional[NodeConfig] = None,
        fast: bool = True,
    ) -> None:
        self.rngs = RngRegistry(seed)
        self.default_node_config = default_node_config or NodeConfig()
        self.clock = SimClock(self.default_node_config.tsch.slot_duration_s)
        self.events = EventQueue()
        self.medium = Medium(
            propagation or UnitDiskLossyEdgeModel(), self.rngs.stream("phy")
        )
        self.metrics = MetricsCollector()
        self.nodes: Dict[int, Node] = {}
        self._started = False
        #: Use the slot-skipping kernel in :meth:`run_slots` (bit-identical to
        #: the naive loop; ``fast=False`` is the escape hatch).
        self.fast = fast
        #: slotframe length -> sorted union of installed slot offsets, across
        #: every node; rebuilt whenever any schedule version changes.
        self._active_index: Dict[int, List[int]] = {}
        self._active_index_dirty = True
        #: Flat node list, kept in sync with :attr:`nodes` (hot-loop iteration).
        self._node_list: List[Node] = []
        self._single_length = 0
        self._single_offsets: List[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: int,
        position,
        scheduler,
        is_root: bool = False,
        config: Optional[NodeConfig] = None,
        traffic=None,
    ) -> Node:
        """Create a node, register it on the medium and return it."""
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already exists")
        node = Node(
            node_id=node_id,
            position=position,
            scheduler=scheduler,
            config=config or self.default_node_config,
            event_queue=self.events,
            rng_registry=self.rngs,
            is_root=is_root,
        )
        node.set_metrics(self.metrics)
        if traffic is not None:
            node.set_traffic_generator(traffic)
        node.tsch.on_schedule_change = self._on_schedule_change
        self.nodes[node_id] = node
        self.medium.register_node(node_id, position)
        self._active_index_dirty = True
        self._node_list = list(self.nodes.values())
        return node

    def build_from_topology(
        self,
        topology: TopologyBuilder,
        scheduler_factory: SchedulerFactory,
        traffic_factory: Optional[TrafficFactory] = None,
        warm_start: bool = True,
        config: Optional[NodeConfig] = None,
    ) -> List[Node]:
        """Instantiate every node of ``topology``.

        ``warm_start=True`` presets the RPL parents/ranks declared by the
        topology (the deterministic setup used by the benchmark figures);
        with ``warm_start=False`` the DODAG forms from scratch through
        DIO exchange.
        """
        created: List[Node] = []
        for spec in topology:
            traffic = traffic_factory(spec.node_id, spec.is_root) if traffic_factory else None
            node = self.add_node(
                node_id=spec.node_id,
                position=spec.position,
                scheduler=scheduler_factory(spec.node_id, spec.is_root),
                is_root=spec.is_root,
                config=config,
                traffic=traffic,
            )
            created.append(node)
        if warm_start:
            for spec in topology:
                node = self.nodes[spec.node_id]
                dodag_id = spec.dodag_id if spec.dodag_id is not None else spec.node_id
                node.rpl.warm_start(
                    parent=spec.parent,
                    rank=topology.initial_rank(spec.node_id),
                    dodag_id=dodag_id,
                )
        return created

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node's protocol machinery (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def step_slot(self) -> None:
        """Advance the whole network by one TSCH timeslot."""
        asn = self.clock.asn
        now = self.clock.now
        # 1. fire asynchronous timers due at or before this slot boundary.
        self.events.run_until(now)

        # 2. every node plans its slot.  Sleeping nodes are accounted right
        # away (their slot cannot be affected by the arbitration below).
        tx_plans: List[SlotPlan] = []
        intents = []
        intent_owners: List[int] = []
        rx_nodes: List[Node] = []
        listeners: Dict[int, int] = {}
        for node in self._node_list:
            plan = node.tsch.plan_slot(asn)
            if plan.action == "sleep":
                node.tsch.duty_cycle.record_sleep()
            elif plan.action == "tx":
                intents.append(node.tsch.build_intent(plan))
                intent_owners.append(node.node_id)
                tx_plans.append(plan)
            else:
                rx_nodes.append(node)
                listeners[node.node_id] = plan.channel

        # 3. the medium arbitrates.
        results = self.medium.resolve_slot(intents, listeners)

        # 4a. deliver decoded frames.  A unicast frame may be *decoded* by
        # overhearing neighbours (they listened on the same channel), but only
        # the link-layer destination processes it -- real radios filter on the
        # destination address before handing the frame to the MAC.
        nodes_that_received = set()
        for result in results:
            packet = result.intent.packet
            for receiver in result.receivers:
                nodes_that_received.add(receiver)
                if packet.is_broadcast or packet.link_destination == receiver:
                    self.nodes[receiver].tsch.on_frame_received(packet, asn, now)

        # 4b. transmitters process their outcome (ACK, retransmission, drop).
        for node_id, plan, result in zip(intent_owners, tx_plans, results):
            self.nodes[node_id].tsch.on_transmission_result(plan, result, asn, now)

        # 4c. duty-cycle accounting (sleeping nodes were credited in step 2).
        for node_id in intent_owners:
            self.nodes[node_id].tsch.duty_cycle.record_tx()
        if nodes_that_received:
            for node in rx_nodes:
                node.tsch.duty_cycle.record_rx(node.node_id in nodes_that_received)
        else:
            for node in rx_nodes:
                node.tsch.duty_cycle.record_rx(False)

        self.clock.advance_slot()

    def step_slot_reference(self) -> None:
        """The seed's slot loop, preserved verbatim as the naive kernel.

        ``run_slots(fast=False)`` drives the network through this method with
        every schedule cache disabled: each slot plans every node with the
        original gather-and-sort, arbitrates the medium, and accounts every
        node through :meth:`~repro.mac.tsch.TschEngine.account_slot`.  It is
        the ground truth the skip-equivalence tests compare the kernel
        against, and the baseline the kernel-speed benchmark measures.
        """
        asn = self.clock.asn
        now = self.clock.now
        self.events.run_until(now)

        plans: Dict[int, SlotPlan] = {}
        intents = []
        intent_owners: List[int] = []
        listeners: Dict[int, int] = {}
        for node_id, node in self.nodes.items():
            plan = node.tsch.plan_slot(asn)
            plans[node_id] = plan
            if plan.is_tx:
                intents.append(node.tsch.build_intent(plan))
                intent_owners.append(node_id)
            elif plan.is_rx:
                listeners[node_id] = plan.channel

        results = self.medium.resolve_slot(intents, listeners)

        nodes_that_received = set()
        for result in results:
            packet = result.intent.packet
            for receiver in result.receivers:
                nodes_that_received.add(receiver)
                if packet.is_broadcast or packet.link_destination == receiver:
                    self.nodes[receiver].tsch.on_frame_received(packet, asn, now)

        for node_id, result in zip(intent_owners, results):
            self.nodes[node_id].tsch.on_transmission_result(plans[node_id], result, asn, now)

        for node_id, plan in plans.items():
            self.nodes[node_id].tsch.account_slot(
                plan, frame_received=node_id in nodes_that_received
            )

        self.clock.advance_slot()

    # ------------------------------------------------------------------
    # slot-skipping kernel
    # ------------------------------------------------------------------
    def _on_schedule_change(self) -> None:
        """Some node's schedule mutated; the active-offset index is stale."""
        self._active_index_dirty = True

    def _refresh_active_index(self) -> None:
        """Rebuild the active-offset index if any node's schedule changed."""
        if not self._active_index_dirty:
            return
        union: Dict[int, set] = {}
        for node in self.nodes.values():
            for length, offsets in node.tsch.schedule_profile().frame_offsets:
                if offsets:
                    union.setdefault(length, set()).update(offsets)
        self._active_index = {
            length: sorted(offsets) for length, offsets in union.items()
        }
        # Unpacked single-slotframe-length form for the kernel's hot loop.
        if len(self._active_index) == 1:
            ((self._single_length, self._single_offsets),) = self._active_index.items()
        else:
            self._single_length = 0
            self._single_offsets = []
        self._active_index_dirty = False

    def next_active_asn(self, asn: int) -> Optional[int]:
        """Smallest ASN >= ``asn`` at which any node has a cell installed.

        ``None`` means no node has any cell at all (every future slot is
        idle).  Derived from the per-network active-offset index, which is
        invalidated automatically when any scheduler adds or removes cells.
        """
        self._refresh_active_index()
        best: Optional[int] = None
        for length, offsets in self._active_index.items():
            occurrence = next_offset_occurrence(asn, length, offsets)
            if occurrence is not None and (best is None or occurrence < best):
                best = occurrence
                if best == asn:
                    break
        return best

    def _next_event_asn(self, asn: int, limit: int) -> int:
        """First ASN in [``asn``, ``limit``] whose slot boundary fires a timer.

        Replicates the naive loop's per-slot test (``event_time <= asn *
        slot_duration``, evaluated with the same float arithmetic), so the
        kernel fires every timer at exactly the slot the naive loop would.
        """
        event_time = self.events.peek_time()
        if event_time is None:
            return limit
        slot = self.clock.slot_duration_s
        candidate = int(event_time / slot)
        if candidate < asn:
            candidate = asn
        while event_time > candidate * slot:
            candidate += 1
        while candidate > asn and event_time <= (candidate - 1) * slot:
            candidate -= 1
        return candidate if candidate < limit else limit

    def _next_risky_asn(self, asn: int, limit: int) -> int:
        """First ASN in [``asn``, ``limit``] at which a transmission is possible.

        A slot is "risky" when some node that currently holds queued packets
        reaches a TX-capable cell: such a slot can mutate queues, CSMA state
        and the medium, so it must be stepped.  The test is conservative (the
        packet may not match the cell), which only costs a stepped slot, never
        correctness.  Queues cannot change inside a transmission-free,
        event-free run, so the answer stays valid across the whole jump.
        """
        best = limit
        for node in self._node_list:
            queue = node.tsch.queue
            if not len(queue):
                continue
            destinations = set()
            has_broadcast = False
            has_unicast = False
            for packet in queue:
                destination = packet.link_destination
                if destination == BROADCAST_ADDRESS:
                    has_broadcast = True
                else:
                    has_unicast = True
                    destinations.add(destination)
            occurrence = node.tsch.schedule_profile().next_tx_asn(
                asn, destinations, has_broadcast, has_unicast
            )
            if occurrence is not None and occurrence < best:
                best = occurrence
                if best <= asn:
                    break
        return best

    def _skip_slots(self, start_asn: int, target_asn: int) -> None:
        """Leap the clock over the transmission-free run [``start_asn``,
        ``target_asn``) in one jump.

        Nodes whose schedule has RX cells inside the run are credited their
        idle-listen slots, everyone else sleeps; the accounting is
        integer-exact, so the finalized duty-cycle equals the naive loop's.
        (Fully idle runs — no cells at all — are handled by an inlined bulk
        sleep in :meth:`run_slots`.)
        """
        count = target_asn - start_asn
        for node in self._node_list:
            profile = node.tsch.schedule_profile()
            meter = node.tsch.duty_cycle
            if not profile.has_rx:
                meter.record_sleep_bulk(count)
                continue
            idle = profile.count_idle_listen(start_asn, target_asn)
            meter.record_idle_listen_bulk(idle)
            meter.record_sleep_bulk(count - idle)
        self.clock.advance_slots(count)
        # The naive loop's run_until() advances the event clock at every slot
        # boundary it visits; mirror its final position.
        self.events.advance_to((target_asn - 1) * self.clock.slot_duration_s)

    def run_slots(self, num_slots: int, fast: Optional[bool] = None) -> None:
        """Run the network for a fixed number of timeslots.

        With ``fast`` unset the network's :attr:`fast` flag decides between
        the slot-skipping kernel and the naive slot-by-slot loop; results are
        bit-identical either way.
        """
        self.start()
        if fast is None:
            fast = self.fast
        # The naive loop doubles as the reference implementation: it visits
        # every slot, plans with the uncached gather-and-sort and arbitrates
        # through the general medium path, which is the ground truth the
        # skip-equivalence tests compare the kernel against.
        for node in self.nodes.values():
            node.tsch.cache_enabled = fast
        self.medium.fast_paths = fast
        if not fast:
            for _ in range(num_slots):
                self.step_slot_reference()
            return
        # The loop below is the hot kernel; the helpers it inlines
        # (_next_event_asn / next_active_asn / _next_risky_asn / _skip_slots)
        # remain the readable reference for what each block computes.
        clock = self.clock
        events = self.events
        node_list = self._node_list
        slot = clock.slot_duration_s
        end_asn = clock.asn + num_slots
        while clock.asn < end_asn:
            asn = clock.asn
            # --- first slot boundary with a due timer (see _next_event_asn)
            heap = events._heap
            if heap and not heap[0].event.cancelled:
                event_time = heap[0].time
            else:
                event_time = events.peek_time()
            if event_time is None:
                boundary = end_asn
            else:
                boundary = int(event_time / slot)
                if boundary < asn:
                    boundary = asn
                while event_time > boundary * slot:
                    boundary += 1
                while boundary > asn and event_time <= (boundary - 1) * slot:
                    boundary -= 1
                if boundary > end_asn:
                    boundary = end_asn
                if boundary == asn:
                    # Fire this slot boundary's timers up front, exactly as
                    # step_slot would, then re-evaluate: the slot often stays
                    # skippable (e.g. a traffic tick on a node whose TX cell
                    # is slots away).  step_slot's own run_until is a no-op.
                    events.run_until(asn * slot)
                    boundary = self._next_event_asn(asn, end_asn)
            if boundary > asn:
                # --- next ASN with any installed cell (see next_active_asn)
                if self._active_index_dirty:
                    self._refresh_active_index()
                length = self._single_length
                if length:
                    offsets = self._single_offsets
                    residue = asn % length
                    index = bisect_left(offsets, residue)
                    if index < len(offsets):
                        active = asn + (offsets[index] - residue)
                    else:
                        active = asn + (offsets[0] + length - residue)
                    target = active if active < boundary else boundary
                else:
                    active = self.next_active_asn(asn)
                    target = boundary if active is None else min(active, boundary)
                if target > asn:
                    # Fully idle run: every node sleeps.  Inlined equivalent
                    # of DutyCycleMeter.record_sleep_bulk per node (this is
                    # the kernel's hottest jump).
                    count = target - asn
                    for node in node_list:
                        meter = node.tsch.duty_cycle
                        meter.sleep_slots += count
                        meter.total_slots += count
                    clock.asn = target
                    events.advance_to((target - 1) * slot)
                    continue
                risky = self._next_risky_asn(asn, boundary)
                if risky > asn:
                    self._skip_slots(asn, risky)
                    continue
            self.step_slot()

    def run_seconds(self, seconds: float) -> None:
        """Run the network for (approximately) ``seconds`` of simulated time."""
        self.run_slots(self.clock.seconds_to_slots(seconds))

    def run_experiment(
        self,
        warmup_s: float,
        measurement_s: float,
        drain_s: float = 5.0,
        scheduler_name: str = "",
    ) -> NetworkMetrics:
        """Warm-up, measure, drain, and return the headline metrics.

        * warm-up: the DODAG forms / schedules converge; nothing is measured;
        * measurement: application traffic is generated and all six paper
          metrics are accumulated;
        * drain: generation stops so that packets created near the end of the
          window still get a chance to reach the root (keeps the PDR estimate
          unbiased); MAC counters are frozen at the start of the drain.
        """
        self.start()
        self.run_seconds(warmup_s)
        self.metrics.begin_measurement(self.nodes.values(), self.clock.now)
        self.run_seconds(measurement_s)
        self.metrics.end_measurement(self.nodes.values(), self.clock.now)
        for node in self.nodes.values():
            node.traffic_enabled = False
            if node.traffic is not None:
                node.traffic.stop()
        self.run_seconds(drain_s)
        if not scheduler_name and self.nodes:
            scheduler_name = next(iter(self.nodes.values())).scheduler.name
        return self.metrics.finalize(self.nodes.values(), self.clock.now, scheduler_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def roots(self) -> List[Node]:
        return [node for node in self.nodes.values() if node.is_root]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)
