"""Application traffic generators.

The paper's workload axis is the per-node data generation rate in packets per
minute (ppm): Fig. 8 sweeps 30-165 ppm per node, Figs. 9-10 fix 120 ppm.  Two
generators are provided:

* :class:`PeriodicTrafficGenerator` -- constant-bit-rate generation with a
  small random jitter so nodes do not fire in lockstep (the behaviour of the
  periodic sensing applications used in the paper's experiments);
* :class:`PoissonTrafficGenerator` -- exponentially distributed inter-arrival
  times, useful for burstier ablation studies.

Generators call back into the node (``node.generate_data()``); the node
decides the destination (its DODAG root) and handles queueing.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.sim.events import EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node


class TrafficGenerator:
    """Base class for application-level packet generators."""

    def __init__(self, rate_ppm: float, start_delay_s: float = 0.0) -> None:
        if rate_ppm < 0:
            raise ValueError("rate_ppm must be non-negative")
        if start_delay_s < 0:
            raise ValueError("start_delay_s must be non-negative")
        self.rate_ppm = rate_ppm
        #: Seconds to wait before the first packet -- scenarios use this to
        #: let the network form (DODAG + schedule negotiation) before load is
        #: applied, matching the paper's steady-state measurements.
        self.start_delay_s = start_delay_s
        self.node: Optional["Node"] = None
        self.queue: Optional[EventQueue] = None
        self.rng = None
        self.enabled = True
        #: Number of generation events fired (whether or not the packet was
        #: accepted by the queue).
        self.generated = 0

    @property
    def period_s(self) -> float:
        """Mean inter-packet interval in seconds."""
        if self.rate_ppm == 0:
            return float("inf")
        return 60.0 / self.rate_ppm

    def attach(self, node: "Node", queue: EventQueue, rng) -> None:
        self.node = node
        self.queue = queue
        self.rng = rng

    def start(self) -> None:
        """Schedule the first generation event."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop generating new packets (existing queue contents still drain)."""
        self.enabled = False

    def _fire(self) -> None:
        if not self.enabled or self.node is None:
            return
        self.generated += 1
        self.node.generate_data()
        self._schedule_next()

    def _schedule_next(self) -> None:
        raise NotImplementedError


class PeriodicTrafficGenerator(TrafficGenerator):
    """Constant-rate generation with uniform jitter around the nominal period."""

    def __init__(
        self, rate_ppm: float, jitter_fraction: float = 0.1, start_delay_s: float = 0.0
    ) -> None:
        super().__init__(rate_ppm, start_delay_s=start_delay_s)
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must lie in [0, 1)")
        self.jitter_fraction = jitter_fraction

    def start(self) -> None:
        if self.rate_ppm == 0 or self.queue is None:
            return
        self.enabled = True
        # Random phase so all nodes do not generate in the same slot.
        first = self.start_delay_s + self.rng.random() * self.period_s
        self.queue.schedule_in(first, self._fire, label="app-traffic")

    def _schedule_next(self) -> None:
        jitter = 1.0 + self.jitter_fraction * (2.0 * self.rng.random() - 1.0)
        self.queue.schedule_in(self.period_s * jitter, self._fire, label="app-traffic")


class PoissonTrafficGenerator(TrafficGenerator):
    """Poisson arrivals with the given mean rate."""

    def start(self) -> None:
        if self.rate_ppm == 0 or self.queue is None:
            return
        self.enabled = True
        self.queue.schedule_in(
            self.start_delay_s + self._draw_interval(), self._fire, label="app-traffic"
        )

    def _draw_interval(self) -> float:
        return self.rng.expovariate(1.0 / self.period_s)

    def _schedule_next(self) -> None:
        self.queue.schedule_in(self._draw_interval(), self._fire, label="app-traffic")
