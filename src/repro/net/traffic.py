"""Application traffic generators.

The paper's workload axis is the per-node data generation rate in packets per
minute (ppm): Fig. 8 sweeps 30-165 ppm per node, Figs. 9-10 fix 120 ppm.  Two
generators are provided:

* :class:`PeriodicTrafficGenerator` -- constant-bit-rate generation with a
  small random jitter so nodes do not fire in lockstep (the behaviour of the
  periodic sensing applications used in the paper's experiments);
* :class:`PoissonTrafficGenerator` -- exponentially distributed inter-arrival
  times, useful for burstier ablation studies.

Generators call back into the node (``node.generate_data()``); the node
decides the destination (its DODAG root) and handles queueing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.events import EventQueue, PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node


class TrafficGenerator:
    """Base class for application-level packet generators.

    Generation rides a :class:`~repro.sim.events.PeriodicTimer` on the
    queue's ``"traffic"`` cohort wheel (falling back to flat scheduling when
    wheels are disabled): at hundreds of nodes the per-node generation events
    would otherwise dominate the event heap.  The timer's idle probe settles
    ticks that provably generate nothing -- the node has not joined a DODAG
    yet, or the experiment's drain phase disabled generation -- while keeping
    the exact rng draws and attempt counting of a fired tick.
    """

    def __init__(self, rate_ppm: float, start_delay_s: float = 0.0) -> None:
        if rate_ppm < 0:
            raise ValueError("rate_ppm must be non-negative")
        if start_delay_s < 0:
            raise ValueError("start_delay_s must be non-negative")
        self.rate_ppm = rate_ppm
        #: Seconds to wait before the first packet -- scenarios use this to
        #: let the network form (DODAG + schedule negotiation) before load is
        #: applied, matching the paper's steady-state measurements.
        self.start_delay_s = start_delay_s
        self.node: Optional["Node"] = None
        self.queue: Optional[EventQueue] = None
        self.rng = None
        self.enabled = True
        #: Number of generation events fired (whether or not the packet was
        #: accepted by the queue).
        self.generated = 0
        #: Optional phase observer forwarded to the underlying timer (the
        #: owning node mirrors generation phases into the struct-of-arrays
        #: node-state columns, see :mod:`repro.kernel.state`).
        self.phase_hook = None
        self._timer: Optional[PeriodicTimer] = None

    @property
    def period_s(self) -> float:
        """Mean inter-packet interval in seconds."""
        if self.rate_ppm == 0:
            return float("inf")
        return 60.0 / self.rate_ppm

    def attach(self, node: "Node", queue: EventQueue, rng) -> None:
        self.node = node
        self.queue = queue
        self.rng = rng

    def start(self) -> None:
        """Schedule the first generation event."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop generating new packets (existing queue contents still drain).

        Cancels the underlying timer outright rather than letting it die on
        its next tick: a stop/start cycle (node crash + reboot) must never
        leave a zombie timer armed next to the fresh one ``start`` creates.
        """
        self.enabled = False
        if self._timer is not None:
            self._timer.stop()

    def _start_timer(self, first_offset: float) -> None:
        """Arm the shared periodic machinery with the subclass's period draw."""
        self._timer = PeriodicTimer(
            self.queue,
            self.period_s,
            self._fire,
            start_offset=first_offset,
            label="app-traffic",
            period_fn=self._draw_interval,
            wheel=self.queue.wheel("traffic"),
            idle_probe=self._tick_provably_idle,
        )
        self._timer.on_phase = self.phase_hook
        self._timer.start()

    def _fire(self):
        if not self.enabled or self.node is None:
            # Returning False stops the timer: the naive chain equally died
            # here by not rescheduling itself.
            return False
        self.generated += 1
        self.node.generate_data()
        return None

    def _tick_provably_idle(self) -> bool:
        """Whether this tick provably generates nothing (see generate_data).

        Mirrors exactly the early-return conditions of
        :meth:`~repro.net.node.Node.generate_data`; the attempt counter that
        a fired tick would bump is settled here, so probing is unobservable.
        """
        node = self.node
        if node is None or not self.enabled:
            return False
        if getattr(node, "traffic_enabled", True) is False or getattr(node, "is_root", False):
            self.generated += 1
            return True
        rpl = getattr(node, "rpl", None)
        if rpl is not None and (not rpl.is_joined() or rpl.dodag_id is None):
            self.generated += 1
            return True
        return False

    def _draw_interval(self) -> float:
        raise NotImplementedError


class PeriodicTrafficGenerator(TrafficGenerator):
    """Constant-rate generation with uniform jitter around the nominal period."""

    def __init__(
        self, rate_ppm: float, jitter_fraction: float = 0.1, start_delay_s: float = 0.0
    ) -> None:
        super().__init__(rate_ppm, start_delay_s=start_delay_s)
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must lie in [0, 1)")
        self.jitter_fraction = jitter_fraction

    def start(self) -> None:
        if self.rate_ppm == 0 or self.queue is None:
            return
        self.enabled = True
        # Random phase so all nodes do not generate in the same slot.
        self._start_timer(self.start_delay_s + self.rng.random() * self.period_s)

    def _draw_interval(self) -> float:
        jitter = 1.0 + self.jitter_fraction * (2.0 * self.rng.random() - 1.0)
        return self.period_s * jitter


class PoissonTrafficGenerator(TrafficGenerator):
    """Poisson arrivals with the given mean rate."""

    def start(self) -> None:
        if self.rate_ppm == 0 or self.queue is None:
            return
        self.enabled = True
        self._start_timer(self.start_delay_s + self._draw_interval())

    def _draw_interval(self) -> float:
        return self.rng.expovariate(1.0 / self.period_s)
