"""Node, network and workload models.

This package composes the protocol layers into runnable networks:

* :mod:`repro.net.packet` -- the packet model shared by every layer.
* :mod:`repro.net.node` -- an IoT node: application + RPL + 6top + TSCH MAC.
* :mod:`repro.net.network` -- the slot-synchronous network loop and PHY
  arbitration.
* :mod:`repro.net.topology` -- topology builders (line, star, tree, random,
  multi-DODAG) mirroring the layouts used in the paper's evaluation.
* :mod:`repro.net.traffic` -- application traffic generators expressed in
  packets per minute (ppm), matching the paper's workload axis.

``Node`` and ``Network`` sit at the top of the layer stack (they import the
MAC, RPL and 6top packages), while the lower layers import
:mod:`repro.net.packet`; to keep those imports acyclic the two heavy classes
are exposed lazily via module ``__getattr__``.
"""

from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType, make_data_packet
from repro.net.topology import (
    NodeSpec,
    TopologyBuilder,
    grid_positions,
    line_topology,
    multi_dodag_topology,
    random_topology,
    single_dodag_topology,
    star_topology,
    tree_topology,
)
from repro.net.traffic import PeriodicTrafficGenerator, PoissonTrafficGenerator

__all__ = [
    "Packet",
    "PacketType",
    "BROADCAST_ADDRESS",
    "make_data_packet",
    "Node",
    "NodeConfig",
    "Network",
    "NodeSpec",
    "TopologyBuilder",
    "grid_positions",
    "line_topology",
    "star_topology",
    "tree_topology",
    "single_dodag_topology",
    "random_topology",
    "multi_dodag_topology",
    "PeriodicTrafficGenerator",
    "PoissonTrafficGenerator",
]

_LAZY = {"Node": "repro.net.node", "NodeConfig": "repro.net.node", "Network": "repro.net.network"}


def __getattr__(name):
    """Lazily expose Node/NodeConfig/Network (PEP 562) to avoid import cycles."""
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro.net' has no attribute {name!r}")
