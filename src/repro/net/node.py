"""The simulated IoT node: application + RPL + 6top + TSCH MAC.

A :class:`Node` is the software equivalent of one Zolertia Firefly mote
running Contiki-NG with a given scheduling function.  It wires the protocol
layers together:

* the application layer generates upward data traffic towards the DODAG root
  and acts as the sink on root nodes;
* RPL maintains the parent/children relations and the Rank;
* the 6top layer runs cell negotiation transactions on behalf of the
  scheduling function;
* the TSCH engine executes the schedule slot by slot;
* the scheduling function (GT-TSCH, Orchestra, minimal) installs cells and
  reacts to protocol events.

The node never talks to the radio medium directly -- the
:class:`repro.net.network.Network` drives the slot loop and the PHY
arbitration -- which keeps the layering identical to the real stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.mac.tsch import TschConfig, TschEngine
from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType, make_data_packet
from repro.rpl.engine import RplConfig, RplEngine
from repro.rpl.rank import INFINITE_RANK
from repro.kernel.state import LocalBacking, NodeStateStore, bind_backing
from repro.sim.events import EventQueue, PeriodicTimer
from repro.sixtop.layer import SixPConfig, SixPLayer
from repro.sixtop.messages import SixPMessage, SixPReturnCode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collector import MetricsCollector
    from repro.net.traffic import TrafficGenerator
    from repro.schedulers.base import SchedulingFunction
    from repro.sim.clock import SimClock


@dataclass
class NodeStats:
    """Application / network-layer counters for one node."""

    data_generated: int = 0
    data_delivered_as_sink: int = 0
    data_forwarded: int = 0
    #: Data packets dropped because the node had no route (no parent yet).
    routing_drops: int = 0
    #: Data packets dropped on MAC-queue overflow at this node.
    queue_drops: int = 0
    eb_sent: int = 0


@dataclass
class NodeConfig:
    """Per-node protocol configuration bundle."""

    tsch: TschConfig = field(default_factory=TschConfig)
    rpl: RplConfig = field(default_factory=RplConfig)
    sixp: SixPConfig = field(default_factory=SixPConfig)
    #: Cold-start join: non-root nodes boot unsynchronised and scan for an
    #: Enhanced Beacon before any upper layer (scheduler, RPL, traffic)
    #: starts -- see :meth:`Node.begin_scan` and ``docs/faults.md``.  Roots
    #: ignore the flag: they anchor the ASN and the DODAG.
    cold_start_join: bool = False


class Node:
    """One IoT node of the simulated 6TiSCH network."""

    def __init__(
        self,
        node_id: int,
        position: tuple[float, float],
        scheduler: "SchedulingFunction",
        config: NodeConfig,
        event_queue: EventQueue,
        rng_registry,
        is_root: bool = False,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.is_root = is_root
        self.config = config
        self.event_queue = event_queue
        self.rng_registry = rng_registry
        #: Struct-of-arrays backing row for the liveness flag and the
        #: EB/traffic/trickle timer phases; assigned before the ``alive``
        #: property below is first set, and retargeted onto the network's
        #: shared store by :meth:`bind_state`.
        self._backing = LocalBacking()
        self._row = 0
        self.stats = NodeStats()
        self.metrics: Optional["MetricsCollector"] = None
        self.traffic: Optional["TrafficGenerator"] = None
        #: When False the node silently stops generating new application
        #: packets (used by the experiment runner to drain in-flight traffic
        #: at the end of the measurement window).
        self.traffic_enabled = True
        #: Crash state (fault injection): a dead node's MAC refuses every
        #: enqueue silently -- its timers are stopped by the injector, but
        #: already-scheduled protocol callbacks (6top retransmissions, the
        #: periodic DAO refresh) may still fire and must not transmit.  The
        #: flag lives in the backing row's ``alive`` column (property below).
        self.alive = True
        #: Cold-start join state (see :meth:`begin_scan`).  ``cold_start``
        #: selects the unsynchronised boot path; ``_cold_join_pending`` is
        #: raised while the node scans/acquires a parent and cleared (with a
        #: join-metrics sample) by the first parent acquisition.
        self.cold_start = config.cold_start_join and not is_root
        self._cold_join_pending = False
        #: Set by the network so scan transitions maintain its registry of
        #: scanning listeners: ``on_scan_state(node, scanning)``.
        self.on_scan_state: Optional[Callable[["Node", bool], None]] = None
        #: Shared simulation clock (assigned by ``Network.add_node``); a
        #: standalone node reads ASN 0, which only shifts its scan-channel
        #: phase, never correctness.
        self.clock: Optional["SimClock"] = None
        #: Absolute time of the last frame this node decoded while
        #: synchronised; the keepalive window measures silence against it.
        self._last_heard_s = 0.0

        # --- MAC -------------------------------------------------------
        self.tsch = TschEngine(node_id, config.tsch, rng_registry.stream(f"mac.{node_id}"))
        self.tsch.rx_callback = self._on_mac_rx
        self.tsch.tx_done_callback = self._on_mac_tx_done

        # --- RPL -------------------------------------------------------
        self.rpl = RplEngine(
            node_id=node_id,
            config=config.rpl,
            queue=event_queue,
            rng=rng_registry.stream(f"rpl.{node_id}"),
            send_packet=self.enqueue_packet,
            etx_of=self.tsch.etx.etx,
            is_root=is_root,
            etx_state=self.tsch.etx,
        )
        self.rpl.on_parent_changed = self._on_parent_changed
        self.rpl.on_child_added = self._on_child_added
        self.rpl.on_child_removed = self._on_child_removed

        # --- 6top ------------------------------------------------------
        self.sixtop = SixPLayer(
            node_id=node_id,
            config=config.sixp,
            queue=event_queue,
            send_packet=self.enqueue_packet,
        )
        self.sixtop.request_handler = self._on_sixp_request

        # --- scheduling function ----------------------------------------
        self.scheduler = scheduler
        self.scheduler.attach(self)
        self.rpl.dio_extra_provider = self.scheduler.dio_fields

        # --- Enhanced Beacon timer --------------------------------------
        # Rides the "eb" cohort wheel; ticks that provably send nothing (the
        # node has not joined, or the previous EB still waits for a broadcast
        # cell) are settled by the probe without entering _send_eb.
        eb_rng = rng_registry.stream(f"eb.{node_id}")
        self._eb_timer = PeriodicTimer(
            event_queue,
            config.tsch.eb_period_s,
            self._send_eb,
            start_offset=eb_rng.random() * config.tsch.eb_period_s,
            label=f"eb.{node_id}",
            jitter=0.25,
            rng=eb_rng,
            wheel=event_queue.wheel("eb"),
            idle_probe=self._eb_tick_provably_idle,
        )
        self._eb_timer.on_phase = self._record_eb_phase
        self.rpl.trickle.on_phase = self._record_trickle_phase

        # --- keepalive / desync watchdog ---------------------------------
        # Cold-start nodes lose synchronisation after a full window of
        # radio silence (no frame decoded): the watchdog tears the stack
        # down to the MAC and re-enters EB scan.  Un-jittered on purpose --
        # its ticks are pure EventQueue callbacks both slot loops drain
        # identically, and it must never perturb any protocol rng stream.
        self._keepalive_timer: Optional[PeriodicTimer] = None
        if self.cold_start and config.tsch.desync_timeout_s > 0.0:
            self._keepalive_timer = PeriodicTimer(
                event_queue,
                config.tsch.desync_timeout_s,
                self._keepalive_check,
                start_offset=config.tsch.desync_timeout_s,
                label=f"keepalive.{node_id}",
            )

        self._app_seqno = 0

    # ------------------------------------------------------------------
    # struct-of-arrays view plumbing
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return bool(self._backing.alive[self._row])

    @alive.setter
    def alive(self, value: bool) -> None:
        self._backing.alive[self._row] = 1 if value else 0

    def _record_eb_phase(self, fire_time: float) -> None:
        self._backing.eb_phase[self._row] = fire_time

    def _record_trickle_phase(self, fire_time: float) -> None:
        self._backing.trickle_phase[self._row] = fire_time

    def _record_traffic_phase(self, fire_time: float) -> None:
        self._backing.traffic_phase[self._row] = fire_time

    def bind_state(self, store: NodeStateStore, row: int) -> None:
        """Move this node's hot state onto ``store[row]``.

        Binds the liveness flag and timer phases here plus the MAC's
        (queue, duty meter, ETX, watermark) and RPL's (advertised rank,
        joined flag) columns; values accumulated standalone are preserved.
        Called once by :meth:`repro.net.network.Network.add_node`.
        """
        bind_backing(self, store, row, ("alive", "eb_phase", "traffic_phase", "trickle_phase"))
        self.tsch.bind_state(store, row)
        self.rpl.bind_state(store, row)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the protocol machinery (scheduler, RPL, EBs, traffic).

        When the RPL state was warm-started before the scheduler existed (the
        deterministic scenario setup), the scheduler is replayed the current
        parent/children relations so its schedule matches the preset topology.

        Cold-start nodes do none of that: they boot unsynchronised, and
        everything above the MAC waits for the first Enhanced Beacon (see
        :meth:`_synchronise`).
        """
        if self.cold_start:
            self.begin_scan()
            return
        self.scheduler.start()
        if self.rpl.preferred_parent is not None:
            self.scheduler.on_parent_changed(None, self.rpl.preferred_parent)
        for child in sorted(self.rpl.children):
            self.scheduler.on_child_added(child)
        self.rpl.start()
        self._eb_timer.start()
        if self.traffic is not None:
            self.traffic.start()

    # ------------------------------------------------------------------
    # cold-start join (EB scan / synchronise / desync)
    # ------------------------------------------------------------------
    def _current_asn(self) -> int:
        return self.clock.asn if self.clock is not None else 0

    def begin_scan(self) -> None:
        """Enter (or re-enter) the unsynchronised EB scan.

        The MAC parks its radio on the deterministic scan channel every
        slot (:meth:`~repro.mac.tsch.TschEngine.begin_scan`); no upper
        layer runs until :meth:`_synchronise` decodes a beacon.  The join
        episode is registered with the metrics collector so time-to-join
        can censor nodes that never make it.
        """
        self._cold_join_pending = True
        self.tsch.begin_scan(self._current_asn())
        if self.metrics is not None:
            self.metrics.on_join_pending(self.node_id, self.event_queue.now)
        if self.on_scan_state is not None:
            self.on_scan_state(self, True)

    def abort_scan(self) -> None:
        """Stop scanning without synchronising (used when a scanning node
        crashes: its radio dies mid-scan, so the listen window up to now is
        settled and the MAC returns to pure sleep)."""
        if not self.tsch.scanning:
            return
        self.tsch.end_scan(self._current_asn())
        if self.on_scan_state is not None:
            self.on_scan_state(self, False)

    def _synchronise(self, packet: Packet, asn: int) -> None:
        """First EB decoded while scanning: sync the clock, boot the stack.

        Order matters for the fast kernel's accounting: the MAC settles the
        scan window *before* the scheduler's first schedule mutation fires
        the settlement barrier, so the barrier sees a clean watermark and
        the sync slot itself is credited as busy-RX by the caller.  The
        scheduler then consumes the very beacon that synchronised us
        (GT-TSCH reads its channel-assignment fields), RPL starts listening
        for DIOs, and our own EB/keepalive/traffic machinery arms.
        """
        self.tsch.end_scan(asn)
        if self.on_scan_state is not None:
            self.on_scan_state(self, False)
        self.scheduler.start()
        self.scheduler.on_eb_received(packet)
        self.rpl.start()
        self._eb_timer.start()
        if self._keepalive_timer is not None:
            self._last_heard_s = self.event_queue.now
            self._keepalive_timer.start()
        if self.traffic is not None and self.traffic_enabled:
            self.traffic.start()

    def _keepalive_check(self) -> None:
        """Desync-on-silence: a full keepalive window with no decoded frame
        means the node's clock has drifted beyond recovery -- tear down and
        re-scan."""
        if not self.alive or self.tsch.scanning:
            return
        if self.event_queue.now - self._last_heard_s >= self.config.tsch.desync_timeout_s:
            self._desynchronise()

    def _desynchronise(self) -> None:
        """Lose TSCH synchronisation: back to the unsynchronised MAC.

        Mirrors the fault injector's crash teardown (silent RPL detach,
        loss-accounted queue flush, ``clear_schedule`` as the settlement
        barrier) except the node stays alive and immediately re-enters EB
        scan.  Every mutation goes through a fast-kernel barrier, so both
        slot loops stay bit-identical across a desync.
        """
        now = self.event_queue.now
        metrics = self.metrics
        rpl = self.rpl
        if metrics is not None:
            metrics.on_fault_injected("desync", now)
            if rpl.preferred_parent is not None:
                metrics.on_node_orphaned(self.node_id, now)
        self.scheduler.stop()
        self._eb_timer.stop()
        if self._keepalive_timer is not None:
            self._keepalive_timer.stop()
        if self.traffic is not None:
            self.traffic.stop()
        rpl.trickle.stop()
        rpl.preferred_parent = None
        rpl.rank = INFINITE_RANK
        if not rpl.is_root:
            rpl.dodag_id = None
        rpl.neighbors.clear()
        rpl.children.clear()
        rpl._memo_inputs += 1
        for packet in self.tsch.flush_queue():
            if packet.ptype is PacketType.DATA and metrics is not None:
                metrics.on_data_lost(self, packet, reason="desync")
        self.tsch.quiet_shared_neighbors.clear()
        self.tsch.clear_schedule()
        # Reset the store's TX-horizon mirror, exactly as a crash does: the
        # dispatch heap drops its stale entry lazily, array scanners don't.
        self._backing.tx_horizon[self._row] = -1
        self.begin_scan()

    def set_traffic_generator(self, generator: "TrafficGenerator") -> None:
        """Attach an application traffic generator to this node."""
        self.traffic = generator
        generator.phase_hook = self._record_traffic_phase
        generator.attach(self, self.event_queue, self.rng_registry.stream(f"traffic.{self.node_id}"))

    def set_metrics(self, collector: "MetricsCollector") -> None:
        self.metrics = collector

    # ------------------------------------------------------------------
    # application layer
    # ------------------------------------------------------------------
    def generate_data(self) -> Optional[Packet]:
        """Generate one application packet destined to the DODAG root.

        Root nodes and nodes that have not joined a DODAG yet do not generate
        traffic (matching the paper's setup where only non-root motes source
        data).  Returns the packet when one was created, ``None`` otherwise.
        """
        if not self.alive or not self.traffic_enabled or self.is_root:
            return None
        if not self.rpl.is_joined() or self.rpl.dodag_id is None:
            return None
        self._app_seqno += 1
        packet = make_data_packet(
            source=self.node_id,
            destination=self.rpl.dodag_id,
            created_at=self.event_queue.now,
            app_seqno=self._app_seqno,
        )
        self.stats.data_generated += 1
        if self.metrics is not None:
            self.metrics.on_data_generated(self, packet)
        self._route_and_enqueue(packet)
        return packet

    def _deliver_to_application(self, packet: Packet) -> None:
        """Terminal delivery of a data packet at this (root) node."""
        self.stats.data_delivered_as_sink += 1
        if self.metrics is not None:
            self.metrics.on_data_delivered(self, packet)

    # ------------------------------------------------------------------
    # forwarding / queueing
    # ------------------------------------------------------------------
    def _route_and_enqueue(self, packet: Packet) -> bool:
        """Address a data packet to the next hop (the preferred parent)."""
        parent = self.rpl.preferred_parent
        if parent is None:
            self.stats.routing_drops += 1
            if self.metrics is not None and packet.ptype is PacketType.DATA:
                self.metrics.on_data_lost(self, packet, reason="no-route")
            return False
        hop = packet.for_next_hop(self.node_id, parent)
        return self.enqueue_packet(hop)

    def enqueue_packet(self, packet: Packet) -> bool:
        """Put a packet (control or data) on the MAC queue."""
        if not self.alive:
            # Dead device: nothing is queued and nothing is loss-accounted
            # (the packet was never offered to a working stack).
            return False
        accepted = self.tsch.enqueue(packet, now=self.event_queue.now)
        if not accepted:
            if packet.ptype is PacketType.DATA:
                self.stats.queue_drops += 1
                if self.metrics is not None:
                    self.metrics.on_data_lost(self, packet, reason="queue")
        else:
            self.scheduler.on_packet_enqueued(packet)
        return accepted

    # ------------------------------------------------------------------
    # MAC callbacks
    # ------------------------------------------------------------------
    def _on_mac_rx(self, packet: Packet, asn: int) -> None:
        """Dispatch a frame decoded by the MAC to the proper layer.

        Broadcast control frames (DIO/EB) dominate receptions at scale --
        every neighbor decodes them -- so they are dispatched first.
        """
        if self.tsch.scanning:
            # Unsynchronised: the only frame that means anything is an
            # Enhanced Beacon, which carries the ASN and synchronises us.
            # Anything else decoded on the scan channel is noise to a node
            # with no schedule and no DODAG.
            if packet.ptype is PacketType.EB:
                self._synchronise(packet, asn)
            return
        if self._keepalive_timer is not None:
            self._last_heard_s = self.event_queue.now
        ptype = packet.ptype
        if ptype is PacketType.DIO:
            self.rpl.process_dio(packet, self.event_queue.now)
            self.scheduler.on_dio_received(packet)
        elif ptype is PacketType.EB:
            self.scheduler.on_eb_received(packet)
        elif ptype is PacketType.DATA:
            forwarded = packet.for_next_hop(packet.link_source, packet.link_destination)
            forwarded.hops += 1
            if forwarded.destination == self.node_id:
                self._deliver_to_application(forwarded)
            else:
                self.stats.data_forwarded += 1
                self._route_and_enqueue(forwarded)
        elif ptype is PacketType.DAO:
            self.rpl.process_dao(packet, self.event_queue.now)
        elif ptype is PacketType.SIXP:
            self.sixtop.process_packet(packet)

    def _on_mac_tx_done(self, packet: Packet, success: bool, asn: int) -> None:
        """A unicast packet left the MAC (delivered to next hop, or dropped)."""
        if not success and packet.ptype is PacketType.DATA and self.metrics is not None:
            self.metrics.on_data_lost(self, packet, reason="mac-retries")
        self.scheduler.on_tx_done(packet, success)

    # ------------------------------------------------------------------
    # RPL callbacks
    # ------------------------------------------------------------------
    def _on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        if old_parent is not None and new_parent is not None:
            if self.tsch.queue.retarget(old_parent, new_parent):
                self.tsch.mark_queue_mutated()
        if self.metrics is not None:
            # Recovery accounting (see MetricsCollector): losing the parent
            # opens an orphan episode, regaining one closes it.  Same-parent
            # switches (both ends non-None) are not churn.
            if old_parent is not None and new_parent is None:
                self.metrics.on_node_orphaned(self.node_id, self.event_queue.now)
            elif old_parent is None and new_parent is not None:
                self.metrics.on_node_recovered(self.node_id, self.event_queue.now)
        if new_parent is not None and self._cold_join_pending:
            # First parent since the cold boot (or since a desync): the
            # join episode closes here -- sync alone is not a join, a
            # route to the root is.
            self._cold_join_pending = False
            if self.metrics is not None:
                self.metrics.on_node_joined(self.node_id, self.event_queue.now)
        self.scheduler.on_parent_changed(old_parent, new_parent)

    def _on_child_added(self, child: int) -> None:
        self.scheduler.on_child_added(child)

    def _on_child_removed(self, child: int) -> None:
        self.scheduler.on_child_removed(child)

    # ------------------------------------------------------------------
    # 6top callback
    # ------------------------------------------------------------------
    def _on_sixp_request(
        self, peer: int, message: SixPMessage
    ) -> tuple[SixPReturnCode, dict[str, Any]]:
        return self.scheduler.on_sixp_request(peer, message)

    # ------------------------------------------------------------------
    # Enhanced Beacons
    # ------------------------------------------------------------------
    def _eb_tick_provably_idle(self) -> bool:
        """Exactly :meth:`_send_eb`'s early-return conditions, side-effect free.

        Runs once per EB period per node (the hottest timer family at
        scale), so the joined test is inlined rather than calling
        :meth:`~repro.rpl.engine.RplEngine.is_joined`.
        """
        rpl = self.rpl
        if not (rpl.is_root or rpl.preferred_parent is not None):
            return True
        return self.tsch.queue.contains_ptype(PacketType.EB)

    def _send_eb(self) -> None:
        """Periodically broadcast an Enhanced Beacon.

        Only nodes that are part of a DODAG advertise, matching Contiki-NG
        where EBs start after association.  The scheduling function may
        piggyback fields (GT-TSCH advertises the channel its children must
        use, per Section III of the paper).
        """
        if not self.rpl.is_joined():
            return
        # Do not pile up beacons: if the previous EB is still waiting for a
        # broadcast cell, skip this period (Contiki behaves the same way).
        if self.tsch.queue.contains_ptype(PacketType.EB):
            return
        payload: dict[str, Any] = {
            "join_priority": 0 if self.is_root else 1,
        }
        payload.update(self.scheduler.eb_fields())
        packet = Packet(
            ptype=PacketType.EB,
            source=self.node_id,
            destination=BROADCAST_ADDRESS,
            link_source=self.node_id,
            link_destination=BROADCAST_ADDRESS,
            payload=payload,
            created_at=self.event_queue.now,
            size_bytes=50,
        )
        self.stats.eb_sent += 1
        self.enqueue_packet(packet)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        role = "root" if self.is_root else f"rank={self.rpl.rank}"
        return f"Node({self.node_id}, {role}, scheduler={self.scheduler.name})"
