"""Plain-text rendering of metric tables.

The benchmark harness prints, for every figure of the paper, the same series
the figure plots (one row per swept parameter value, one column per
scheduler), so the reproduction can be compared against the paper at a
glance.  These helpers keep the formatting in one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.metrics.collector import NetworkMetrics

#: Headline metric keys in the order the paper presents its panels.
PANEL_KEYS = (
    ("pdr_percent", "PDR (%)"),
    ("end_to_end_delay_ms", "End-to-end delay (ms)"),
    ("packet_loss_per_minute", "Packet loss (pkt/min)"),
    ("radio_duty_cycle_percent", "Radio duty cycle (%)"),
    ("queue_loss_per_node", "Queue loss (per node)"),
    ("received_per_minute", "Received (pkt/min)"),
)


def format_metrics_table(metrics: Iterable[NetworkMetrics], title: str = "") -> str:
    """One row per metrics object; columns are the six panel metrics."""
    rows: list[str] = []
    if title:
        rows.append(title)
    header = f"{'scheduler':<14}" + "".join(f"{label:>24}" for _, label in PANEL_KEYS)
    rows.append(header)
    rows.append("-" * len(header))
    for item in metrics:
        data = item.as_dict()
        row = f"{data['scheduler']:<14}" + "".join(
            f"{data[key]:>24.2f}" for key, _ in PANEL_KEYS
        )
        rows.append(row)
    return "\n".join(rows)


def format_comparison_table(
    sweep_label: str,
    sweep_values: Sequence,
    results: dict[str, list[NetworkMetrics]],
    metric_key: str,
    metric_label: str = "",
) -> str:
    """Render one figure panel: ``sweep value x scheduler`` for one metric.

    ``results`` maps scheduler name to the list of metrics objects in the same
    order as ``sweep_values``.
    """
    label = metric_label or metric_key
    lines = [f"{label} vs {sweep_label}"]
    schedulers = list(results)
    header = f"{sweep_label:<28}" + "".join(f"{name:>16}" for name in schedulers)
    lines.append(header)
    lines.append("-" * len(header))
    for index, value in enumerate(sweep_values):
        row = f"{str(value):<28}"
        for name in schedulers:
            metric = results[name][index].as_dict()[metric_key]
            row += f"{metric:>16.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_figure_report(
    figure_name: str,
    sweep_label: str,
    sweep_values: Sequence,
    results: dict[str, list[NetworkMetrics]],
) -> str:
    """Render all six panels of one paper figure."""
    sections = [f"=== {figure_name} ==="]
    for key, label in PANEL_KEYS:
        sections.append(
            format_comparison_table(sweep_label, sweep_values, results, key, label)
        )
        sections.append("")
    return "\n".join(sections)
