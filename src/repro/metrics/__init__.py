"""Performance metrics collection and reporting.

The collector reproduces the six quantities plotted in the paper's evaluation
(Figs. 8-10): packet delivery ratio, average end-to-end delay, packet loss per
minute, average radio duty cycle per node, average queue loss per node, and
received packets per minute (throughput).
"""

from repro.metrics.collector import MetricsCollector, NetworkMetrics
from repro.metrics.report import format_comparison_table, format_metrics_table

__all__ = [
    "MetricsCollector",
    "NetworkMetrics",
    "format_metrics_table",
    "format_comparison_table",
]
