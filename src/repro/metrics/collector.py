"""Network-wide metrics collection.

The collector observes three application-level events -- a data packet being
generated, delivered at a root, or irrecoverably lost -- plus, at the end of
the measurement window, the per-node MAC counters (queue drops, radio duty
cycle).  Metrics are computed only over the *measurement window*: everything
that happens during warm-up (network formation, initial 6P negotiation) is
excluded, mirroring how the paper measures steady-state behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class NetworkMetrics:
    """The six headline metrics of the paper plus supporting counters."""

    #: Name of the scheduler that produced these numbers.
    scheduler: str = ""
    #: Measurement window length in seconds.
    duration_s: float = 0.0
    generated: int = 0
    delivered: int = 0
    lost: int = 0

    #: Fig. 8a/9a/10a -- packet delivery ratio, percent.
    pdr_percent: float = 0.0
    #: Fig. 8b/9b/10b -- average end-to-end delay per delivered packet, ms.
    end_to_end_delay_ms: float = 0.0
    #: Fig. 8c/9c/10c -- lost packets per minute (network-wide).
    packet_loss_per_minute: float = 0.0
    #: Fig. 8d/9d/10d -- average radio duty cycle per node, percent.
    radio_duty_cycle_percent: float = 0.0
    #: Fig. 8e/9e/10e -- average queue loss per node over the window.
    queue_loss_per_node: float = 0.0
    #: Fig. 8f/9f/10f -- packets received by root nodes per minute.
    received_per_minute: float = 0.0

    #: Supporting detail, not plotted in the paper but useful for analysis.
    delay_p95_ms: float = 0.0
    delay_max_ms: float = 0.0
    avg_hops: float = 0.0
    queue_loss_total: int = 0
    mac_drop_total: int = 0
    no_route_drops: int = 0
    control_packets_sent: int = 0
    #: 6P schedule churn over the window: cells installed or removed as the
    #: outcome of 6P transactions, summed over all nodes (GT-TSCH only --
    #: autonomous schedulers negotiate nothing).
    sixp_cell_relocations: int = 0
    #: The same churn normalised to the scheduler's load-balancing period:
    #: relocations the whole network performs per game round.  Sustained
    #: non-zero values mean the game keeps re-placing cells instead of
    #: converging (the ROADMAP's GT-TSCH convergence question).
    sixp_relocations_per_lb_period: float = 0.0
    #: Recovery metrics (fault injection, see docs/faults.md).  All stay
    #: zero in fault-free runs.  ``time_to_reconverge_s`` averages the
    #: orphan episodes -- parent lost to re-attachment, with episodes still
    #: open at window close censored at the window end -- over every node
    #: that lost its parent to a fault (crashed nodes included, measured
    #: from the crash).  ``pdr_under_churn_percent`` is the PDR restricted
    #: to packets generated at or after the first injected fault.
    time_to_reconverge_s: float = 0.0
    pdr_under_churn_percent: float = 0.0
    #: Data packets flushed by crash handling: queue lost with a crashing
    #: node, survivor queues flushed towards a dead neighbor, and
    #: parent-loss flushes.
    packets_lost_to_crash: int = 0
    #: Scheduled cells that pointed at a dead neighbor when its crash was
    #: detected (torn down at that instant).
    orphaned_cell_slots: int = 0
    #: Fault events injected inside the measurement window.
    faults_injected: int = 0
    #: Cold-join metrics (cold-start scans and late arrivals, see
    #: docs/faults.md).  Both stay zero in scenarios without cold boots.
    #: ``time_to_join_s`` averages, over every join episode, the time from
    #: boot (scan start or power-on) to the first parent acquisition;
    #: episodes still open when the window closes are censored at the
    #: window end, so a node that never joins drags the average up instead
    #: of vanishing from it.  ``time_to_first_packet_s`` measures boot to
    #: the first *measured* data packet from that node delivered at a
    #: root, censored the same way.
    time_to_join_s: float = 0.0
    time_to_first_packet_s: float = 0.0
    #: Join episodes actually completed (uncensored joins).
    nodes_joined: int = 0
    per_node: dict[int, dict] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat dictionary of the headline metrics (for tables / CSV)."""
        return {
            "scheduler": self.scheduler,
            "pdr_percent": self.pdr_percent,
            "end_to_end_delay_ms": self.end_to_end_delay_ms,
            "packet_loss_per_minute": self.packet_loss_per_minute,
            "radio_duty_cycle_percent": self.radio_duty_cycle_percent,
            "queue_loss_per_node": self.queue_loss_per_node,
            "received_per_minute": self.received_per_minute,
            "generated": self.generated,
            "delivered": self.delivered,
            "sixp_cell_relocations": self.sixp_cell_relocations,
            "sixp_relocations_per_lb_period": self.sixp_relocations_per_lb_period,
            "time_to_reconverge_s": self.time_to_reconverge_s,
            "pdr_under_churn_percent": self.pdr_under_churn_percent,
            "packets_lost_to_crash": self.packets_lost_to_crash,
            "orphaned_cell_slots": self.orphaned_cell_slots,
            "time_to_join_s": self.time_to_join_s,
            "time_to_first_packet_s": self.time_to_first_packet_s,
            "nodes_joined": self.nodes_joined,
        }


@dataclass
class _GeneratedRecord:
    node_id: int
    created_at: float


class MetricsCollector:
    """Collects application-level events and MAC counters for one run."""

    def __init__(self) -> None:
        self.measuring = False
        self.window_start = 0.0
        self.window_end: Optional[float] = None
        self._generated: dict[int, _GeneratedRecord] = {}
        self._delivered: dict[int, float] = {}
        self._delays_ms: list[float] = []
        self._hops: list[int] = []
        self._losses: dict[str, int] = {"queue": 0, "mac-retries": 0, "no-route": 0}
        #: Fault-injection / recovery state (fed by the FaultInjector and
        #: the nodes' parent-change hook).
        self._first_fault_time: Optional[float] = None
        self._faults_injected = 0
        #: node id -> time its current orphan episode opened.
        self._orphan_open: dict[int, float] = {}
        self._reconverge_durations: list[float] = []
        self._orphaned_cells = 0
        #: Cold-join tracking (cold-start scans and late arrivals).  Unlike
        #: the window-scoped counters these are *not* reset by
        #: ``begin_measurement``: a join episode is boot-relative (a cold
        #: node starts scanning at t=0, typically well before the window
        #: opens), and its duration is meaningful regardless of where the
        #: window lands.  Finalisation censors still-open episodes at the
        #: window close.
        self._join_open: dict[int, float] = {}
        self._join_durations: list[float] = []
        self._first_packet_open: dict[int, float] = {}
        self._first_packet_durations: list[float] = []
        #: Per-node counter snapshots taken at the start of the window so the
        #: warm-up phase does not contaminate the measured values.
        self._node_baselines: dict[int, dict] = {}
        #: Per-node counter snapshots taken when the window closes (so that a
        #: drain phase does not contaminate the measured values either).
        self._node_finals: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # window control (driven by the Network / experiment runner)
    # ------------------------------------------------------------------
    def begin_measurement(self, nodes, now: float) -> None:
        """Open the measurement window and snapshot per-node counters."""
        self.measuring = True
        self.window_start = now
        self._generated.clear()
        self._delivered.clear()
        self._delays_ms.clear()
        self._hops.clear()
        for key in self._losses:
            self._losses[key] = 0
        self._first_fault_time = None
        self._faults_injected = 0
        self._orphan_open.clear()
        self._reconverge_durations.clear()
        self._orphaned_cells = 0
        for node in nodes:
            node.tsch.duty_cycle.reset()
            self._node_baselines[node.node_id] = {
                "queue_drops": node.tsch.queue.data_drops,
                "mac_drops": node.tsch.stats.mac_drops,
                "routing_drops": node.stats.routing_drops,
                "control_sent": node.stats.eb_sent + node.rpl.dio_sent + node.rpl.dao_sent
                + node.sixtop.requests_sent + node.sixtop.responses_sent,
                "relocations": node.scheduler.relocation_count(),
            }

    def end_measurement(self, nodes=None, now: float = 0.0) -> None:
        """Close the window (deliveries of already-generated packets still count).

        When ``nodes`` is given, the per-node counters are snapshotted at this
        instant so that a subsequent drain phase (run only to let in-flight
        packets reach the root) does not perturb the duty-cycle and loss
        counters.
        """
        self.window_end = now
        self.measuring = False
        if nodes is not None:
            for node in nodes:
                self._node_finals[node.node_id] = {
                    "queue_drops": node.tsch.queue.data_drops,
                    "mac_drops": node.tsch.stats.mac_drops,
                    "routing_drops": node.stats.routing_drops,
                    "control_sent": node.stats.eb_sent + node.rpl.dio_sent + node.rpl.dao_sent
                    + node.sixtop.requests_sent + node.sixtop.responses_sent,
                    "duty_cycle_percent": node.tsch.duty_cycle.duty_cycle_percent,
                    "relocations": node.scheduler.relocation_count(),
                }

    # ------------------------------------------------------------------
    # event hooks (called by nodes)
    # ------------------------------------------------------------------
    def on_data_generated(self, node, packet) -> None:
        if not self.measuring:
            return
        self._generated[packet.packet_id] = _GeneratedRecord(
            node_id=node.node_id, created_at=packet.created_at
        )

    def on_data_delivered(self, node, packet) -> None:
        record = self._generated.get(packet.packet_id)
        if record is None or packet.packet_id in self._delivered:
            return
        now = node.event_queue.now
        self._delivered[packet.packet_id] = now
        self._delays_ms.append((now - record.created_at) * 1000.0)
        self._hops.append(packet.hops)
        started = self._first_packet_open.pop(record.node_id, None)
        if started is not None:
            self._first_packet_durations.append(now - started)

    def on_data_lost(self, node, packet, reason: str) -> None:
        if packet.packet_id not in self._generated:
            return
        if reason not in self._losses:
            self._losses[reason] = 0
        self._losses[reason] += 1

    # ------------------------------------------------------------------
    # fault / recovery hooks (called by the FaultInjector and the nodes)
    # ------------------------------------------------------------------
    def on_fault_injected(self, kind: str, now: float) -> None:
        """A fault event fired; the first one anchors PDR-under-churn."""
        self._faults_injected += 1
        if self._first_fault_time is None:
            self._first_fault_time = now

    def on_node_orphaned(self, node_id: int, now: float) -> None:
        """A node lost its preferred parent (eviction or its own crash)."""
        self._orphan_open.setdefault(node_id, now)

    def on_node_recovered(self, node_id: int, now: float) -> None:
        """An orphaned node re-attached; closes its episode if one is open.

        Re-attachments with no matching episode (cold-start joins, warm
        rejoin of a node that crashed while already detached) are ignored.
        """
        started = self._orphan_open.pop(node_id, None)
        if started is not None:
            self._reconverge_durations.append(now - started)

    def on_cells_orphaned(self, count: int) -> None:
        """``count`` scheduled cells pointed at a neighbor now known dead."""
        self._orphaned_cells += count

    # ------------------------------------------------------------------
    # cold-join hooks (called by nodes and the FaultInjector)
    # ------------------------------------------------------------------
    def on_join_pending(self, node_id: int, now: float) -> None:
        """A join episode opened: a cold node began its EB scan, or a late
        arrival powered on.  Re-opening (desync re-scan) restarts both the
        join and the first-packet clocks."""
        self._join_open[node_id] = now
        self._first_packet_open[node_id] = now

    def on_node_joined(self, node_id: int, now: float) -> None:
        """A cold node acquired its first RPL parent; closes its episode."""
        started = self._join_open.pop(node_id, None)
        if started is not None:
            self._join_durations.append(now - started)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def finalize(self, nodes, now: float, scheduler_name: str = "") -> NetworkMetrics:
        """Compute the headline metrics over the measurement window."""
        window_end = self.window_end if self.window_end is not None else now
        duration = max(window_end - self.window_start, 1e-9)
        minutes = duration / 60.0

        generated = len(self._generated)
        delivered = len(self._delivered)
        lost = generated - delivered

        metrics = NetworkMetrics(scheduler=scheduler_name, duration_s=duration)
        metrics.generated = generated
        metrics.delivered = delivered
        metrics.lost = lost
        metrics.pdr_percent = (100.0 * delivered / generated) if generated else 0.0
        if self._delays_ms:
            metrics.end_to_end_delay_ms = sum(self._delays_ms) / len(self._delays_ms)
            ordered = sorted(self._delays_ms)
            metrics.delay_p95_ms = ordered[int(0.95 * (len(ordered) - 1))]
            metrics.delay_max_ms = ordered[-1]
        if self._hops:
            metrics.avg_hops = sum(self._hops) / len(self._hops)
        metrics.packet_loss_per_minute = lost / minutes if minutes > 0 else 0.0
        metrics.received_per_minute = delivered / minutes if minutes > 0 else 0.0

        node_list = list(nodes)
        queue_loss_total = 0
        mac_drop_total = 0
        no_route_total = 0
        control_total = 0
        duty_sum = 0.0
        relocation_total = 0
        lb_period_s = 0.0
        for node in node_list:
            baseline = self._node_baselines.get(node.node_id, {})
            final = self._node_finals.get(node.node_id)
            if final is None:
                final = {
                    "queue_drops": node.tsch.queue.data_drops,
                    "mac_drops": node.tsch.stats.mac_drops,
                    "routing_drops": node.stats.routing_drops,
                    "control_sent": node.stats.eb_sent + node.rpl.dio_sent + node.rpl.dao_sent
                    + node.sixtop.requests_sent + node.sixtop.responses_sent,
                    "duty_cycle_percent": node.tsch.duty_cycle.duty_cycle_percent,
                    "relocations": node.scheduler.relocation_count(),
                }
            queue_drops = final["queue_drops"] - baseline.get("queue_drops", 0)
            mac_drops = final["mac_drops"] - baseline.get("mac_drops", 0)
            routing_drops = final["routing_drops"] - baseline.get("routing_drops", 0)
            control = final["control_sent"] - baseline.get("control_sent", 0)
            relocations = final.get("relocations", 0) - baseline.get("relocations", 0)
            duty_cycle_percent = final["duty_cycle_percent"]
            queue_loss_total += queue_drops
            mac_drop_total += mac_drops
            no_route_total += routing_drops
            control_total += control
            relocation_total += relocations
            duty_sum += duty_cycle_percent
            if not lb_period_s:
                lb_period_s = node.scheduler.load_balance_period_s()
            metrics.per_node[node.node_id] = {
                "queue_drops": queue_drops,
                "mac_drops": mac_drops,
                "routing_drops": routing_drops,
                "sixp_cell_relocations": relocations,
                "duty_cycle_percent": duty_cycle_percent,
                "queue_length": node.tsch.queue_length(),
                "rank": node.rpl.rank,
                "parent": node.rpl.preferred_parent,
            }

        # --- recovery metrics (all zero without injected faults) ---------
        metrics.faults_injected = self._faults_injected
        metrics.packets_lost_to_crash = self._losses.get("crash", 0) + self._losses.get(
            "parent-loss", 0
        )
        metrics.orphaned_cell_slots = self._orphaned_cells
        episode_durations = list(self._reconverge_durations)
        for _node_id, started in sorted(self._orphan_open.items()):
            # Still orphaned at finalisation: censor at the window close so
            # a node that never reconverges drags the average up instead of
            # silently vanishing from it.
            episode_durations.append(max(0.0, window_end - started))
        if episode_durations:
            metrics.time_to_reconverge_s = sum(episode_durations) / len(
                episode_durations
            )
        # --- cold-join metrics (zero without cold boots / arrivals) ------
        metrics.nodes_joined = len(self._join_durations)
        join_durations = list(self._join_durations)
        for _node_id, started in sorted(self._join_open.items()):
            # Never joined: censor at the window close, exactly as the
            # reconvergence episodes above.
            join_durations.append(max(0.0, window_end - started))
        if join_durations:
            metrics.time_to_join_s = sum(join_durations) / len(join_durations)
        first_packet_durations = list(self._first_packet_durations)
        for _node_id, started in sorted(self._first_packet_open.items()):
            first_packet_durations.append(max(0.0, window_end - started))
        if first_packet_durations:
            metrics.time_to_first_packet_s = sum(first_packet_durations) / len(
                first_packet_durations
            )
        if self._first_fault_time is not None:
            cutoff = self._first_fault_time
            churn_generated = [
                packet_id
                for packet_id, record in self._generated.items()
                if record.created_at >= cutoff
            ]
            if churn_generated:
                churn_delivered = sum(
                    1 for packet_id in churn_generated if packet_id in self._delivered
                )
                metrics.pdr_under_churn_percent = (
                    100.0 * churn_delivered / len(churn_generated)
                )

        metrics.queue_loss_total = queue_loss_total
        metrics.mac_drop_total = mac_drop_total
        metrics.no_route_drops = no_route_total
        metrics.control_packets_sent = control_total
        metrics.sixp_cell_relocations = relocation_total
        if lb_period_s > 0:
            metrics.sixp_relocations_per_lb_period = (
                relocation_total * lb_period_s / duration
            )
        if node_list:
            metrics.queue_loss_per_node = queue_loss_total / len(node_list)
            metrics.radio_duty_cycle_percent = duty_sum / len(node_list)
        return metrics
