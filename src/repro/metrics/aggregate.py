"""Cross-seed aggregation of :class:`~repro.metrics.collector.NetworkMetrics`.

The paper reports each figure point as the average over repeated runs.  A
:class:`MetricsAggregate` wraps the per-seed :class:`NetworkMetrics` of one
sweep cell (one swept value x one scheduler) and exposes the mean, the sample
standard deviation and the 95% confidence interval of every headline metric.

``as_dict()`` returns the *means* under the same keys as
``NetworkMetrics.as_dict()``, so an aggregate is a drop-in replacement
anywhere a single run's metrics were consumed (figure reports, CSV export,
``FigureResult.series``).  For a single seed the mean equals the run's value
bit for bit, which keeps multi-seed machinery transparent to the existing
single-seed paths.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.collector import NetworkMetrics

#: Numeric keys of ``NetworkMetrics.as_dict()`` (everything but the scheduler).
NUMERIC_KEYS = (
    "pdr_percent",
    "end_to_end_delay_ms",
    "packet_loss_per_minute",
    "radio_duty_cycle_percent",
    "queue_loss_per_node",
    "received_per_minute",
    "generated",
    "delivered",
    "sixp_cell_relocations",
    "sixp_relocations_per_lb_period",
    "time_to_reconverge_s",
    "pdr_under_churn_percent",
    "packets_lost_to_crash",
    "orphaned_cell_slots",
    "time_to_join_s",
    "time_to_first_packet_s",
    "nodes_joined",
)

#: Two-sided 95% critical values of Student's t distribution, indexed by
#: degrees of freedom (1-30); beyond 30 the normal approximation is used.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df < 1:
        return 0.0
    if df <= len(_T_95):
        return _T_95[df - 1]
    return 1.96


@dataclass
class MetricsAggregate:
    """Mean / stddev / 95% CI of one sweep cell across seeds."""

    scheduler: str = ""
    runs: list[NetworkMetrics] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)

    @classmethod
    def from_runs(
        cls,
        runs: Sequence[NetworkMetrics],
        seeds: Optional[Sequence[int]] = None,
    ) -> "MetricsAggregate":
        if not runs:
            raise ValueError("MetricsAggregate needs at least one run")
        return cls(
            scheduler=runs[0].scheduler,
            runs=list(runs),
            seeds=list(seeds) if seeds is not None else [],
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of seeds aggregated."""
        return len(self.runs)

    def values(self, key: str) -> list[float]:
        """Per-seed values of one metric, in seed order."""
        return [run.as_dict()[key] for run in self.runs]

    def mean(self, key: str) -> float:
        values = self.values(key)
        if len(values) == 1:
            # Return the run's value itself (preserves int-ness and exact
            # floats) so a single-seed aggregate is transparent.
            return values[0]
        return sum(values) / len(values)

    def std(self, key: str) -> float:
        """Sample standard deviation (ddof=1); 0 for a single seed."""
        values = self.values(key)
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))

    def ci95(self, key: str) -> float:
        """Half-width of the 95% confidence interval of the mean (t-based)."""
        if self.n < 2:
            return 0.0
        return t_critical_95(self.n - 1) * self.std(key) / math.sqrt(self.n)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Means under the same keys as ``NetworkMetrics.as_dict()``."""
        data = {"scheduler": self.scheduler}
        for key in NUMERIC_KEYS:
            data[key] = self.mean(key)
        return data

    def stats_dict(self) -> dict:
        """Dispersion columns: ``n_seeds`` plus ``<key>_std`` / ``<key>_ci95``."""
        data: dict[str, float] = {"n_seeds": self.n}
        for key in NUMERIC_KEYS:
            data[f"{key}_std"] = self.std(key)
            data[f"{key}_ci95"] = self.ci95(key)
        return data
