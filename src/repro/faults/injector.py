"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live network.

Every fault fires as an ordinary :class:`~repro.sim.events.EventQueue`
callback at an absolute simulation time, which is the whole trick: both
slot loops (the slot-skipping kernel and ``step_slot_reference``) drain
the event queue at slot boundaries through exactly the same
``events.run_until`` calls, so a fault mutates the network at the same
ASN, in the same callback order, with the same random-stream state in
either loop.  The mutations themselves only ever go through hooks that
are already settlement barriers for the fast kernel:

* schedule teardown runs through ``TschEngine.clear_schedule`` /
  per-cell removals, whose ``on_schedule_change`` hook settles deferred
  duty-cycle accounting under the pre-mutation profile and dirties the
  participant index;
* queue flushes run through ``TschEngine.flush_queue``, whose
  ``mark_queue_mutated`` hook settles deferred CSMA state and maintains
  the backlog index;
* RPL detach/re-attach runs through the public ``evict_neighbor`` /
  ``remove_child`` / ``warm_start`` APIs, which bump the rank memo's
  input counter themselves;
* link-quality epochs rebuild the frozen ``Medium`` PRR tables through
  ``Medium.set_prr_scale`` without unfreezing, so the dispatch kernel's
  audience/interference tables stay valid.

Because of that, the injector adds no new synchronisation of its own --
the fault-on equivalence suite in ``tests/net/test_fast_kernel.py`` holds
the two loops bit-identical under crash, rejoin, link-degradation,
parent-loss and late-arrival faults.  Late arrivals
(:class:`~repro.faults.plan.NodeArrival`) are additionally *pre-marked*
absent at arm time -- before slot 0 -- so the initial state both loops
start from is identical by construction.  See ``docs/faults.md`` for the
full contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.faults.plan import (
    FaultPlan,
    LinkDegradation,
    NodeArrival,
    NodeCrash,
    NodeRejoin,
    ParentLoss,
)
from repro.net.packet import PacketType
from repro.rpl.rank import INFINITE_RANK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.net.node import Node

__all__ = ["FaultInjector"]


@dataclass
class _CrashRecord:
    """Pre-crash DODAG state, used to warm-rejoin a rebooted node."""

    parent: Optional[int]
    rank: int
    dodag_id: Optional[int]
    traffic_enabled: bool


class FaultInjector:
    """Schedules and executes the events of one :class:`FaultPlan`.

    ``scheduler_factory`` is the same ``(node_id, is_root) -> scheduler``
    callable the network was built with; a rejoin boots the node with a
    *fresh* scheduling-function instance (cold-reboot semantics -- the
    old instance's cell bookkeeping died with the schedule).  It is only
    required when the plan contains rejoins.
    """

    def __init__(
        self,
        network: "Network",
        plan: FaultPlan,
        scheduler_factory: Optional[Callable] = None,
    ) -> None:
        self.network = network
        self.plan = plan
        self._scheduler_factory = scheduler_factory
        self._records: dict[int, _CrashRecord] = {}
        #: PRR scales of the currently open link-degradation epochs; the
        #: medium always carries their product, recomputed from scratch on
        #: every change so closing the last epoch restores *exactly* 1.0.
        self._active_scales: list[float] = []
        self.armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Validate the plan and schedule every fault event (idempotent)."""
        if self.armed:
            return
        for crash in self.plan.crashes:
            node = self.network.nodes.get(crash.node_id)
            if node is None:
                raise ValueError(f"fault plan names unknown node {crash.node_id}")
            if node.is_root:
                raise ValueError(
                    f"fault plan crashes root node {crash.node_id}; a rootless "
                    "DODAG has no recovery to measure"
                )
        if self.plan.rejoins and self._scheduler_factory is None:
            raise ValueError(
                "plan contains rejoins but no scheduler_factory was provided"
            )
        for arrival in self.plan.arrivals:
            node = self.network.nodes.get(arrival.node_id)
            if node is None:
                raise ValueError(f"fault plan names unknown node {arrival.node_id}")
            if node.is_root:
                raise ValueError(
                    f"fault plan delays root node {arrival.node_id}; the root "
                    "anchors the ASN and the DODAG and cannot arrive late"
                )
        if self.plan.arrivals:
            if self._scheduler_factory is None:
                raise ValueError(
                    "plan contains arrivals but no scheduler_factory was provided"
                )
            if self.network._started:
                raise ValueError(
                    "arrival plans must be armed before the network starts"
                )
            # Pre-mark every late arrival absent *now*, before slot 0: both
            # slot loops then see identical initial state, and Network.start
            # skips the dead nodes (their boot is the scheduled event below).
            for arrival in self.plan.arrivals:
                self._mark_absent(self.network.nodes[arrival.node_id])
        events = self.network.events
        for time_s, _order, event in self.plan.events():
            if isinstance(event, NodeCrash):
                events.schedule(
                    time_s, self._crash, event, label=f"fault-crash.{event.node_id}"
                )
                events.schedule(
                    time_s + event.detect_after_s,
                    self._detect,
                    event,
                    label=f"fault-detect.{event.node_id}",
                )
            elif isinstance(event, NodeRejoin):
                events.schedule(
                    time_s, self._rejoin, event, label=f"fault-rejoin.{event.node_id}"
                )
            elif isinstance(event, LinkDegradation):
                events.schedule(time_s, self._begin_epoch, event, label="fault-degrade")
                events.schedule(
                    time_s + event.duration_s,
                    self._end_epoch,
                    event,
                    label="fault-restore",
                )
            elif isinstance(event, ParentLoss):
                events.schedule(
                    time_s,
                    self._parent_loss,
                    event,
                    label=f"fault-parent-loss.{event.node_id}",
                )
            elif isinstance(event, NodeArrival):
                events.schedule(
                    time_s,
                    self._arrival,
                    event,
                    label=f"fault-arrival.{event.node_id}",
                )
        self.armed = True

    def _mark_absent(self, node: "Node") -> None:
        """Strip a late arrival's presence before the simulation starts.

        Runs at arm time, before any timer is armed and before any
        scheduler starts, so every mutation is hook-free by construction:
        there are no installed cells to tear down, no queued packets to
        flush, and no running timer to stop.  The node keeps its medium row
        (the frozen N x N tables stay dense); only its liveness and any
        warm-started DODAG state -- its own and every reference other
        nodes' presets hold to it -- are erased.
        """
        rpl = node.rpl
        self._records[node.node_id] = _CrashRecord(
            parent=None,
            rank=INFINITE_RANK,
            dodag_id=None,
            traffic_enabled=node.traffic_enabled,
        )
        node.alive = False
        node.traffic_enabled = False
        rpl.preferred_parent = None
        rpl.rank = INFINITE_RANK
        if not rpl.is_root:
            rpl.dodag_id = None
        rpl.neighbors.clear()
        rpl.children.clear()
        rpl._memo_inputs += 1
        absent = node.node_id
        for survivor in self.network.nodes.values():
            if survivor.node_id == absent:
                continue
            survivor_rpl = survivor.rpl
            changed = False
            if absent in survivor_rpl.children:
                survivor_rpl.children.discard(absent)
                changed = True
            if survivor_rpl.neighbors.pop(absent, None) is not None:
                changed = True
            if survivor_rpl.preferred_parent == absent:
                # The warm-start preset routed through a node that is not
                # there yet: the survivor boots detached and joins through
                # DIO exchange like any cold node.
                survivor_rpl.preferred_parent = None
                survivor_rpl.rank = INFINITE_RANK
                if not survivor_rpl.is_root:
                    survivor_rpl.dodag_id = None
                changed = True
            if changed:
                survivor_rpl._memo_inputs += 1

    # ------------------------------------------------------------------
    # node crash / detection / rejoin
    # ------------------------------------------------------------------
    def _crash(self, fault: NodeCrash) -> None:
        """Hard power-off: radio, timers and queue die instantly."""
        node = self.network.nodes[fault.node_id]
        if not node.alive:
            return
        now = self.network.events.now
        metrics = self.network.metrics
        rpl = node.rpl
        self._records[fault.node_id] = _CrashRecord(
            parent=rpl.preferred_parent,
            rank=rpl.rank,
            dodag_id=rpl.dodag_id,
            traffic_enabled=node.traffic_enabled,
        )
        if metrics is not None:
            metrics.on_fault_injected("crash", now)
            if rpl.preferred_parent is not None:
                metrics.on_node_orphaned(node.node_id, now)
        node.alive = False
        node.traffic_enabled = False
        if node.traffic is not None:
            node.traffic.stop()
        node._eb_timer.stop()
        if node._keepalive_timer is not None:
            node._keepalive_timer.stop()
        # A cold-start node may die mid-scan: settle the listen window it
        # accumulated and drop it from the dispatch kernel's scan registry
        # (a dead radio listens to nothing).
        node.abort_scan()
        node.scheduler.stop()
        # Silent RPL detach: the node's own state dies with it, but nothing
        # is advertised (it is *off*) -- neighbors only find out at
        # detection time.  The memo-input bump keeps the rank memo honest.
        rpl.trickle.stop()
        rpl.preferred_parent = None
        rpl.rank = INFINITE_RANK
        if not rpl.is_root:
            rpl.dodag_id = None
        rpl.neighbors.clear()
        rpl.children.clear()
        rpl._memo_inputs += 1
        # Everything still queued is lost with the device (loss-accounted),
        # then the whole schedule goes: clear_schedule's mutation hook is
        # the settlement barrier that keeps the fast kernel bit-identical.
        for packet in node.tsch.flush_queue():
            if packet.ptype is PacketType.DATA and metrics is not None:
                metrics.on_data_lost(node, packet, reason="crash")
        node.tsch.quiet_shared_neighbors.clear()
        node.tsch.clear_schedule()
        # The store's TX-horizon mirror would otherwise keep advertising the
        # pre-crash occurrence; the dispatch heap lazily drops its own stale
        # entry, but array scanners have no such re-validation step.
        self.network.state.tx_horizon[node._row] = -1

    def _detect(self, fault: NodeCrash) -> None:
        """Survivors react to the crash ``detect_after_s`` later.

        Models neighbor-liveness expiry collapsed to one deterministic
        instant: every surviving node counts the cells it had scheduled
        with the dead neighbor (the orphaned-slot metric), flushes traffic
        addressed to it, tears down child state and evicts it from the
        RPL candidate set -- which, for its children, detaches and
        immediately re-runs parent selection.
        """
        dead = fault.node_id
        if self.network.nodes[dead].alive:
            return  # rebooted before anyone noticed
        metrics = self.network.metrics
        for survivor in self.network.nodes.values():
            if survivor.node_id == dead or not survivor.alive:
                continue
            orphaned = sum(
                len(frame.cells_with_neighbor(dead))
                for frame in survivor.tsch.slotframes.values()
            )
            if orphaned and metrics is not None:
                metrics.on_cells_orphaned(orphaned)
            for packet in survivor.tsch.flush_queue(destination=dead):
                if packet.ptype is PacketType.DATA and metrics is not None:
                    metrics.on_data_lost(survivor, packet, reason="crash")
            survivor.rpl.remove_child(dead)
            survivor.rpl.evict_neighbor(dead)

    def _rejoin(self, fault: NodeRejoin) -> None:
        """Cold reboot: fresh scheduler, empty schedule, warm RPL re-attach
        when the pre-crash parent is still alive (else listen for DIOs)."""
        node = self.network.nodes[fault.node_id]
        if node.alive:
            return
        now = self.network.events.now
        metrics = self.network.metrics
        record = self._records.get(fault.node_id)
        node.alive = True
        assert self._scheduler_factory is not None  # enforced by arm()
        scheduler = self._scheduler_factory(node.node_id, node.is_root)
        node.scheduler = scheduler
        scheduler.attach(node)
        node.rpl.dio_extra_provider = scheduler.dio_fields
        if node.cold_start:
            # A cold reboot loses TSCH synchronisation with the rest of the
            # state: the node re-scans for an Enhanced Beacon, and the rest
            # of the stack (scheduler, RPL, EBs, traffic) boots from
            # Node._synchronise.  The pre-crash traffic setting is restored
            # as a flag; the generator itself starts at sync.
            if record is None or record.traffic_enabled:
                node.traffic_enabled = True
            if metrics is not None:
                metrics.on_fault_injected("rejoin", now)
            node.begin_scan()
            return
        scheduler.start()
        parent = record.parent if record is not None else None
        if (
            record is not None
            and parent is not None
            and record.dodag_id is not None
            and self.network.nodes[parent].alive
        ):
            node.rpl.warm_start(
                parent=parent, rank=record.rank, dodag_id=record.dodag_id
            )
        # else: cold re-attach -- the node listens until a DIO adopts it.
        node._eb_timer.start()
        if record is None or record.traffic_enabled:
            node.traffic_enabled = True
            if node.traffic is not None:
                node.traffic.start()
        if metrics is not None:
            metrics.on_fault_injected("rejoin", now)

    def _arrival(self, fault: NodeArrival) -> None:
        """Late power-on: fresh scheduler, *no* DODAG state, cold join.

        Routes through exactly the settlement machinery a rejoin uses
        (fresh scheduling-function instance, liveness flip, timer starts as
        EventQueue events), but never warm-starts: the node either scans
        for an Enhanced Beacon first (cold-start-join configs) or boots its
        stack and listens until a DIO adopts it.
        """
        node = self.network.nodes[fault.node_id]
        if node.alive:
            return
        now = self.network.events.now
        metrics = self.network.metrics
        record = self._records.get(fault.node_id)
        node.alive = True
        assert self._scheduler_factory is not None  # enforced by arm()
        scheduler = self._scheduler_factory(node.node_id, node.is_root)
        node.scheduler = scheduler
        scheduler.attach(node)
        node.rpl.dio_extra_provider = scheduler.dio_fields
        if record is None or record.traffic_enabled:
            node.traffic_enabled = True
        if metrics is not None:
            metrics.on_fault_injected("arrival", now)
        if node.cold_start:
            # Unsynchronised boot; begin_scan registers the join episode
            # itself and Node._synchronise starts everything else.
            node.begin_scan()
            return
        # Synchronised arrival (the idealisation matching warm rejoin):
        # the stack boots immediately and waits for a DIO.
        node._cold_join_pending = True
        if metrics is not None:
            metrics.on_join_pending(node.node_id, now)
        scheduler.start()
        node.rpl.start()
        node._eb_timer.start()
        if node.traffic_enabled and node.traffic is not None:
            node.traffic.start()
        # A booting RPL node multicasts a DIS solicitation; audible joined
        # neighbors react per RFC 6206 by resetting their Trickle timers
        # (prompt DIO).  The reaction is modelled without simulating the
        # DIS frame itself -- by arrival time the neighbors' intervals have
        # backed off so far that an unsolicited join could outwait the run.
        self.network.solicit_dios(node)

    # ------------------------------------------------------------------
    # parent loss
    # ------------------------------------------------------------------
    def _parent_loss(self, fault: ParentLoss) -> None:
        """Unconfirmed link death: flush towards the parent, evict, reselect."""
        node = self.network.nodes[fault.node_id]
        if not node.alive:
            return
        metrics = self.network.metrics
        if metrics is not None:
            metrics.on_fault_injected("parent-loss", self.network.events.now)
        parent = node.rpl.preferred_parent
        if parent is None:
            return
        for packet in node.tsch.flush_queue(destination=parent):
            if packet.ptype is PacketType.DATA and metrics is not None:
                metrics.on_data_lost(node, packet, reason="parent-loss")
        node.rpl.evict_neighbor(parent)

    # ------------------------------------------------------------------
    # link-degradation epochs
    # ------------------------------------------------------------------
    def _begin_epoch(self, epoch: LinkDegradation) -> None:
        if self.network.metrics is not None:
            self.network.metrics.on_fault_injected(
                "link-degradation", self.network.events.now
            )
        self._active_scales.append(epoch.prr_scale)
        self._apply_scale()

    def _end_epoch(self, epoch: LinkDegradation) -> None:
        self._active_scales.remove(epoch.prr_scale)
        self._apply_scale()

    def _apply_scale(self) -> None:
        product = 1.0
        for scale in self._active_scales:
            product *= scale
        self.network.medium.set_prr_scale(product)
