"""Seeded fault plans: the *what-and-when* of deterministic churn.

A :class:`FaultPlan` is a pure-data description of every fault a scenario
injects: node crashes, reboots/rejoins, network-wide link-degradation
epochs and targeted parent-loss events.  Plans are built from frozen
dataclasses of scalars only, so they participate in the experiment
engine's scenario fingerprint exactly like every other knob (see
``repro/experiments/parallel.py``) -- two runs with the same seed and the
same plan are bit-identical, and changing any fault time or victim
invalidates the result cache.

The plan says nothing about *how* faults are applied; that is the
:class:`~repro.faults.injector.FaultInjector`'s job.  Keeping the two
separate means a plan can be fingerprinted, printed and asserted on
without a network in sight.

All times are absolute simulation seconds from t=0 (the experiment
pipeline runs warm-up first, so fault times normally land inside the
measurement window: ``warmup_s + delta``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.sim.rng import RngRegistry

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "LinkDegradation",
    "NodeArrival",
    "NodeCrash",
    "NodeRejoin",
    "ParentLoss",
]


@dataclass(frozen=True)
class NodeCrash:
    """Hard power-off of ``node_id`` at ``time_s``.

    The node's radio, timers and queue die instantly; the *rest* of the
    network only reacts once the crash is detected, ``detect_after_s``
    later (neighbor eviction, cell teardown, queue flush towards the dead
    node).  Roots never crash -- a plan naming a root is rejected at
    injector arm time, because a rootless DODAG has no recovery to
    measure.
    """

    time_s: float
    node_id: int
    detect_after_s: float = 2.0


@dataclass(frozen=True)
class NodeRejoin:
    """Cold reboot of a previously crashed ``node_id`` at ``time_s``.

    The node comes back with a fresh scheduling-function instance and an
    empty schedule; it warm-rejoins its pre-crash parent when that parent
    is still alive, otherwise it listens until a DIO re-attaches it.
    """

    time_s: float
    node_id: int


@dataclass(frozen=True)
class LinkDegradation:
    """Network-wide PRR epoch: every link's PRR is scaled by ``prr_scale``
    for ``duration_s`` seconds, then restored bit-exactly.

    ``prr_scale`` must be in ``(0, 1]``: strictly positive so neighbor
    reachability (PRR > 0) is preserved and the frozen medium's neighbor
    lists and interference tables stay valid, at most 1 so an epoch only
    ever degrades.  Overlapping epochs multiply.
    """

    time_s: float
    prr_scale: float
    duration_s: float


@dataclass(frozen=True)
class NodeArrival:
    """A node that is absent from slot 0 powers on at ``time_s``.

    Unlike :class:`NodeRejoin`, an arrival needs no prior crash: the node
    exists in the topology (so the frozen medium keeps its dense N x N
    shape) but is pre-marked dead at injector arm time, before the
    simulation starts.  At ``time_s`` it boots with a fresh
    scheduling-function instance and *no* DODAG state -- it either listens
    for a DIO to adopt it, or (cold-start-join scenarios) first scans for
    an Enhanced Beacon to synchronise its ASN.  Roots never arrive late; a
    plan delaying a root is rejected at injector arm time because the root
    anchors the ASN and the DODAG.
    """

    time_s: float
    node_id: int


@dataclass(frozen=True)
class ParentLoss:
    """Forced eviction of ``node_id``'s preferred parent at ``time_s``.

    Models a unidirectional link death the MAC never confirms: the node
    flushes traffic queued towards the parent (accounted as loss), drops
    the neighbor entry and re-evaluates its parent set immediately.  A
    no-op when the node is detached at fire time.
    """

    time_s: float
    node_id: int


#: ``(time_s, order, event)`` triple produced by :meth:`FaultPlan.events`.
FaultEvent = Tuple[float, int, object]

#: Stable tie-break order for events sharing a fire time: degrade the
#: medium first, then kill, then rejoin, then inject parent losses, then
#: power on late arrivals.
_EVENT_ORDER = {
    LinkDegradation: 0,
    NodeCrash: 1,
    NodeRejoin: 2,
    ParentLoss: 3,
    NodeArrival: 4,
}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, fingerprintable set of fault events.

    Every field is a tuple of frozen scalar dataclasses, which is exactly
    the shape ``scenario_fingerprint`` canonicalises -- a plan embedded in
    a :class:`~repro.experiments.scenarios.Scenario` keys the result cache
    like any other scenario knob.
    """

    crashes: Tuple[NodeCrash, ...] = field(default_factory=tuple)
    rejoins: Tuple[NodeRejoin, ...] = field(default_factory=tuple)
    link_epochs: Tuple[LinkDegradation, ...] = field(default_factory=tuple)
    parent_losses: Tuple[ParentLoss, ...] = field(default_factory=tuple)
    arrivals: Tuple[NodeArrival, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for crash in self.crashes:
            if crash.time_s < 0.0 or crash.detect_after_s < 0.0:
                raise ValueError(f"crash times must be non-negative: {crash}")
        crashed = {crash.node_id for crash in self.crashes}
        for rejoin in self.rejoins:
            if rejoin.node_id not in crashed:
                raise ValueError(
                    f"rejoin of node {rejoin.node_id} has no matching crash"
                )
        self._validate_alternation()
        for epoch in self.link_epochs:
            if not 0.0 < epoch.prr_scale <= 1.0:
                raise ValueError(
                    f"prr_scale must be in (0, 1], got {epoch.prr_scale}"
                )
            if epoch.duration_s <= 0.0:
                raise ValueError(f"epoch duration must be positive: {epoch}")
        seen_arrivals = set()
        for arrival in self.arrivals:
            if arrival.time_s < 0.0:
                raise ValueError(f"arrival times must be non-negative: {arrival}")
            if arrival.node_id in seen_arrivals:
                raise ValueError(
                    f"node {arrival.node_id} arrives more than once"
                )
            seen_arrivals.add(arrival.node_id)
            for crash in self.crashes:
                if crash.node_id == arrival.node_id and crash.time_s < arrival.time_s:
                    raise ValueError(
                        f"node {arrival.node_id} crashes at {crash.time_s} "
                        f"before arriving at {arrival.time_s}"
                    )

    def _validate_alternation(self) -> None:
        """Per node, crashes and rejoins must alternate crash-first in time.

        Two crashes of one node without an intervening rejoin would make
        the second a silent no-op (the injector guards on ``alive``), and a
        rejoin scheduled before its crash would fire on a live node --
        either way the plan does not mean what it says, so it is rejected
        here rather than dying quietly at run time.
        """
        per_node: dict = {}
        for crash in self.crashes:
            per_node.setdefault(crash.node_id, []).append((crash.time_s, 0))
        for rejoin in self.rejoins:
            per_node.setdefault(rejoin.node_id, []).append((rejoin.time_s, 1))
        for node_id, marks in sorted(per_node.items()):
            marks.sort()
            for index, (time_s, kind) in enumerate(marks):
                expected = index % 2  # crash, rejoin, crash, ...
                if kind != expected:
                    what = "crashes" if kind == 0 else "rejoins"
                    needs = "rejoin" if kind == 0 else "crash"
                    raise ValueError(
                        f"node {node_id} {what} at {time_s} without an "
                        f"intervening {needs}; crashes and rejoins must "
                        "alternate per node"
                    )

    def events(self) -> List[FaultEvent]:
        """All plan events as ``(time_s, order, event)``, sorted.

        The ``order`` component gives same-instant events a deterministic
        relative order (see ``_EVENT_ORDER``); the injector schedules them
        through the :class:`~repro.sim.events.EventQueue` in exactly this
        sequence, so both slot loops fire them identically.
        """
        merged: List[FaultEvent] = []
        groups = (
            self.link_epochs,
            self.crashes,
            self.rejoins,
            self.parent_losses,
            self.arrivals,
        )
        for group in groups:
            for event in group:
                merged.append((event.time_s, _EVENT_ORDER[type(event)], event))
        merged.sort(key=lambda item: (item[0], item[1]))
        return merged

    def is_empty(self) -> bool:
        return not (
            self.crashes
            or self.rejoins
            or self.link_epochs
            or self.parent_losses
            or self.arrivals
        )

    @classmethod
    def churn(
        cls,
        candidates: Sequence[int],
        *,
        seed: int = 1,
        num_crashes: int = 1,
        crash_window: Tuple[float, float] = (45.0, 70.0),
        detect_after_s: float = 2.0,
        rejoin_after_s: float = 15.0,
        degrade_at_s: float = 0.0,
        degrade_scale: float = 0.7,
        degrade_duration_s: float = 10.0,
        parent_loss_at_s: float = 0.0,
        num_arrivals: int = 0,
        arrival_window: Tuple[float, float] = (0.0, 0.0),
    ) -> "FaultPlan":
        """Build the canonical crash/rejoin/degrade churn plan.

        ``num_crashes`` victims are drawn without replacement from
        ``candidates`` (never include roots) by the dedicated ``"faults"``
        stream of :class:`~repro.sim.rng.RngRegistry`, so victim choice is
        a pure function of ``seed`` and never perturbs any simulation
        stream.  Crash times are spread evenly across ``crash_window``;
        each victim rejoins ``rejoin_after_s`` after its crash.  A single
        link-degradation epoch starts at ``degrade_at_s`` (skipped when
        0), and the first *surviving* candidate takes a parent-loss hit at
        ``parent_loss_at_s`` (skipped when 0).  ``num_arrivals`` late
        arrivals (skipped when 0) are drawn from the candidates that
        neither crash nor take the parent loss, with power-on times spread
        evenly across ``arrival_window`` -- the arrival draws happen
        *after* every legacy draw, so plans built without arrivals are
        bit-identical to plans built by older revisions.
        """
        if num_crashes > len(candidates):
            raise ValueError(
                f"cannot crash {num_crashes} of {len(candidates)} candidates"
            )
        rng = RngRegistry(seed).stream("faults")
        victims = rng.sample(list(candidates), num_crashes)
        start, end = crash_window
        span = max(0.0, end - start)
        step = span / num_crashes if num_crashes else 0.0
        crashes = tuple(
            NodeCrash(
                time_s=start + index * step,
                node_id=victim,
                detect_after_s=detect_after_s,
            )
            for index, victim in enumerate(victims)
        )
        rejoins = tuple(
            NodeRejoin(time_s=crash.time_s + rejoin_after_s, node_id=crash.node_id)
            for crash in crashes
        )
        link_epochs: Tuple[LinkDegradation, ...] = ()
        if degrade_at_s > 0.0:
            link_epochs = (
                LinkDegradation(
                    time_s=degrade_at_s,
                    prr_scale=degrade_scale,
                    duration_s=degrade_duration_s,
                ),
            )
        parent_losses: Tuple[ParentLoss, ...] = ()
        if parent_loss_at_s > 0.0:
            survivors = [node for node in candidates if node not in set(victims)]
            if survivors:
                parent_losses = (
                    ParentLoss(time_s=parent_loss_at_s, node_id=survivors[0]),
                )
        arrivals: Tuple[NodeArrival, ...] = ()
        if num_arrivals > 0:
            taken = set(victims)
            taken.update(loss.node_id for loss in parent_losses)
            pool = [node for node in candidates if node not in taken]
            if num_arrivals > len(pool):
                raise ValueError(
                    f"cannot arrive {num_arrivals} of {len(pool)} free candidates"
                )
            arrival_victims = rng.sample(pool, num_arrivals)
            arrive_start, arrive_end = arrival_window
            arrive_span = max(0.0, arrive_end - arrive_start)
            arrive_step = arrive_span / num_arrivals
            arrivals = tuple(
                NodeArrival(
                    time_s=arrive_start + index * arrive_step,
                    node_id=node,
                )
                for index, node in enumerate(arrival_victims)
            )
        return cls(
            crashes=crashes,
            rejoins=rejoins,
            link_epochs=link_epochs,
            parent_losses=parent_losses,
            arrivals=arrivals,
        )
