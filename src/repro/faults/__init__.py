"""Deterministic fault injection and churn.

:class:`FaultPlan` describes *what fails when* as pure, fingerprintable
data; :class:`FaultInjector` applies a plan to a live network through the
event queue and the protocol layers' existing mutation barriers, so the
slot-skipping fast kernel stays bit-identical to the reference loop under
every fault scenario.  See ``docs/faults.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LinkDegradation,
    NodeArrival,
    NodeCrash,
    NodeRejoin,
    ParentLoss,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "NodeArrival",
    "NodeCrash",
    "NodeRejoin",
    "ParentLoss",
]
