"""The GT-TSCH scheduling function.

This module ties the paper's pieces together into a 6TiSCH scheduling
function that runs on every node of the simulated network:

* **Channel allocation** (Section III): the node learns the channel towards
  its parent from the parent's Enhanced Beacons, obtains its own child-facing
  channel with the 6P ``ASK-CHANNEL`` command, and answers its children's
  ``ASK-CHANNEL`` requests through :class:`repro.core.channel_allocation.ChannelAllocator`.
* **Slotframe creation** (Section IV): a single slotframe with uniformly
  spread broadcast timeslots, a fixed number of Unicast-6P cells per neighbor
  pair, deterministic shared timeslots and everything else asleep.
* **Unicast-Data allocation** (Section V): the parent places children's Tx
  cells with :class:`repro.core.cell_allocation.UnicastCellAllocator`,
  honouring the Tx > Rx, no-consecutive-Rx and fair-interleaving rules.
* **Load balancing** (Section VI): a periodic timer measures the node's
  generation rate, the cells requested by children and the spare capacity,
  and computes ``l^{tx-min}`` (Eq. (1)).
* **The game** (Section VII): the number of cells actually requested from the
  parent is the Nash-equilibrium strategy of Eq. (15), evaluated from the
  node's normalised Rank, the parent-link ETX, and the EWMA queue metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.cell_allocation import (
    CellAllocationError,
    ScheduleView,
    UnicastCellAllocator,
)
from repro.core.channel_allocation import ChannelAllocationError, ChannelAllocator
from repro.core.config import GtTschConfig
from repro.core.game import PlayerState, optimal_tx_cells
from repro.core.load_balancing import (
    LoadObservation,
    QueueMetric,
    compute_minimum_tx_cells,
    generation_cells_per_slotframe,
)
from repro.core.slotframe_builder import GtSlotframeBuilder
from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.net.packet import Packet, PacketType
from repro.schedulers.base import SchedulingFunction
from repro.sim.events import PeriodicTimer
from repro.sixtop.messages import CellDescriptor, SixPCommand, SixPMessage, SixPReturnCode


@dataclass
class _PendingRequest:
    """A 6P request waiting for its turn (one transaction per peer at a time)."""

    command: SixPCommand
    num_cells: int = 0
    cell_list: list[CellDescriptor] = field(default_factory=list)
    purpose: str = "data"


class GtTschScheduler(SchedulingFunction):
    """GT-TSCH: game-theoretic distributed TSCH scheduling function."""

    name = "GT-TSCH"
    sf_id = 0x0A

    def __init__(self, config: Optional[GtTschConfig] = None) -> None:
        super().__init__()
        self.config = config or GtTschConfig()
        self.builder = GtSlotframeBuilder(self.config)
        self.queue_metric = QueueMetric(zeta=self.config.queue_ewma_zeta, q_max=self.config.q_max)
        self.observation = LoadObservation()
        self.channels: Optional[ChannelAllocator] = None

        # Channel state (Section III).
        self.parent_channel_offset: Optional[int] = None
        self.own_child_channel: Optional[int] = None
        #: Child-facing channels heard in EBs from any neighbor (cache so a
        #: parent switch can reuse an already-heard announcement).
        self._eb_channel_cache: dict[int, int] = {}

        # Cell bookkeeping.
        self._tx_data_cells: list[Cell] = []
        self._tx_sixp_cells: list[Cell] = []
        self._rx_cells_by_child: dict[int, list[Cell]] = {}
        self._shared_up_installed = False
        self._shared_down_installed = False

        # Bootstrap / request management.
        self._request_queue: list[_PendingRequest] = []
        self._asked_channel = False
        self._requested_sixp_cells = False
        self._requested_initial_data = False
        self._load_timer: Optional[PeriodicTimer] = None
        #: Data cells requested by each child but not (yet) granted; this is
        #: the ``l^tx_{cs_i}`` term of Eq. (1) -- the demand that must be
        #: propagated up the DODAG before it can be granted downwards.
        self._child_outstanding: dict[int, int] = {}

        #: Diagnostics.
        self.add_requests_sent = 0
        self.delete_requests_sent = 0
        self.cells_granted_to_children = 0
        self.last_game_request = 0
        #: 6P-driven schedule churn: every cell this node installed or
        #: removed as the outcome of a 6P transaction (ADD grants applied on
        #: either side, DELETE removals, consistency-repair GC).  The paper's
        #: game re-evaluates demand every load-balancing period, so sustained
        #: relocations per period measure how far the Nash equilibrium is
        #: from converging (ROADMAP: GT-TSCH convergence investigation).
        self.cells_relocated = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        node = self.node
        self.channels = ChannelAllocator(
            num_channels=min(self.config.num_channels, node.tsch.hopping.num_channels),
            broadcast_offset=self.config.broadcast_channel_offset,
        )
        self.builder.build(node.tsch)

        if node.is_root:
            rng = node.rng_registry.stream(f"gt.channel.{node.node_id}")
            self.own_child_channel = self.channels.pick_own_child_channel(rng)
            self._install_shared_cells_for_children()
        else:
            # Every non-root node opens its child-group shared cells as soon
            # as it owns a child-facing channel (after ASK-CHANNEL succeeds);
            # nothing to do yet.
            pass

        period = self.config.load_balance_period_s
        timer_rng = node.rng_registry.stream(f"gt.timer.{node.node_id}")
        queue = node.event_queue
        self._load_timer = PeriodicTimer(
            queue,
            period,
            self._load_balance_tick,
            start_offset=timer_rng.random() * period,
            label=f"gt-load-balance.{node.node_id}",
            jitter=0.1,
            rng=timer_rng,
            wheel=queue.wheel("gt-load"),
        )
        self._load_timer.start()

    def stop(self) -> None:
        """Cancel the load-balancing timer (node crash teardown)."""
        if self._load_timer is not None:
            self._load_timer.stop()

    # ------------------------------------------------------------------
    # control-plane piggybacking (Section III / VII)
    # ------------------------------------------------------------------
    def eb_fields(self) -> dict[str, Any]:
        """Advertise this node's child-facing channel on its EBs."""
        if self.own_child_channel is None:
            return {}
        return {"child_channel": self.own_child_channel}

    def dio_fields(self) -> dict[str, Any]:
        """Advertise ``l^rx`` (the Rx cells offered to children) on DIOs."""
        return {"l_rx": self.advertised_rx_budget()}

    def advertised_rx_budget(self) -> int:
        """How many additional Rx cells this node is willing to grant.

        The budget is the cell-allocation rule-1 margin minus a safety
        margin, so that a child requesting the full advertisement can always
        be satisfied even if another child asked first within the same DIO
        interval.
        """
        budget = UnicastCellAllocator(self._schedule_view()).rx_budget()
        return max(0, budget - self.config.parent_budget_margin)

    # ------------------------------------------------------------------
    # EB handling: learn the parent-facing channel (Section III)
    # ------------------------------------------------------------------
    def on_eb_received(self, packet: Packet) -> None:
        sender = packet.link_source
        channel = packet.payload.get("child_channel")
        if channel is None:
            return
        self._eb_channel_cache[sender] = channel
        if sender == self.node.rpl.preferred_parent:
            self._learn_parent_channel(channel)

    def _learn_parent_channel(self, channel_offset: int) -> None:
        if self.parent_channel_offset == channel_offset and self._shared_up_installed:
            return
        parent = self.node.rpl.preferred_parent
        if parent is None:
            return
        self.parent_channel_offset = channel_offset
        if self.channels is not None:
            self.channels.parent_facing_offset = channel_offset
        if not self._shared_up_installed:
            self.builder.install_shared_cells_towards_parent(
                self.node.tsch, parent, channel_offset
            )
            self._shared_up_installed = True
        self._bootstrap_with_parent()

    # ------------------------------------------------------------------
    # RPL events
    # ------------------------------------------------------------------
    def on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        if old_parent is not None:
            self._remove_cells_towards(old_parent)
            self.node.tsch.quiet_shared_neighbors.discard(old_parent)
        self.parent_channel_offset = None
        self._shared_up_installed = False
        self._asked_channel = self.own_child_channel is not None
        self._requested_sixp_cells = False
        self._requested_initial_data = False
        self._request_queue.clear()
        if new_parent is not None and new_parent in self._eb_channel_cache:
            self._learn_parent_channel(self._eb_channel_cache[new_parent])

    def on_child_added(self, child: int) -> None:
        """A DAO announced a new child: open a contention path towards it.

        The parent installs shared Tx cells towards the child on its own
        group's shared timeslots so 6P responses (and any downward traffic)
        have a way out before/besides dedicated cells.
        """
        self._install_shared_tx_towards_child(child)

    def _install_shared_tx_towards_child(self, child: int) -> None:
        if self.own_child_channel is None:
            return
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        for offset in self.builder.shared_cell_offsets(self.node.node_id):
            slotframe.add_cell(
                Cell(
                    slot_offset=offset,
                    channel_offset=self.own_child_channel,
                    options=CellOption.TX | CellOption.SHARED,
                    neighbor=child,
                    purpose=CellPurpose.SHARED,
                    label="gt-shared-down-tx",
                )
            )

    def on_child_removed(self, child: int) -> None:
        cells = self._rx_cells_by_child.pop(child, [])
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        for cell in cells:
            slotframe.remove_cell(cell)
        if self.channels is not None:
            self.channels.release_child(child)

    # ------------------------------------------------------------------
    # bootstrap with a (new) parent
    # ------------------------------------------------------------------
    def _bootstrap_with_parent(self) -> None:
        """Queue the startup transactions towards the parent, in order.

        1. ``ASK-CHANNEL`` to obtain this node's child-facing channel;
        2. 6P ``ADD`` for the fixed number of Unicast-6P cells;
        3. 6P ``ADD`` for the initial Unicast-Data cells.
        """
        if not self._asked_channel and self.own_child_channel is None:
            self._asked_channel = True
            self._request_queue.append(_PendingRequest(command=SixPCommand.ASK_CHANNEL))
        if not self._requested_sixp_cells:
            self._requested_sixp_cells = True
            self._request_queue.append(
                _PendingRequest(
                    command=SixPCommand.ADD,
                    num_cells=self.config.sixp_cells_per_neighbor,
                    purpose="6p",
                )
            )
        if not self._requested_initial_data:
            self._requested_initial_data = True
            self._request_queue.append(
                _PendingRequest(
                    command=SixPCommand.ADD,
                    num_cells=self.config.initial_tx_cells,
                    purpose="data",
                )
            )
        self._pump_requests()

    def _pump_requests(self) -> None:
        """Send the next queued 6P request if none is in flight."""
        parent = self.node.rpl.preferred_parent
        if parent is None or not self._request_queue:
            return
        if self.node.sixtop.has_pending_transaction(parent):
            return
        request = self._request_queue.pop(0)
        # While the transaction is open, keep the shared cells towards the
        # parent available for the response (no data transmissions there).
        self.node.tsch.quiet_shared_neighbors.add(parent)
        metadata = {"purpose": request.purpose}
        if request.purpose == "data" and request.command is SixPCommand.ADD:
            # Tell the parent how many data Tx cells we actually hold towards
            # it, so it can detect and garbage-collect Rx cells whose grant
            # response we never received (schedule-consistency repair).
            metadata["owned"] = len(self._tx_data_cells)
        if request.command is SixPCommand.ASK_CHANNEL:
            self.node.sixtop.send_request(
                parent,
                SixPCommand.ASK_CHANNEL,
                callback=self._on_ask_channel_response,
            )
        elif request.command is SixPCommand.ADD:
            self.add_requests_sent += 1
            # RFC 8480 semantics: propose the offsets that are free on *our*
            # side so the parent never grants a timeslot we already use (which
            # would recreate interference problem 1 of Section III).
            candidates = [
                CellDescriptor(offset, 0) for offset in self._schedule_view().free_offsets()
            ]
            self.node.sixtop.send_request(
                parent,
                SixPCommand.ADD,
                num_cells=request.num_cells,
                cell_list=candidates,
                metadata=metadata,
                callback=self._on_add_response,
            )
        elif request.command is SixPCommand.DELETE:
            self.delete_requests_sent += 1
            self.node.sixtop.send_request(
                parent,
                SixPCommand.DELETE,
                num_cells=request.num_cells,
                cell_list=request.cell_list,
                metadata=metadata,
                callback=self._on_delete_response,
            )

    # ------------------------------------------------------------------
    # 6P responder side (the parent's role)
    # ------------------------------------------------------------------
    def on_sixp_request(
        self, peer: int, message: SixPMessage
    ) -> tuple[SixPReturnCode, dict[str, Any]]:
        # Make sure the response has a way back to the requester even when its
        # DAO has not been processed yet (the request itself proves the peer
        # is a child of ours).
        self._install_shared_tx_towards_child(peer)
        if message.command is SixPCommand.ASK_CHANNEL:
            return self._answer_ask_channel(peer)
        if message.command is SixPCommand.ADD:
            return self._answer_add(peer, message)
        if message.command is SixPCommand.DELETE:
            return self._answer_delete(peer, message)
        return SixPReturnCode.ERR, {}

    def _answer_ask_channel(self, peer: int) -> tuple[SixPReturnCode, dict[str, Any]]:
        if self.channels is None or self.own_child_channel is None:
            # We have not obtained our own channel yet; the child will retry.
            return SixPReturnCode.ERR_BUSY, {}
        try:
            granted = self.channels.grant_child_channel(peer)
        except ChannelAllocationError:
            return SixPReturnCode.ERR_NORES, {}
        return SixPReturnCode.SUCCESS, {"channel_offset": granted}

    def _answer_add(self, peer: int, message: SixPMessage) -> tuple[SixPReturnCode, dict[str, Any]]:
        if self.own_child_channel is None:
            return SixPReturnCode.ERR_BUSY, {}
        purpose = message.metadata.get("purpose", "data")
        count = max(1, message.num_cells)
        if purpose == "data" and "owned" in message.metadata:
            self._reconcile_child_cells(peer, int(message.metadata["owned"]))
        view = self._schedule_view()
        allocator = UnicastCellAllocator(view)
        allowed = (
            {descriptor.slot_offset for descriptor in message.cell_list}
            if message.cell_list
            else None
        )
        try:
            if purpose == "6p":
                offsets = [
                    offset
                    for offset in view.free_offsets()
                    if allowed is None or offset in allowed
                ][:count]
            else:
                offsets = allocator.pick_rx_offsets(peer, count, allowed=allowed)
        except CellAllocationError:
            offsets = []
        if purpose == "data":
            # Eq. (1): the child's *requested* cells count towards this node's
            # own demand even when none can be granted right now; the shortfall
            # stays outstanding and is propagated upward (this node requests
            # more Tx cells from its own parent) until the child can be served.
            self.observation.child_requested_cells += count
            self._child_outstanding[peer] = max(0, count - len(offsets))
        if not offsets:
            return SixPReturnCode.ERR_NORES, {}

        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        cell_purpose = CellPurpose.UNICAST_6P if purpose == "6p" else CellPurpose.UNICAST_DATA
        granted: list[CellDescriptor] = []
        for offset in offsets:
            cell = slotframe.add_cell(
                Cell(
                    slot_offset=offset,
                    channel_offset=self.own_child_channel,
                    options=CellOption.RX | CellOption.ALWAYS_ON,
                    neighbor=peer,
                    purpose=cell_purpose,
                    label=f"gt-rx-{purpose}",
                )
            )
            self._rx_cells_by_child.setdefault(peer, []).append(cell)
            granted.append(CellDescriptor(offset, self.own_child_channel))
        self.cells_granted_to_children += len(granted)
        self.cells_relocated += len(granted)
        return SixPReturnCode.SUCCESS, {
            "cell_list": granted,
            "num_cells": len(granted),
            "metadata": {"purpose": purpose},
        }

    def _reconcile_child_cells(self, peer: int, child_owned: int) -> None:
        """Drop Rx data cells the child does not know about.

        When a 6P ADD response is lost, this node has installed Rx cells the
        child never installed as Tx; the child's next request reports how many
        cells it actually owns, and the surplus is released here so the
        schedule does not leak listening cells (and budget) over time.
        """
        cells = [
            cell
            for cell in self._rx_cells_by_child.get(peer, [])
            if cell.purpose is CellPurpose.UNICAST_DATA
        ]
        surplus = len(cells) - child_owned
        if surplus <= 0:
            return
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        for cell in sorted(cells, key=lambda c: c.slot_offset)[-surplus:]:
            slotframe.remove_cell(cell)
            self._rx_cells_by_child[peer].remove(cell)
            self.cells_relocated += 1

    def _answer_delete(
        self, peer: int, message: SixPMessage
    ) -> tuple[SixPReturnCode, dict[str, Any]]:
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        my_cells = self._rx_cells_by_child.get(peer, [])
        requested = {descriptor.slot_offset for descriptor in message.cell_list}
        if not requested and message.num_cells > 0:
            requested = {cell.slot_offset for cell in my_cells[-message.num_cells:]}
        removed: list[CellDescriptor] = []
        for cell in list(my_cells):
            if cell.slot_offset in requested:
                slotframe.remove_cell(cell)
                my_cells.remove(cell)
                removed.append(CellDescriptor(cell.slot_offset, cell.channel_offset))
        self.cells_relocated += len(removed)
        return SixPReturnCode.SUCCESS, {"cell_list": removed, "num_cells": len(removed)}

    # ------------------------------------------------------------------
    # 6P initiator-side response handling (the child's role)
    # ------------------------------------------------------------------
    def _on_ask_channel_response(
        self, peer: int, request: SixPMessage, response: Optional[SixPMessage]
    ) -> None:
        self.node.tsch.quiet_shared_neighbors.discard(peer)
        if response is None or response.return_code is not SixPReturnCode.SUCCESS:
            # Timed out or the parent was not ready: retry at the next period.
            self._asked_channel = False
        elif response.channel_offset is not None:
            self.own_child_channel = response.channel_offset
            if self.channels is not None:
                self.channels.child_facing_offset = response.channel_offset
            self._install_shared_cells_for_children()
        self._pump_requests()

    def _on_add_response(
        self, peer: int, request: SixPMessage, response: Optional[SixPMessage]
    ) -> None:
        self.node.tsch.quiet_shared_neighbors.discard(peer)
        purpose = request.metadata.get("purpose", "data")
        if response is None or response.return_code is not SixPReturnCode.SUCCESS:
            if purpose == "6p":
                self._requested_sixp_cells = False
            elif purpose == "data" and not self._tx_data_cells:
                self._requested_initial_data = False
            self._pump_requests()
            return
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        cell_purpose = CellPurpose.UNICAST_6P if purpose == "6p" else CellPurpose.UNICAST_DATA
        for descriptor in response.cell_list:
            if slotframe.cells_at_offset(descriptor.slot_offset):
                # Between our request and the parent's response we committed
                # this offset to something else (typically an Rx grant to one
                # of our own children).  Skip it: the parent's extra Rx cell
                # becomes an orphan that the next request's ``owned`` count
                # garbage-collects.
                continue
            cell = slotframe.add_cell(
                Cell(
                    slot_offset=descriptor.slot_offset,
                    channel_offset=descriptor.channel_offset,
                    options=CellOption.TX,
                    neighbor=peer,
                    purpose=cell_purpose,
                    label=f"gt-tx-{purpose}",
                )
            )
            if purpose == "6p":
                self._tx_sixp_cells.append(cell)
            else:
                self._tx_data_cells.append(cell)
            self.cells_relocated += 1
        self._pump_requests()

    def _on_delete_response(
        self, peer: int, request: SixPMessage, response: Optional[SixPMessage]
    ) -> None:
        self.node.tsch.quiet_shared_neighbors.discard(peer)
        if response is None or response.return_code is not SixPReturnCode.SUCCESS:
            self._pump_requests()
            return
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        removed_offsets = {descriptor.slot_offset for descriptor in response.cell_list}
        for cell in list(self._tx_data_cells):
            if cell.slot_offset in removed_offsets:
                slotframe.remove_cell(cell)
                self._tx_data_cells.remove(cell)
                self.cells_relocated += 1
        self._pump_requests()

    # ------------------------------------------------------------------
    # the periodic load-balancing / game round (Sections VI-VII)
    # ------------------------------------------------------------------
    def _load_balance_tick(self) -> None:
        node = self.node
        self.queue_metric.update(node.tsch.data_queue_length())
        parent = node.rpl.preferred_parent

        if parent is None or node.is_root:
            return
        if self.parent_channel_offset is None:
            # We have not heard the parent's EB yet; try the cache and wait.
            if parent in self._eb_channel_cache:
                self._learn_parent_channel(self._eb_channel_cache[parent])
            return

        # Self-healing bootstrap: a timed-out ASK-CHANNEL or 6P-cell request
        # resets its flag, and this re-queues it until it eventually succeeds.
        self._bootstrap_with_parent()

        observation = self.observation.reset()
        generation_ppm = observation.packets_generated * 60.0 / self.config.load_balance_period_s
        l_g = generation_cells_per_slotframe(
            generation_ppm,
            self.config.slotframe_length,
            node.config.tsch.slot_duration_s,
        )
        current_tx = len(self._tx_data_cells)
        current_rx = self.rx_data_cell_count()
        outstanding = sum(self._child_outstanding.values())
        # Eq. (1): the demand is the node's own generation (``l^g``) plus
        # everything its children need to push through it -- the Rx cells
        # already granted plus the child requests that could not be granted
        # yet (``l^tx_{cs}``); the spare capacity is the Tx cells already
        # owned, so the minimum request is the shortfall.
        required_tx = l_g + current_rx + outstanding
        l_tx_min = compute_minimum_tx_cells(required_tx, 0, current_tx)

        l_rx_parent = node.rpl.parent_l_rx()
        upper = max(float(l_rx_parent), float(l_tx_min))
        state = PlayerState(
            l_tx_min=float(l_tx_min),
            l_rx_parent=upper,
            rank_normalised=node.rpl.normalised_rank(),
            etx=node.tsch.etx.etx(parent),
            queue_metric=self.queue_metric.value,
            q_max=float(self.config.q_max),
        )
        request_size = int(optimal_tx_cells(state, self.config.weights))
        self.last_game_request = request_size

        if request_size > 0:
            # Replace any stale queued data-ADD with the freshly computed one
            # so slow 6P rounds do not pile up outdated requests.
            self._request_queue = [
                request
                for request in self._request_queue
                if not (request.command is SixPCommand.ADD and request.purpose == "data")
            ]
            self._request_queue.append(
                _PendingRequest(command=SixPCommand.ADD, num_cells=request_size, purpose="data")
            )
        else:
            # Over-provisioning check: release cells we clearly no longer need.
            surplus = current_tx - required_tx - self.config.overprovision_slack
            if surplus > 0 and self.queue_metric.value < 1.0 and self._tx_data_cells:
                victims = sorted(self._tx_data_cells, key=lambda c: c.slot_offset)[-surplus:]
                self._request_queue.append(
                    _PendingRequest(
                        command=SixPCommand.DELETE,
                        num_cells=len(victims),
                        cell_list=[
                            CellDescriptor(cell.slot_offset, cell.channel_offset)
                            for cell in victims
                        ],
                        purpose="data",
                    )
                )
        self._pump_requests()

    # ------------------------------------------------------------------
    # MAC events
    # ------------------------------------------------------------------
    def on_packet_enqueued(self, packet: Packet) -> None:
        if packet.ptype is PacketType.DATA and packet.source == self.node.node_id:
            self.observation.packets_generated += 1

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _install_shared_cells_for_children(self) -> None:
        if self._shared_down_installed or self.own_child_channel is None:
            return
        self.builder.install_shared_cells_for_children(
            self.node.tsch, self.node.node_id, self.own_child_channel
        )
        self._shared_down_installed = True
        # Children announced (via DAO) before we owned a child-facing channel
        # still need their contention path.
        for child in sorted(self.node.rpl.children):
            self._install_shared_tx_towards_child(child)

    def _remove_cells_towards(self, neighbor: int) -> None:
        slotframe = self.node.tsch.get_slotframe(self.builder.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        slotframe.remove_cells_with_neighbor(neighbor)
        self._tx_data_cells = [c for c in self._tx_data_cells if c.neighbor != neighbor]
        self._tx_sixp_cells = [c for c in self._tx_sixp_cells if c.neighbor != neighbor]

    def _schedule_view(self) -> ScheduleView:
        """Snapshot of this node's schedule for the cell-allocation rules."""
        group_owners = [self.node.node_id]
        parent = self.node.rpl.preferred_parent
        if parent is not None:
            group_owners.append(parent)
        reserved = set(self.builder.reserved_offsets(group_owners))
        for cell in self._tx_sixp_cells:
            reserved.add(cell.slot_offset)
        rx_by_child: dict[int, set[int]] = {}
        for child, cells in self._rx_cells_by_child.items():
            for cell in cells:
                if cell.purpose is CellPurpose.UNICAST_DATA:
                    rx_by_child.setdefault(child, set()).add(cell.slot_offset)
                else:
                    reserved.add(cell.slot_offset)
        return ScheduleView(
            slotframe_length=self.config.slotframe_length,
            reserved_offsets=reserved,
            tx_offsets={cell.slot_offset for cell in self._tx_data_cells},
            rx_offsets_by_child=rx_by_child,
            is_root=self.node.is_root,
        )

    # ------------------------------------------------------------------
    # introspection (used by examples / tests)
    # ------------------------------------------------------------------
    def relocation_count(self) -> int:
        return self.cells_relocated

    def load_balance_period_s(self) -> float:
        return self.config.load_balance_period_s

    def tx_data_cell_count(self) -> int:
        return len(self._tx_data_cells)

    def rx_data_cell_count(self) -> int:
        return sum(
            1
            for cells in self._rx_cells_by_child.values()
            for cell in cells
            if cell.purpose is CellPurpose.UNICAST_DATA
        )

    def children_with_cells(self) -> list[int]:
        return sorted(self._rx_cells_by_child)
