"""GT-TSCH channel allocation (Section III, Algorithm 1).

GT-TSCH avoids the four interference problems of Fig. 2 by construction:

1. a parent receives from all of its children on a *single* channel (its
   child-facing channel ``f_{i,cs_i}``), and each timeslot of that channel is
   dedicated to one child, so a node never has two communications scheduled
   in the same timeslot;
2. sibling subtrees use different child-facing channels, so simultaneous
   transmissions of cousins cannot collide;
3. a node's child-facing channel differs from its parent's and grandparent's
   child-facing channels, so "uncle" transmissions cannot collide either;
4. every allocated channel is unique along any three-hop routing path, which
   removes the hidden-terminal case.

The parent owns the decision: when a child sends the 6P ``ASK-CHANNEL``
request, the parent picks a channel that is not the broadcast channel, not
its own parent-facing channel, not its own child-facing channel, and not
already given to a sibling (Algorithm 1).  :class:`ChannelAllocator`
implements that per-node logic; :func:`allocate_channels_in_tree` runs it
over a whole DODAG for analysis, examples and the property-based tests that
verify the three-hop uniqueness invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class ChannelAllocationError(RuntimeError):
    """Raised when no conflict-free channel offset is available."""


@dataclass
class ChannelAllocator:
    """Per-node channel bookkeeping for GT-TSCH.

    The allocator tracks the three channels Algorithm 1 forbids (broadcast,
    parent-facing, own child-facing) and the channels already assigned to
    each child, and hands out child-facing channels for children on demand.
    """

    num_channels: int
    broadcast_offset: int = 0
    #: Channel offset used towards the parent (the parent's child-facing channel).
    parent_facing_offset: Optional[int] = None
    #: Channel offset this node's children transmit on.
    child_facing_offset: Optional[int] = None
    #: Child-facing channels granted to each child (``f_{j,cs_j}``).
    child_grants: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_channels < 3:
            raise ValueError("GT-TSCH channel allocation needs at least 3 channels")
        if not 0 <= self.broadcast_offset < self.num_channels:
            raise ValueError("broadcast_offset out of range")

    # ------------------------------------------------------------------
    def available_offsets(self) -> list[int]:
        """Channel offsets usable for unicast data (everything but broadcast)."""
        return [offset for offset in range(self.num_channels) if offset != self.broadcast_offset]

    def forbidden_offsets(self) -> set[int]:
        """Offsets Algorithm 1 forbids for a child's child-facing channel."""
        forbidden = {self.broadcast_offset}
        if self.parent_facing_offset is not None:
            forbidden.add(self.parent_facing_offset)
        if self.child_facing_offset is not None:
            forbidden.add(self.child_facing_offset)
        return forbidden

    def pick_own_child_channel(self, rng=None) -> int:
        """Root-only: pick this node's child-facing channel (Algorithm 1 line 2).

        Non-root nodes receive their child-facing channel from their parent
        through ASK-CHANNEL; roots pick one themselves (randomly when an RNG
        is supplied, deterministically otherwise).
        """
        candidates = [
            offset
            for offset in self.available_offsets()
            if offset != self.parent_facing_offset
        ]
        if not candidates:
            raise ChannelAllocationError("no channel available for the child-facing link")
        if rng is not None:
            choice = rng.choice(candidates)
        else:
            choice = candidates[0]
        self.child_facing_offset = choice
        return choice

    def grant_child_channel(self, child: int) -> int:
        """Answer a child's ASK-CHANNEL request (Algorithm 1 lines 11-22).

        The granted offset avoids the broadcast channel, this node's
        parent-facing and child-facing channels, and every offset already
        granted to a sibling.  The grant is remembered so repeated requests
        (e.g. after a 6P retransmission) are idempotent.
        """
        if child in self.child_grants:
            return self.child_grants[child]
        taken = set(self.child_grants.values()) | self.forbidden_offsets()
        for offset in self.available_offsets():
            if offset not in taken:
                self.child_grants[child] = offset
                return offset
        raise ChannelAllocationError(
            f"no conflict-free channel left for child {child}: "
            f"{self.num_channels} channels, {len(self.child_grants)} children, "
            f"forbidden={sorted(self.forbidden_offsets())}"
        )

    def release_child(self, child: int) -> None:
        """Forget the grant of a departed child so its channel can be reused."""
        self.child_grants.pop(child, None)

    def max_children(self) -> int:
        """Children this node can serve with unique channels (``n - 2 - 1``)."""
        return max(0, self.num_channels - len(self.forbidden_offsets()))


# ----------------------------------------------------------------------
# whole-tree allocation (analysis / examples / property tests)
# ----------------------------------------------------------------------
def allocate_channels_in_tree(
    parent_map: dict[int, Optional[int]],
    num_channels: int,
    broadcast_offset: int = 0,
    rng=None,
) -> dict[int, int]:
    """Run GT-TSCH channel allocation over an entire DODAG.

    ``parent_map`` maps every node to its parent (roots map to ``None``).
    Returns the child-facing channel offset of every node that has at least
    one potential child (i.e. every node), such that:

    * no node shares its child-facing channel with its parent or grandparent
      (three-hop uniqueness along any routing path);
    * siblings have distinct child-facing channels;
    * the broadcast offset is never used.

    Raises :class:`ChannelAllocationError` when a node has more children than
    ``num_channels - 3`` allows, matching the constraint of Section III.
    """
    children: dict[Optional[int], list[int]] = {}
    for node, parent in parent_map.items():
        children.setdefault(parent, []).append(node)
    for bucket in children.values():
        bucket.sort()

    allocators: dict[int, ChannelAllocator] = {
        node: ChannelAllocator(num_channels=num_channels, broadcast_offset=broadcast_offset)
        for node in parent_map
    }
    assignment: dict[int, int] = {}

    roots = sorted(children.get(None, []))
    if not roots:
        raise ValueError("parent_map contains no root (a node whose parent is None)")

    # Breadth-first: parents always have their own channels before their
    # children ask, exactly as EB/ASK-CHANNEL propagation works at run time.
    frontier = list(roots)
    for root in roots:
        assignment[root] = allocators[root].pick_own_child_channel(rng)

    while frontier:
        next_frontier: list[int] = []
        for parent in frontier:
            parent_alloc = allocators[parent]
            for child in children.get(parent, []):
                granted = parent_alloc.grant_child_channel(child)
                assignment[child] = granted
                child_alloc = allocators[child]
                child_alloc.parent_facing_offset = assignment[parent]
                child_alloc.child_facing_offset = granted
                next_frontier.append(child)
        frontier = next_frontier
    return assignment


def verify_three_hop_uniqueness(
    parent_map: dict[int, Optional[int]], assignment: dict[int, int]
) -> list[str]:
    """Return violations of the channel allocation invariants (empty = valid).

    Checked invariants (Section III):

    * a node's child-facing channel differs from its parent's and its
      grandparent's child-facing channels;
    * siblings have distinct child-facing channels.
    """
    violations: list[str] = []
    for node, parent in parent_map.items():
        if parent is None:
            continue
        if assignment.get(node) == assignment.get(parent):
            violations.append(f"node {node} shares a channel with its parent {parent}")
        grandparent = parent_map.get(parent)
        if grandparent is not None and assignment.get(node) == assignment.get(grandparent):
            violations.append(
                f"node {node} shares a channel with its grandparent {grandparent}"
            )
    siblings: dict[Optional[int], list[int]] = {}
    for node, parent in parent_map.items():
        siblings.setdefault(parent, []).append(node)
    for parent, group in siblings.items():
        if parent is None:
            continue
        seen: dict[int, int] = {}
        for node in group:
            channel = assignment.get(node)
            if channel in seen:
                violations.append(
                    f"siblings {seen[channel]} and {node} (parent {parent}) share channel {channel}"
                )
            else:
                seen[channel] = node
    return violations
