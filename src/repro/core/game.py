"""The GT-TSCH non-cooperative game (Section VII of the paper).

Each IoT node is a player choosing how many TSCH Tx cells (``l^tx_i``) to
request from its parent, within the strategy set
``S_i = [l^{tx-min}_i, l^{rx}_{p_i}]``.  The payoff (Eq. (8)) trades a
logarithmic utility that favours nodes close to the root (Eqs. (2)-(3))
against a link-quality cost (Eq. (5), driven by ETX) and a queue cost
(Eq. (7), driven by the EWMA queue metric of Eq. (6)):

    v_i(l) = alpha * Rank~_i * log(l + 1)
             - beta  * l * (ETX_i - 1)
             - gamma * l * (1 - Q_i / QMax)

Because the payoff is strictly concave in ``l``, the KKT conditions of the
constrained maximisation (Eq. (13)) have the closed-form solution of
Eq. (15), implemented in :func:`optimal_tx_cells`.

Everything in this module is a pure function of floats -- no simulator state
-- so the math can be property-tested in isolation and reused outside the
simulator (e.g. on a real mote, this is the code that would run on-device).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class GameWeights:
    """User-preference weights of the payoff function (alpha, beta, gamma).

    The paper sets them "by considering the network topology and application
    features": for networks with high-quality links under heavy traffic the
    queue cost should dominate the link cost (gamma > beta).  The defaults
    follow that guidance and are the values used by every benchmark scenario
    (see EXPERIMENTS.md for the ablation over these weights).
    """

    alpha: float = 8.0
    beta: float = 1.0
    gamma: float = 4.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive (otherwise utility vanishes)")
        if self.beta < 0 or self.gamma < 0:
            raise ValueError("beta and gamma must be non-negative")


@dataclass(frozen=True)
class PlayerState:
    """Everything node ``i`` needs to evaluate its payoff.

    Attributes
    ----------
    l_tx_min:
        Minimum number of Tx cells required by the load-balancing algorithm
        (Eq. (1)); lower bound of the strategy set.
    l_rx_parent:
        Number of reception cells the parent advertises in its DIO
        (``l^rx_{p_i}``); upper bound of the strategy set.
    rank_normalised:
        ``Rank~_i`` of Eq. (3) (``MinHopRankIncrease / (Rank_i - Rank_min)``).
    etx:
        ETX of the link towards the preferred parent (>= 1, Eq. (4)).
    queue_metric:
        EWMA queue metric ``Q_i`` of Eq. (6).
    q_max:
        Maximum queue length ``QMax``.
    """

    l_tx_min: float
    l_rx_parent: float
    rank_normalised: float
    etx: float
    queue_metric: float
    q_max: float

    def __post_init__(self) -> None:
        if self.q_max <= 0:
            raise ValueError("q_max must be positive")
        if self.etx < 1.0:
            raise ValueError("ETX is a number of transmissions and cannot be below 1")
        if self.queue_metric < 0:
            raise ValueError("queue_metric cannot be negative")
        if self.l_tx_min < 0 or self.l_rx_parent < 0:
            raise ValueError("cell counts cannot be negative")


# ----------------------------------------------------------------------
# Eq. (2): utility
# ----------------------------------------------------------------------
def utility(l_tx: float, rank_normalised: float) -> float:
    """Logarithmic utility ``u_i = Rank~_i * log(l + 1)`` (Eq. (2)).

    Strictly concave and increasing in ``l_tx``; nodes with a smaller Rank
    (closer to the root) obtain more profit per cell, which prioritises them
    in the allocation and balances load along the DODAG.
    """
    if l_tx < 0:
        raise ValueError("l_tx cannot be negative")
    return rank_normalised * math.log(l_tx + 1.0)


# ----------------------------------------------------------------------
# Eq. (5): link-quality cost
# ----------------------------------------------------------------------
def link_cost(l_tx: float, etx: float) -> float:
    """Link-quality cost ``d_i = l * (ETX - 1)`` (Eq. (5)).

    A perfect link (ETX = 1) costs nothing; lossy links make additional Tx
    cells expensive, reducing the incentive to pump traffic over links that
    would waste energy on retransmissions.
    """
    if l_tx < 0:
        raise ValueError("l_tx cannot be negative")
    if etx < 1.0:
        raise ValueError("ETX cannot be below 1")
    return l_tx * (etx - 1.0)


# ----------------------------------------------------------------------
# Eq. (7): queue cost
# ----------------------------------------------------------------------
def queue_cost(l_tx: float, queue_metric: float, q_max: float) -> float:
    """Queue cost ``z_i = l * (1 - Q_i/QMax)`` (Eq. (7)).

    A nearly full queue (``Q_i -> QMax``) makes extra Tx cells nearly free,
    prioritising congested nodes; an empty queue makes them expensive,
    steering idle nodes towards energy saving.
    """
    if l_tx < 0:
        raise ValueError("l_tx cannot be negative")
    if q_max <= 0:
        raise ValueError("q_max must be positive")
    occupancy = min(max(queue_metric / q_max, 0.0), 1.0)
    return l_tx * (1.0 - occupancy)


# ----------------------------------------------------------------------
# Eq. (8): payoff
# ----------------------------------------------------------------------
def payoff(
    l_tx: float,
    state: PlayerState,
    weights: Optional[GameWeights] = None,
) -> float:
    """Payoff ``v_i = alpha*u_i - beta*d_i - gamma*z_i`` (Eq. (8))."""
    weights = weights or GameWeights()
    return (
        weights.alpha * utility(l_tx, state.rank_normalised)
        - weights.beta * link_cost(l_tx, state.etx)
        - weights.gamma * queue_cost(l_tx, state.queue_metric, state.q_max)
    )


def payoff_derivative(l_tx: float, state: PlayerState, weights: Optional[GameWeights] = None) -> float:
    """First derivative of the payoff with respect to ``l_tx``.

    Used by the KKT stationarity condition and by the numeric Nash checks.
    """
    weights = weights or GameWeights()
    occupancy = min(max(state.queue_metric / state.q_max, 0.0), 1.0)
    return (
        weights.alpha * state.rank_normalised / (l_tx + 1.0)
        - weights.beta * (state.etx - 1.0)
        - weights.gamma * (1.0 - occupancy)
    )


def payoff_second_derivative(
    l_tx: float, state: PlayerState, weights: Optional[GameWeights] = None
) -> float:
    """Second derivative (Eq. (10)); strictly negative, proving concavity."""
    weights = weights or GameWeights()
    return -weights.alpha * state.rank_normalised / ((l_tx + 1.0) ** 2)


# ----------------------------------------------------------------------
# Eq. (15): the constrained optimum
# ----------------------------------------------------------------------
def unconstrained_optimum(state: PlayerState, weights: Optional[GameWeights] = None) -> float:
    """The stationary point ``alpha*Rank~ / (gamma*(1-Q/QMax) + beta*(ETX-1)) - 1``.

    This is where the payoff derivative vanishes; when the marginal cost is
    zero (perfect link *and* full queue) the optimum is unbounded and the
    function returns ``math.inf`` -- the caller clamps to the strategy set.
    """
    weights = weights or GameWeights()
    occupancy = min(max(state.queue_metric / state.q_max, 0.0), 1.0)
    marginal_cost = weights.gamma * (1.0 - occupancy) + weights.beta * (state.etx - 1.0)
    if marginal_cost <= 0.0:
        return math.inf
    return (weights.alpha * state.rank_normalised / marginal_cost) - 1.0


def optimal_tx_cells(
    state: PlayerState,
    weights: Optional[GameWeights] = None,
    integral: bool = True,
) -> float:
    """Optimal number of Tx cells to request (Eq. (15) / Algorithm 2).

    The KKT conditions of the constrained problem (Eq. (13)) yield a simple
    projection of the unconstrained stationary point onto the strategy set
    ``[l_tx_min, l_rx_parent]``:

    * if the stationary point is below ``l_tx_min`` the lower constraint is
      active and the node requests exactly ``l_tx_min``;
    * if it exceeds ``l_rx_parent`` the upper constraint is active and the
      node requests everything the parent can offer;
    * otherwise it requests the stationary point itself.

    When the parent offers fewer cells than the node's minimum requirement
    (``l_rx_parent < l_tx_min``) the strategy set is empty; following
    Section VII the request is capped at ``l_rx_parent``.

    With ``integral=True`` (the on-mote behaviour) the result is rounded down
    to a whole number of cells, never below zero.
    """
    weights = weights or GameWeights()
    lower = state.l_tx_min
    upper = state.l_rx_parent

    if upper <= lower:
        result = upper
    else:
        stationary = unconstrained_optimum(state, weights)
        if stationary <= lower:
            result = lower
        elif stationary >= upper:
            result = upper
        else:
            result = stationary

    if integral:
        return float(max(0, math.floor(result + 1e-9)))
    return max(0.0, result)


# ----------------------------------------------------------------------
# Eq. (6): the EWMA queue metric
# ----------------------------------------------------------------------
def ewma_queue_metric(previous: float, current_queue_length: float, zeta: float) -> float:
    """One EWMA step of the queue metric (Eq. (6)).

    ``Q_i(t) = zeta * Q_i(t-1) + (1 - zeta) * q_i(t)`` -- ``zeta`` close to 1
    makes the metric slow and smooth, ``zeta`` close to 0 makes it track the
    instantaneous queue length.
    """
    if not 0.0 <= zeta <= 1.0:
        raise ValueError("zeta must lie in [0, 1]")
    if current_queue_length < 0 or previous < 0:
        raise ValueError("queue lengths cannot be negative")
    return zeta * previous + (1.0 - zeta) * current_queue_length
