"""GT-TSCH: the paper's game-theoretic distributed TSCH scheduling function.

Sub-modules map one-to-one onto the paper's sections:

* :mod:`repro.core.config` -- all GT-TSCH parameters in one dataclass.
* :mod:`repro.core.channel_allocation` -- the interference-avoiding channel
  allocation process (Section III, Algorithm 1).
* :mod:`repro.core.slotframe_builder` -- the slotframe creation rules
  (Section IV: broadcast / unicast-6P / unicast-data / shared / sleep).
* :mod:`repro.core.cell_allocation` -- the Unicast-Data cell placement rules
  (Section V: Tx > Rx, no consecutive Rx, fair child interleaving).
* :mod:`repro.core.load_balancing` -- the load-balancing algorithm and the
  EWMA queue metric (Section VI, Eqs. (1) and (6)).
* :mod:`repro.core.game` -- the non-cooperative game: utility, cost and
  payoff functions and the closed-form optimum (Section VII, Eqs. (2)-(15)).
* :mod:`repro.core.nash` -- numeric verification of the Nash equilibrium
  existence/uniqueness conditions (Theorems 1-2) and best-response dynamics.
* :mod:`repro.core.scheduler` -- the scheduling function tying everything to
  the simulated protocol stack.
"""

from repro.core.cell_allocation import CellAllocationError, UnicastCellAllocator
from repro.core.channel_allocation import ChannelAllocator, allocate_channels_in_tree
from repro.core.config import GtTschConfig
from repro.core.game import (
    GameWeights,
    PlayerState,
    ewma_queue_metric,
    link_cost,
    optimal_tx_cells,
    payoff,
    queue_cost,
    unconstrained_optimum,
    utility,
)
from repro.core.load_balancing import QueueMetric, compute_minimum_tx_cells
from repro.core.nash import (
    best_response,
    best_response_dynamics,
    is_nash_equilibrium,
    verify_concavity,
    verify_diagonal_strict_concavity,
)
from repro.core.scheduler import GtTschScheduler
from repro.core.slotframe_builder import GtSlotframeBuilder, broadcast_offsets, shared_offsets

__all__ = [
    "GtTschConfig",
    "GameWeights",
    "PlayerState",
    "utility",
    "link_cost",
    "queue_cost",
    "payoff",
    "unconstrained_optimum",
    "optimal_tx_cells",
    "ewma_queue_metric",
    "best_response",
    "best_response_dynamics",
    "is_nash_equilibrium",
    "verify_concavity",
    "verify_diagonal_strict_concavity",
    "ChannelAllocator",
    "allocate_channels_in_tree",
    "GtSlotframeBuilder",
    "broadcast_offsets",
    "shared_offsets",
    "UnicastCellAllocator",
    "CellAllocationError",
    "QueueMetric",
    "compute_minimum_tx_cells",
    "GtTschScheduler",
]
