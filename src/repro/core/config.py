"""GT-TSCH configuration.

All tunables of the scheduling function live in :class:`GtTschConfig` so that
experiments can sweep them (the slotframe-length sweep of Fig. 10, the payoff
weight ablation) without touching scheduler code.  Defaults follow the
paper's experimental configuration (Table II and the worked examples of
Sections IV-V) wherever the paper states a value, and are documented where it
does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.game import GameWeights


@dataclass
class GtTschConfig:
    """Parameters of the GT-TSCH scheduling function."""

    #: Slotframe size ``m`` (Table II uses 32 timeslots).
    slotframe_length: int = 32
    #: Number of broadcast timeslots ``k`` distributed uniformly over the
    #: slotframe (Section IV rule 1).  The paper sets m and k "based on the
    #: numbers of roots and IoT nodes"; 4 broadcast slots per 32-slot frame
    #: (one every 8 slots = every 120 ms) keeps the DODAG reactive while
    #: costing 12.5 % of the frame.
    num_broadcast_cells: int = 4
    #: Unicast-6P timeslots allocated per neighbor pair (Section IV rule 2:
    #: "two Unicast-6P timeslots ... when the size of the slotframe is 32").
    sixp_cells_per_neighbor: int = 2
    #: Number of frequency channel offsets available (the 8-entry hopping
    #: sequence of Table II).
    num_channels: int = 8
    #: Channel offset reserved for broadcast control traffic (``f_bcast``).
    broadcast_channel_offset: int = 0
    #: Number of shared timeslots between a parent and its children
    #: (Section IV rule 4: "half of the maximum number of children", each
    #: shared timeslot serving two children).
    num_shared_cells: int = 0  # 0 = derive from max_children (see __post_init__)
    #: Payoff weights (alpha, beta, gamma) of Eq. (8).
    weights: GameWeights = field(default_factory=GameWeights)
    #: EWMA smoothing factor ``zeta`` of the queue metric (Eq. (6)).
    queue_ewma_zeta: float = 0.5
    #: Maximum queue length ``QMax`` used in the queue cost (matches the MAC
    #: queue capacity of the node configuration).
    q_max: int = 8
    #: Period of the load-balancing / schedule-update algorithm (Section VI
    #: monitors the node's load "periodically"; 4 s reacts within a couple of
    #: slotframes while keeping 6P overhead negligible).
    load_balance_period_s: float = 4.0
    #: Number of Unicast-Data Tx cells requested as soon as a parent is
    #: acquired, before any load information exists (bootstrap allocation).
    initial_tx_cells: int = 1
    #: Extra Tx cells tolerated above the requirement before a 6P DELETE is
    #: issued to reclaim energy (hysteresis against allocation flapping).
    overprovision_slack: int = 2
    #: Safety margin (cells) kept free at the parent when advertising l_rx.
    parent_budget_margin: int = 1

    def __post_init__(self) -> None:
        if self.slotframe_length < 4:
            raise ValueError("slotframe_length must be at least 4")
        if not 1 <= self.num_broadcast_cells < self.slotframe_length:
            raise ValueError("num_broadcast_cells must be in [1, slotframe_length)")
        if self.num_channels < 3:
            raise ValueError(
                "GT-TSCH needs at least 3 channels (broadcast, parent-facing, child-facing)"
            )
        if not 0 <= self.broadcast_channel_offset < self.num_channels:
            raise ValueError("broadcast_channel_offset out of range")
        if not 0.0 <= self.queue_ewma_zeta <= 1.0:
            raise ValueError("queue_ewma_zeta must lie in [0, 1]")
        if self.q_max <= 0:
            raise ValueError("q_max must be positive")
        if self.sixp_cells_per_neighbor < 1:
            raise ValueError("sixp_cells_per_neighbor must be at least 1")
        if self.num_shared_cells == 0:
            self.num_shared_cells = max(1, math.ceil(self.max_children / 2))

    @property
    def max_children(self) -> int:
        """Maximum children per node (Section III: ``n - 2 - 1`` channels).

        One channel is reserved for broadcast, one for the node's own parent
        link and one for the node's child-facing link; what remains bounds the
        number of children whose child-facing channels can stay unique on
        three-hop paths.
        """
        return max(1, self.num_channels - 3)

    @property
    def broadcast_spacing(self) -> int:
        """Slots between consecutive broadcast timeslots (``floor(m/k)``)."""
        return max(1, self.slotframe_length // self.num_broadcast_cells)
