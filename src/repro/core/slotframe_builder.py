"""GT-TSCH slotframe creation (Section IV).

GT-TSCH uses a single slotframe per node with five timeslot types, listed in
descending priority: Broadcast, Unicast-6P, Unicast-Data, Shared, Sleep.
This module computes the deterministic parts of the layout --

* broadcast timeslots uniformly distributed over the slotframe
  (offsets ``{x | x % floor(m/k) == 0}``, Section IV rule 1);
* the shared timeslots reserved at fixed offsets for parent/children
  contention traffic (Section IV rule 4);

-- and installs them into a node's TSCH engine.  Unicast-6P and Unicast-Data
cells are *negotiated* (6P ADD/DELETE), so their placement is handled by
:mod:`repro.core.cell_allocation`; the builder only reports which offsets
remain available for them.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import GtTschConfig
from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.mac.slotframe import Slotframe


def broadcast_offsets(slotframe_length: int, num_broadcast_cells: int) -> list[int]:
    """Slot offsets of the broadcast timeslots (Section IV rule 1).

    ``j = {x | x in N0, x < m, x % floor(m/k) == 0}`` -- e.g. ``m=20, k=5``
    gives ``{0, 4, 8, 12, 16}``, the example worked in the paper.  When ``m``
    is not a multiple of ``k`` the formula naturally yields a few more
    offsets than ``k``; the first ``k`` are used so exactly ``k`` broadcast
    timeslots exist.
    """
    if num_broadcast_cells < 1 or num_broadcast_cells >= slotframe_length:
        raise ValueError("num_broadcast_cells must be in [1, slotframe_length)")
    spacing = max(1, slotframe_length // num_broadcast_cells)
    offsets = [offset for offset in range(slotframe_length) if offset % spacing == 0]
    return offsets[:num_broadcast_cells]


def shared_offsets(
    slotframe_length: int,
    num_broadcast_cells: int,
    num_shared_cells: int,
    group_owner: int = 0,
) -> list[int]:
    """Slot offsets of the shared timeslots (Section IV rule 4).

    Shared timeslots are "assigned to a node and its children": every
    parent-child group has its own set.  Both ends derive the offsets from the
    *parent's* node id (``group_owner``), so no signalling is needed, and
    different groups land on different offsets, so a node's shared cells
    towards its parent do not systematically collide with the shared cells it
    keeps open for its own children.  Within a group the offsets are spread
    over the non-broadcast slots of the slotframe.
    """
    reserved = set(broadcast_offsets(slotframe_length, num_broadcast_cells))
    candidates = [o for o in range(slotframe_length) if o not in reserved]
    if len(candidates) < num_shared_cells:
        raise ValueError("slotframe too small for the requested number of shared cells")
    # Deterministic per-group rotation (Knuth multiplicative hash) plus an
    # even stride, so the group's shared cells are spread over the slotframe.
    rotation = ((group_owner + 1) * 2654435761 & 0xFFFFFFFF) % len(candidates)
    stride = max(1, len(candidates) // num_shared_cells)
    rotated = candidates[rotation:] + candidates[:rotation]
    chosen: list[int] = []
    for position in range(0, len(rotated), stride):
        chosen.append(rotated[position])
        if len(chosen) == num_shared_cells:
            break
    for candidate in rotated:
        if len(chosen) == num_shared_cells:
            break
        if candidate not in chosen:
            chosen.append(candidate)
    return sorted(chosen)


class GtSlotframeBuilder:
    """Installs the deterministic part of a node's GT-TSCH slotframe."""

    #: Slotframe handle GT-TSCH uses (it runs a single slotframe).
    SLOTFRAME_HANDLE = 0

    def __init__(self, config: GtTschConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def build(self, tsch_engine) -> Slotframe:
        """Create the slotframe and install the broadcast timeslots.

        Every other offset starts in the Sleep state (no cell installed);
        shared cells are added once the node knows the channel of its
        parent-facing link (:meth:`install_shared_cells_towards_parent`) or
        as soon as it can have children (:meth:`install_shared_cells_for_children`).
        """
        slotframe = tsch_engine.add_slotframe(self.SLOTFRAME_HANDLE, self.config.slotframe_length)
        for offset in broadcast_offsets(
            self.config.slotframe_length, self.config.num_broadcast_cells
        ):
            # Broadcast timeslots carry *only* broadcast control frames
            # (EB/DIO); unicast traffic stays on shared and dedicated cells so
            # the control plane cannot be crowded out by data (no SHARED flag,
            # hence no unicast fallback on these cells).
            slotframe.add_cell(
                Cell(
                    slot_offset=offset,
                    channel_offset=self.config.broadcast_channel_offset,
                    options=CellOption.TX | CellOption.RX | CellOption.BROADCAST,
                    neighbor=None,
                    purpose=CellPurpose.BROADCAST,
                    label="gt-broadcast",
                )
            )
        return slotframe

    # ------------------------------------------------------------------
    def shared_cell_offsets(self, group_owner: int) -> list[int]:
        """Shared-cell offsets of the group owned by node ``group_owner``."""
        return shared_offsets(
            self.config.slotframe_length,
            self.config.num_broadcast_cells,
            self.config.num_shared_cells,
            group_owner=group_owner,
        )

    def install_shared_cells_towards_parent(
        self, tsch_engine, parent: int, parent_channel_offset: int
    ) -> list[Cell]:
        """Child side: shared Tx/Rx cells of the parent's group.

        The cells are transmit-capable towards the parent (bootstrap 6P
        requests, overflow data) and receive-capable so that, when the child
        has nothing to send, it hears the parent's 6P responses/requests sent
        in the same group -- Section IV describes shared timeslots as carrying
        "unicast transmission of data/6P packets" in both directions.
        """
        slotframe = tsch_engine.get_slotframe(self.SLOTFRAME_HANDLE)
        cells = []
        for offset in self.shared_cell_offsets(parent):
            cells.append(
                slotframe.add_cell(
                    Cell(
                        slot_offset=offset,
                        channel_offset=parent_channel_offset,
                        options=CellOption.TX | CellOption.RX | CellOption.SHARED,
                        neighbor=parent,
                        purpose=CellPurpose.SHARED,
                        label="gt-shared-up",
                    )
                )
            )
        return cells

    def install_shared_cells_for_children(
        self, tsch_engine, owner: int, child_channel_offset: int
    ) -> list[Cell]:
        """Parent side: shared RX cells on the node's child-facing channel."""
        slotframe = tsch_engine.get_slotframe(self.SLOTFRAME_HANDLE)
        cells = []
        for offset in self.shared_cell_offsets(owner):
            cells.append(
                slotframe.add_cell(
                    Cell(
                        slot_offset=offset,
                        channel_offset=child_channel_offset,
                        options=CellOption.RX | CellOption.SHARED | CellOption.ALWAYS_ON,
                        neighbor=None,
                        purpose=CellPurpose.SHARED,
                        label="gt-shared-down",
                    )
                )
            )
        return cells

    def remove_shared_cells_towards_parent(self, tsch_engine, parent: int) -> int:
        """Remove the child-side shared cells after a parent switch."""
        slotframe = tsch_engine.get_slotframe(self.SLOTFRAME_HANDLE)
        removed = 0
        for cell in list(slotframe.cells_with_neighbor(parent)):
            if cell.purpose is CellPurpose.SHARED:
                slotframe.remove_cell(cell)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    def reserved_offsets(self, group_owners: Optional[list[int]] = None) -> set[int]:
        """Offsets that can never hold negotiated (6P / data) cells.

        ``group_owners`` lists the shared-cell groups this node participates
        in (its own id as a parent, plus its parent's id as a child); the
        broadcast timeslots are always reserved.
        """
        reserved = set(
            broadcast_offsets(self.config.slotframe_length, self.config.num_broadcast_cells)
        )
        for owner in group_owners or []:
            reserved.update(self.shared_cell_offsets(owner))
        return reserved

    def negotiable_offsets(self, group_owners: Optional[list[int]] = None) -> list[int]:
        """Offsets available for Unicast-6P and Unicast-Data cells."""
        reserved = self.reserved_offsets(group_owners)
        return [
            offset
            for offset in range(self.config.slotframe_length)
            if offset not in reserved
        ]
