"""Numeric verification of the game's Nash equilibrium properties.

The paper proves (Theorems 1-2) that the cell-allocation game admits a unique
Nash equilibrium: the strategy sets are compact and convex, the payoffs are
strictly concave in the player's own strategy, and the vector of payoffs is
diagonally strictly concave in the sense of Rosen (1965).  Because each
player's payoff depends only on its own strategy (the coupling between
players happens through the *constraint* ``l^rx_{p_i}``, which the parent
advertises, not through the payoff itself), the equilibrium coincides with
every player's individually optimal strategy -- Eq. (15).

This module provides the numeric counterparts used in tests and in the
analysis examples:

* :func:`verify_concavity` -- samples the second derivative over the strategy
  set (Theorem 1, Eq. (10));
* :func:`verify_diagonal_strict_concavity` -- builds the Jacobian of the
  pseudo-gradient and checks ``x^T (J + J^T) x < 0`` for random non-zero
  ``x`` (Theorem 2, Eq. (12));
* :func:`best_response_dynamics` -- iterates best responses and reports the
  fixed point, demonstrating convergence to the closed-form solution;
* :func:`is_nash_equilibrium` -- brute-force check that no player can gain by
  a unilateral deviation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro.core.game import (
    GameWeights,
    PlayerState,
    optimal_tx_cells,
    payoff,
    payoff_second_derivative,
)
from repro.sim.accel import numpy_or_none

# numpy is a hard dependency of the *numeric verification* functions below
# (they exist to sample derivatives and quadratic forms), not of the
# simulator: the shared gate keeps detection in one place, and
# ``ignore_disable=True`` means the REPRO_NO_NUMPY escape hatch -- which
# forces the kernel's pure-Python fallbacks -- does not break analyses that
# have no fallback to force.
np = numpy_or_none(ignore_disable=True)


def _require_numpy() -> None:
    if np is None:
        raise ImportError(
            "repro.core.nash numeric verification requires numpy; "
            "install it to run the equilibrium analyses"
        )



@dataclass
class BestResponseResult:
    """Outcome of :func:`best_response_dynamics`."""

    profile: list[float]
    iterations: int
    converged: bool


def best_response(state: PlayerState, weights: Optional[GameWeights] = None) -> float:
    """A player's best response (continuous relaxation of Eq. (15))."""
    return optimal_tx_cells(state, weights, integral=False)


def best_response_dynamics(
    players: Sequence[PlayerState],
    weights: Optional[GameWeights] = None,
    initial_profile: Optional[Sequence[float]] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> BestResponseResult:
    """Iterate simultaneous best responses until the profile stops changing.

    For this game the dynamics converge in a single round (payoffs are
    decoupled), but the function is written generically so the test suite can
    assert that property rather than assume it.
    """
    weights = weights or GameWeights()
    profile = [
        float(p.l_tx_min) if initial_profile is None else float(initial_profile[i])
        for i, p in enumerate(players)
    ]
    for iteration in range(1, max_iterations + 1):
        updated = [best_response(player, weights) for player in players]
        delta = max(abs(a - b) for a, b in zip(profile, updated)) if players else 0.0
        profile = updated
        if delta <= tolerance:
            return BestResponseResult(profile=profile, iterations=iteration, converged=True)
    return BestResponseResult(profile=profile, iterations=max_iterations, converged=False)


def verify_concavity(
    state: PlayerState,
    weights: Optional[GameWeights] = None,
    samples: int = 32,
) -> bool:
    """Check Eq. (10): the second derivative is negative across the strategy set."""
    _require_numpy()
    weights = weights or GameWeights()
    lower = state.l_tx_min
    upper = max(state.l_rx_parent, lower + 1.0)
    points = np.linspace(lower, upper, samples)
    return all(payoff_second_derivative(float(x), state, weights) < 0.0 for x in points)


def pseudo_gradient_jacobian(
    players: Sequence[PlayerState],
    profile: Sequence[float],
    weights: Optional[GameWeights] = None,
) -> np.ndarray:
    """Jacobian of the pseudo-gradient ``∇v(s)`` (Eq. (12)).

    Player ``i``'s payoff depends only on ``s_i``, so the Jacobian is diagonal
    with entries ``∂²v_i/∂s_i²``; the off-diagonal terms are exactly zero.
    """
    _require_numpy()
    weights = weights or GameWeights()
    n = len(players)
    jacobian = np.zeros((n, n))
    for i, (player, s_i) in enumerate(zip(players, profile)):
        jacobian[i, i] = payoff_second_derivative(float(s_i), player, weights)
    return jacobian


def verify_diagonal_strict_concavity(
    players: Sequence[PlayerState],
    weights: Optional[GameWeights] = None,
    profiles: Optional[Sequence[Sequence[float]]] = None,
    num_random_vectors: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Rosen's condition: ``x^T (J + J^T) x < 0`` for all non-zero ``x``.

    Checked at the strategy-set corners plus (optionally) caller-provided
    profiles, with random probe vectors.  Because the Jacobian is diagonal
    with strictly negative entries, the quadratic form is negative definite;
    the numeric check documents that rather than assuming it.
    """
    _require_numpy()
    weights = weights or GameWeights()
    rng = rng or np.random.default_rng(7)
    if not players:
        return True

    candidate_profiles: list[list[float]] = [
        [p.l_tx_min for p in players],
        [max(p.l_rx_parent, p.l_tx_min) for p in players],
        [(p.l_tx_min + max(p.l_rx_parent, p.l_tx_min)) / 2.0 for p in players],
    ]
    if profiles is not None:
        candidate_profiles.extend([list(map(float, prof)) for prof in profiles])

    for profile in candidate_profiles:
        jacobian = pseudo_gradient_jacobian(players, profile, weights)
        symmetric = jacobian + jacobian.T
        for _ in range(num_random_vectors):
            x = rng.normal(size=len(players))
            norm = np.linalg.norm(x)
            if norm == 0:  # pragma: no cover - probability zero
                continue
            x = x / norm
            if float(x @ symmetric @ x) >= 0.0:
                return False
    return True


def is_nash_equilibrium(
    profile: Sequence[float],
    players: Sequence[PlayerState],
    weights: Optional[GameWeights] = None,
    grid_points: int = 64,
    tolerance: float = 1e-7,
) -> bool:
    """Brute-force Nash check: no player gains by a unilateral deviation.

    Each player's strategy set is sampled on a dense grid (plus the bounds);
    the check passes when no sampled deviation improves the player's payoff
    by more than ``tolerance``.
    """
    _require_numpy()
    weights = weights or GameWeights()
    for player, strategy in zip(players, profile):
        lower = player.l_tx_min
        upper = max(player.l_rx_parent, lower)
        current = payoff(float(strategy), player, weights)
        if upper == lower:
            candidates = [lower]
        else:
            candidates = list(np.linspace(lower, upper, grid_points))
        for deviation in candidates:
            if payoff(float(deviation), player, weights) > current + tolerance:
                return False
    return True


def equilibrium_profile(
    players: Sequence[PlayerState],
    weights: Optional[GameWeights] = None,
    integral: bool = False,
) -> list[float]:
    """The unique Nash equilibrium: every player plays Eq. (15)."""
    weights = weights or GameWeights()
    return [optimal_tx_cells(player, weights, integral=integral) for player in players]
