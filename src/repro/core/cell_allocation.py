"""Unicast-Data cell placement (Section V of the paper).

The parent owns the placement of its children's Tx cells (which are the
parent's Rx cells).  Three rules govern the choice of slot offsets:

1. **Tx > Rx** -- a non-root node keeps more Tx cells (towards its parent)
   than Rx cells (from its children) in every slotframe, so its outgoing
   capacity always exceeds its incoming rate and the queue cannot build up
   structurally.
2. **No consecutive Rx** -- at least one Tx timeslot sits between any two
   consecutive Rx timeslots of the slotframe, so received packets can be
   forwarded before the next one arrives (the Fig. 5 example: without this,
   node B's queue overflows before its first Tx opportunity).
3. **Fair interleaving between children** -- a child is not given two
   consecutive Rx timeslots while other children are waiting, which bounds
   the per-hop queueing delay of every child's traffic.

:class:`UnicastCellAllocator` implements the parent-side selection of slot
offsets subject to these rules, given a view of the parent's current
schedule.  It is pure bookkeeping over integers (no simulator state) so the
rules can be property-tested directly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional


class CellAllocationError(RuntimeError):
    """Raised when a request cannot be satisfied at all (no free offsets)."""


@dataclass
class ScheduleView:
    """The slices of a node's schedule the allocation rules need to see."""

    slotframe_length: int
    #: Offsets that can never hold negotiated cells (broadcast + shared).
    reserved_offsets: set[int] = field(default_factory=set)
    #: Offsets of this node's Tx data cells (towards its parent).
    tx_offsets: set[int] = field(default_factory=set)
    #: Offsets of this node's Rx data cells, keyed by child.
    rx_offsets_by_child: dict[int, set[int]] = field(default_factory=dict)
    #: Whether the node is a DODAG root (rule 1 does not constrain roots,
    #: which have no Tx cells at all).
    is_root: bool = False

    def all_rx_offsets(self) -> set[int]:
        merged: set[int] = set()
        for offsets in self.rx_offsets_by_child.values():
            merged |= offsets
        return merged

    def occupied_offsets(self) -> set[int]:
        return self.reserved_offsets | self.tx_offsets | self.all_rx_offsets()

    def free_offsets(self) -> list[int]:
        occupied = self.occupied_offsets()
        return [o for o in range(self.slotframe_length) if o not in occupied]

    def tx_count(self) -> int:
        return len(self.tx_offsets)

    def rx_count(self) -> int:
        return len(self.all_rx_offsets())


class UnicastCellAllocator:
    """Parent-side selection of Rx slot offsets for a child's ADD request."""

    def __init__(self, view: ScheduleView) -> None:
        self.view = view

    # ------------------------------------------------------------------
    # capacity questions
    # ------------------------------------------------------------------
    def rx_budget(self) -> int:
        """How many more Rx cells this node may accept in total (rule 1).

        Roots are only limited by free offsets; other nodes must keep
        ``tx > rx``, i.e. they can accept at most ``tx - rx - 1`` additional
        Rx cells (and never more than the free offsets available).
        """
        free = len(self.view.free_offsets())
        if self.view.is_root:
            return free
        margin = self.view.tx_count() - self.view.rx_count() - 1
        return max(0, min(free, margin))

    # ------------------------------------------------------------------
    # offset selection
    # ------------------------------------------------------------------
    def pick_rx_offsets(
        self, child: int, count: int, allowed: Optional[set[int]] = None
    ) -> list[int]:
        """Choose up to ``count`` offsets for new Rx cells from ``child``.

        The number actually granted is bounded by :meth:`rx_budget`.  Offsets
        are chosen greedily to honour rules 2 and 3: candidates adjacent to
        existing Rx cells (cyclically) are avoided while alternatives exist,
        and candidates adjacent to the same child's existing cells are
        penalised so one child's receptions are spread across the slotframe.

        ``allowed`` restricts the choice to offsets the *requesting child*
        declared free in its 6P CellList (RFC 8480 semantics), which prevents
        granting the child a Tx opportunity in a timeslot where it must
        already receive from its own children -- exactly interference
        problem 1 of Section III.

        Raises :class:`CellAllocationError` when no offset is free at all and
        at least one cell was requested.
        """
        if count <= 0:
            return []
        free = self.view.free_offsets()
        if allowed is not None:
            free = [offset for offset in free if offset in allowed]
        if not free:
            raise CellAllocationError("no free slot offsets left in the slotframe")
        budget = self.rx_budget()
        granted_target = min(count, budget)
        if granted_target == 0:
            return []

        chosen: list[int] = []
        child_existing = set(self.view.rx_offsets_by_child.get(child, set()))
        all_rx = self.view.all_rx_offsets()
        for _ in range(granted_target):
            candidates = [o for o in free if o not in chosen]
            if not candidates:
                break
            best = min(
                candidates,
                key=lambda offset: self._offset_penalty(
                    offset, all_rx | set(chosen), child_existing | set(chosen)
                ),
            )
            chosen.append(best)
        return sorted(chosen)

    def _offset_penalty(
        self, offset: int, rx_offsets: set[int], same_child_offsets: set[int]
    ) -> tuple:
        """Smaller is better.  Encodes rules 2 and 3 as a lexicographic score."""
        length = self.view.slotframe_length
        previous = (offset - 1) % length
        nxt = (offset + 1) % length
        adjacent_to_rx = int(previous in rx_offsets) + int(nxt in rx_offsets)
        # Distance to the closest reception of the same child (larger = better
        # interleaving), negated so that min() prefers the farthest.
        if same_child_offsets:
            distance = min(
                min((offset - other) % length, (other - offset) % length)
                for other in same_child_offsets
            )
        else:
            distance = length
        # Prefer offsets right after one of this node's Tx cells so a received
        # packet waits as little as possible before it can be forwarded.
        follows_tx = int(previous in self.view.tx_offsets)
        return (adjacent_to_rx, -distance, -follows_tx, offset)

    # ------------------------------------------------------------------
    def pick_tx_offsets_for_root_child(self, count: int) -> list[int]:
        """Convenience for tests: offsets a root grants, ignoring rule 1."""
        return self.pick_rx_offsets(child=-1, count=count)

    def pick_release_offsets(self, child: int, count: int) -> list[int]:
        """Choose which of a child's Rx cells to delete (6P DELETE).

        Releases the most recently granted offsets first (highest offsets),
        which tends to preserve the interleaving quality of the remaining
        cells.
        """
        existing = sorted(self.view.rx_offsets_by_child.get(child, set()))
        if count <= 0 or not existing:
            return []
        return existing[-count:]


def validate_no_consecutive_rx(
    slotframe_length: int, tx_offsets: Sequence[int], rx_offsets: Sequence[int]
) -> list[str]:
    """Check rule 2 over a complete schedule; returns violations (empty = ok).

    Two Rx cells are "consecutive" when no Tx cell sits between them in the
    cyclic slot order.  Only meaningful for nodes that have at least one Tx
    cell (a root has none and forwards nothing).
    """
    if not rx_offsets or not tx_offsets:
        return []
    violations: list[str] = []
    marks = {}
    for offset in tx_offsets:
        marks[offset % slotframe_length] = "tx"
    for offset in rx_offsets:
        marks[offset % slotframe_length] = marks.get(offset % slotframe_length, "rx")
    ordered = sorted(marks)
    previous_kind: Optional[str] = None
    previous_offset: Optional[int] = None
    # Walk twice around the ring so the wrap-around pair is also checked.
    for offset in ordered + [o + slotframe_length for o in ordered]:
        kind = marks[offset % slotframe_length]
        if kind == "rx" and previous_kind == "rx":
            violations.append(
                f"rx cells at offsets {previous_offset % slotframe_length} and "
                f"{offset % slotframe_length} have no tx cell between them"
            )
        previous_kind = kind
        previous_offset = offset
    # De-duplicate the doubled walk.
    return sorted(set(violations))
