"""6P message model (RFC 8480 subset + the paper's ASK-CHANNEL command).

Real 6P messages are byte-encoded IEs inside 802.15.4 frames; here they are
structured payloads carried by :class:`repro.net.packet.Packet` objects with
``ptype == PacketType.SIXP``.  The fields mirror the message formats shown in
Fig. 4 of the paper: version, type (request/response), command code, sequence
number, scheduling function identifier, and -- for ASK-CHANNEL responses --
the channel offset granted by the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.net.packet import Packet, PacketType


#: Command code the paper assigns to ASK-CHANNEL (Fig. 4).
ASK_CHANNEL_COMMAND_CODE = 0x0A

#: 6P version used by RFC 8480.
SIXP_VERSION = 0


class SixPCommand(Enum):
    """6P command codes used by this reproduction."""

    ADD = 0x01
    DELETE = 0x02
    #: Paper-specific extension: ask the parent for the child-facing channel.
    ASK_CHANNEL = ASK_CHANNEL_COMMAND_CODE


class SixPMessageType(Enum):
    REQUEST = "request"
    RESPONSE = "response"


class SixPReturnCode(Enum):
    """Response codes (RFC 8480 Section 3.2.4 subset)."""

    SUCCESS = "RC_SUCCESS"
    ERR_SEQNUM = "RC_ERR_SEQNUM"
    ERR_CELLLIST = "RC_ERR_CELLLIST"
    ERR_BUSY = "RC_ERR_BUSY"
    ERR_NORES = "RC_ERR_NORES"
    ERR = "RC_ERR"


@dataclass(frozen=True)
class CellDescriptor:
    """A (slot offset, channel offset) pair exchanged inside ADD/DELETE messages."""

    slot_offset: int
    channel_offset: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.slot_offset, self.channel_offset)


@dataclass
class SixPMessage:
    """A decoded 6P message."""

    message_type: SixPMessageType
    command: SixPCommand
    seqnum: int
    sf_id: int = 0
    #: Number of cells requested (ADD/DELETE requests).
    num_cells: int = 0
    #: Candidate or granted cells.
    cell_list: list[CellDescriptor] = field(default_factory=list)
    #: Response code (responses only).
    return_code: Optional[SixPReturnCode] = None
    #: Channel offset granted by an ASK-CHANNEL response.
    channel_offset: Optional[int] = None
    #: Additional scheduler-specific fields.
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        """Serialise to the packet payload dictionary."""
        payload: dict[str, Any] = {
            "version": SIXP_VERSION,
            "type": self.message_type.value,
            "command": self.command.value,
            "seqnum": self.seqnum,
            "sf_id": self.sf_id,
            "num_cells": self.num_cells,
            "cell_list": [cell.as_tuple() for cell in self.cell_list],
            "metadata": dict(self.metadata),
        }
        if self.return_code is not None:
            payload["return_code"] = self.return_code.value
        if self.channel_offset is not None:
            payload["channel_offset"] = self.channel_offset
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "SixPMessage":
        """Parse a packet payload dictionary back into a message."""
        return cls(
            message_type=SixPMessageType(payload["type"]),
            command=SixPCommand(payload["command"]),
            seqnum=payload["seqnum"],
            sf_id=payload.get("sf_id", 0),
            num_cells=payload.get("num_cells", 0),
            cell_list=[CellDescriptor(*pair) for pair in payload.get("cell_list", [])],
            return_code=(
                SixPReturnCode(payload["return_code"]) if "return_code" in payload else None
            ),
            channel_offset=payload.get("channel_offset"),
            metadata=dict(payload.get("metadata", {})),
        )


def make_sixp_packet(sender: int, receiver: int, message: SixPMessage, now: float = 0.0) -> Packet:
    """Wrap a 6P message into a unicast link-layer packet."""
    return Packet(
        ptype=PacketType.SIXP,
        source=sender,
        destination=receiver,
        link_source=sender,
        link_destination=receiver,
        payload=message.to_payload(),
        created_at=now,
        size_bytes=40,
    )
