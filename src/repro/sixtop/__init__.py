"""6top (6P) sublayer -- RFC 8480 transactions plus the ASK-CHANNEL extension.

6P is the protocol two TSCH neighbours use to negotiate cells.  GT-TSCH uses
three commands:

* ``ADD`` / ``DELETE`` -- the standard RFC 8480 commands, used by the
  load-balancing algorithm to grow or shrink the number of Unicast-Data cells;
* ``ASK_CHANNEL`` (code ``0x0A``) -- the command the paper introduces (Fig. 4)
  with which a node asks its parent which channel it should use towards its
  own children.

:mod:`repro.sixtop.messages` defines the message model, and
:mod:`repro.sixtop.layer` implements the per-node transaction state machine
(sequence numbers, matching of responses to requests, timeouts).
"""

from repro.sixtop.layer import SixPConfig, SixPLayer, SixPTransaction
from repro.sixtop.messages import (
    ASK_CHANNEL_COMMAND_CODE,
    CellDescriptor,
    SixPCommand,
    SixPMessage,
    SixPMessageType,
    SixPReturnCode,
)

__all__ = [
    "SixPCommand",
    "SixPMessageType",
    "SixPReturnCode",
    "SixPMessage",
    "CellDescriptor",
    "ASK_CHANNEL_COMMAND_CODE",
    "SixPConfig",
    "SixPLayer",
    "SixPTransaction",
]
