"""Per-node 6P transaction layer.

RFC 8480 defines 6P as a sequence of two-step transactions between
neighbours: the initiator sends a request, the responder answers with a
response carrying a return code and (for ADD/DELETE) the list of cells it
actually granted.  Each direction of each neighbour pair maintains a sequence
number; a transaction that receives no response within the timeout is aborted
and reported to the scheduling function so it can retry.

The layer is transport-agnostic: it hands fully-formed packets to a send
callback (the node enqueues them on the MAC) and is fed received 6P packets by
the node.  Which cells to grant is the scheduling function's decision -- the
layer only runs the transaction bookkeeping.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Optional

from repro.net.packet import Packet
from repro.sim.events import Event, EventQueue
from repro.sixtop.messages import (
    SixPCommand,
    SixPMessage,
    SixPMessageType,
    SixPReturnCode,
    make_sixp_packet,
)

#: Callback signature a scheduling function registers to answer requests:
#: ``handler(peer, message) -> (return_code, response_fields)`` where
#: ``response_fields`` is a dict understood by :class:`SixPMessage`.
RequestHandler = Callable[[int, SixPMessage], tuple[SixPReturnCode, dict[str, Any]]]

#: Callback invoked when a transaction concludes:
#: ``callback(peer, request, response_or_None)`` (``None`` = timeout).
ResponseCallback = Callable[[int, SixPMessage, Optional[SixPMessage]], None]


@dataclass
class SixPConfig:
    """6P layer configuration."""

    #: Scheduling Function Identifier advertised in messages (informational).
    sf_id: int = 1
    #: Seconds to wait for a response before aborting the transaction.
    timeout_s: float = 10.0
    #: Whether a timed-out request may be retried automatically.
    max_retries: int = 1


@dataclass
class SixPTransaction:
    """State of one in-flight request."""

    peer: int
    request: SixPMessage
    callback: Optional[ResponseCallback]
    retries_left: int
    timeout_event: Optional[Event] = None


class SixPLayer:
    """6P transaction state machine for one node."""

    def __init__(
        self,
        node_id: int,
        config: SixPConfig,
        queue: EventQueue,
        send_packet: Callable[[Packet], None],
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.queue = queue
        self._send_packet = send_packet
        #: Next sequence number to use towards each peer.
        self._seqnum_out: dict[int, int] = {}
        #: Last sequence number seen from each peer (duplicate detection).
        self._seqnum_in: dict[int, int] = {}
        #: One in-flight transaction per peer (RFC 8480 allows only one).
        self._pending: dict[int, SixPTransaction] = {}
        #: Last response sent to each peer, replayed when the peer retransmits
        #: a request whose response was lost (RFC 8480 duplicate handling) --
        #: without this, a lost response desynchronises the two schedules.
        self._last_response: dict[int, SixPMessage] = {}
        #: Handler the scheduling function registers for incoming requests.
        self.request_handler: Optional[RequestHandler] = None
        #: Diagnostics.
        self.requests_sent = 0
        self.responses_sent = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # initiator side
    # ------------------------------------------------------------------
    def send_request(
        self,
        peer: int,
        command: SixPCommand,
        num_cells: int = 0,
        cell_list=None,
        metadata: Optional[dict[str, Any]] = None,
        callback: Optional[ResponseCallback] = None,
    ) -> bool:
        """Initiate a transaction towards ``peer``.

        Returns ``False`` when a transaction towards that peer is already in
        flight (the caller should retry later), ``True`` otherwise.
        """
        if peer in self._pending:
            return False
        seqnum = self._seqnum_out.get(peer, 0)
        self._seqnum_out[peer] = (seqnum + 1) % 256
        message = SixPMessage(
            message_type=SixPMessageType.REQUEST,
            command=command,
            seqnum=seqnum,
            sf_id=self.config.sf_id,
            num_cells=num_cells,
            cell_list=list(cell_list or []),
            metadata=dict(metadata or {}),
        )
        transaction = SixPTransaction(
            peer=peer,
            request=message,
            callback=callback,
            retries_left=self.config.max_retries,
        )
        self._pending[peer] = transaction
        self._transmit_request(transaction)
        return True

    def _transmit_request(self, transaction: SixPTransaction) -> None:
        packet = make_sixp_packet(
            self.node_id, transaction.peer, transaction.request, now=self.queue.now
        )
        self.requests_sent += 1
        self._send_packet(packet)
        transaction.timeout_event = self.queue.schedule_in(
            self.config.timeout_s, self._on_timeout, transaction.peer, label="6p-timeout"
        )

    def _on_timeout(self, peer: int) -> None:
        transaction = self._pending.get(peer)
        if transaction is None:
            return
        if transaction.retries_left > 0:
            transaction.retries_left -= 1
            self._transmit_request(transaction)
            return
        self.timeouts += 1
        del self._pending[peer]
        if transaction.callback is not None:
            transaction.callback(peer, transaction.request, None)

    def has_pending_transaction(self, peer: int) -> bool:
        return peer in self._pending

    # ------------------------------------------------------------------
    # packet reception (called by the node for every SIXP packet)
    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        message = SixPMessage.from_payload(packet.payload)
        peer = packet.link_source
        if message.message_type is SixPMessageType.REQUEST:
            self._handle_request(peer, message)
        else:
            self._handle_response(peer, message)

    def _handle_request(self, peer: int, message: SixPMessage) -> None:
        # Duplicate detection: a retransmitted request with an already-seen
        # sequence number means our response was lost -- replay the cached
        # response rather than re-applying the command (which would allocate
        # the same cells twice) or rejecting it (which would leave the peer's
        # schedule out of sync with the cells we already installed).
        last_seen = self._seqnum_in.get(peer)
        duplicate = last_seen is not None and last_seen == message.seqnum
        self._seqnum_in[peer] = message.seqnum

        if duplicate:
            cached = self._last_response.get(peer)
            if cached is not None and cached.seqnum == message.seqnum:
                packet = make_sixp_packet(self.node_id, peer, cached, now=self.queue.now)
                self.responses_sent += 1
                self._send_packet(packet)
                return
            return_code, fields = SixPReturnCode.ERR_SEQNUM, {}
        elif self.request_handler is None:
            return_code, fields = SixPReturnCode.ERR, {}
        else:
            return_code, fields = self.request_handler(peer, message)

        response = SixPMessage(
            message_type=SixPMessageType.RESPONSE,
            command=message.command,
            seqnum=message.seqnum,
            sf_id=self.config.sf_id,
            num_cells=fields.get("num_cells", 0),
            cell_list=list(fields.get("cell_list", [])),
            return_code=return_code,
            channel_offset=fields.get("channel_offset"),
            metadata=dict(fields.get("metadata", {})),
        )
        self._last_response[peer] = response
        packet = make_sixp_packet(self.node_id, peer, response, now=self.queue.now)
        self.responses_sent += 1
        self._send_packet(packet)

    def _handle_response(self, peer: int, message: SixPMessage) -> None:
        transaction = self._pending.get(peer)
        if transaction is None:
            return
        if transaction.request.seqnum != message.seqnum:
            # Stale response from an earlier (aborted) transaction.
            return
        if transaction.timeout_event is not None:
            transaction.timeout_event.cancel()
        del self._pending[peer]
        if transaction.callback is not None:
            transaction.callback(peer, transaction.request, message)
