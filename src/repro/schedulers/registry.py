"""The scheduler-plugin registry: one source of truth for scheduler names.

Before this registry existed, adding a scheduler meant touching four files:
the if/elif factory chain in ``Scenario._scheduler_factory``, the
``KNOWN_SCHEDULERS`` tuple of the CLI, the per-figure ``DEFAULT_SCHEDULERS``
line-ups of the runner, and the scheduler imports of the worker-pool
initialiser.  Now a scheduler registers itself once::

    from repro.schedulers.registry import register_scheduler

    @register_scheduler("MySF")
    def _build_my_sf(contiki):
        config = MySfConfig(slotframe_length=contiki.gt_slotframe_length)
        return lambda node_id, is_root: MySfScheduler(config)

and every consumer -- scenario construction, fault-injection rejoin
factories, CLI validation, figure defaults, cache fingerprints -- resolves
through :func:`resolve` / :func:`available`.

A **builder** maps the experiment-wide protocol configuration (duck-typed:
any object with the :class:`~repro.experiments.scenarios.ContikiConfig`
attributes the scheduler needs) to a per-node **factory**
``(node_id, is_root) -> SchedulingFunction``.  The factory is called once
per node (and again on fault-injected rejoins/arrivals), so builders that
want per-node fresh config objects should construct them inside the factory.

Import-cycle contract: this module (and the whole :mod:`repro.schedulers`
package) must stay importable without :mod:`repro.experiments` -- builders
see the Contiki configuration duck-typed, never by import.  Registration of
GT-TSCH (which lives in :mod:`repro.core.scheduler` and itself imports
:mod:`repro.schedulers.base`) defers its import to the builder body for the
same reason.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import SchedulingFunction

#: ``factory(node_id, is_root) -> SchedulingFunction`` -- called per node.
SchedulerFactory = Callable[[int, bool], "SchedulingFunction"]
#: ``builder(contiki) -> factory`` -- called once per scenario.
SchedulerBuilder = Callable[[Any], SchedulerFactory]

#: name -> (builder, paper_default, robustness_default), in registration
#: order (dicts preserve insertion order; line-up helpers rely on it).
_REGISTRY: dict[str, tuple[SchedulerBuilder, bool, bool]] = {}


def register_scheduler(
    name: str,
    *,
    paper_default: bool = False,
    robustness_default: bool = False,
) -> Callable[[SchedulerBuilder], SchedulerBuilder]:
    """Class/function decorator registering a scheduler builder under ``name``.

    ``paper_default`` marks the scheduler as part of the paper-figure
    line-up (Figs. 8-10 default to the GT-TSCH vs Orchestra pair);
    ``robustness_default`` marks it as part of the three-scheduler
    robustness/join/scale line-up.  Registering an already-taken name is an
    error -- two plugins silently shadowing each other would make scenario
    fingerprints ambiguous.
    """

    def decorator(builder: SchedulerBuilder) -> SchedulerBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scheduler {name!r} is already registered")
        _REGISTRY[name] = (builder, paper_default, robustness_default)
        return builder

    return decorator


def resolve(name: str) -> SchedulerBuilder:
    """The builder registered under ``name``.

    Raises ``ValueError`` naming every registered scheduler, so the CLI and
    the scenarios report the same (auto-generated) list of valid names.
    """
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from: {', '.join(available())}"
        ) from None


def available() -> list[str]:
    """Sorted names of every registered scheduler."""
    return sorted(_REGISTRY)


def paper_lineup() -> tuple[str, ...]:
    """Schedulers of the paper-figure default comparison, registration order."""
    return tuple(
        name for name, (_, paper, _robust) in _REGISTRY.items() if paper
    )


def robustness_lineup() -> tuple[str, ...]:
    """Schedulers of the robustness/join/scale default line-up."""
    return tuple(
        name for name, (_, _paper, robust) in _REGISTRY.items() if robust
    )
