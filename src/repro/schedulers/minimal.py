"""6TiSCH minimal configuration (RFC 8180) scheduler.

The minimal configuration bootstraps a 6TiSCH network with a single shared
cell: every frame -- EBs, RPL control and application data -- contends for
slot 0 of one slotframe.  It is not evaluated in the paper (the baseline is
Orchestra) but is the natural "floor" reference: it shows how far purely
contention-based scheduling collapses under the same workloads, and it
doubles as the simplest possible scheduling function for tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.schedulers.base import SchedulingFunction


@dataclass
class MinimalSchedulerConfig:
    """Configuration of the minimal schedule."""

    #: RFC 8180 recommends slotframe lengths that are prime or co-prime with
    #: the hopping sequence length; Contiki-NG's default is 7.
    slotframe_length: int = 7
    #: Number of shared cells installed (RFC 8180 allows more than one to
    #: trade energy for capacity).
    num_shared_cells: int = 1
    channel_offset: int = 0

    def __post_init__(self) -> None:
        if self.slotframe_length < 1:
            raise ValueError("slotframe_length must be positive")
        if not 1 <= self.num_shared_cells <= self.slotframe_length:
            raise ValueError("num_shared_cells must be in [1, slotframe_length]")


class MinimalScheduler(SchedulingFunction):
    """The RFC 8180 minimal schedule: N shared cells, nothing else."""

    name = "6TiSCH-minimal"
    sf_id = 0x00

    SLOTFRAME_HANDLE = 0

    def __init__(self, config: Optional[MinimalSchedulerConfig] = None) -> None:
        super().__init__()
        self.config = config or MinimalSchedulerConfig()

    def start(self) -> None:
        slotframe = self.node.tsch.add_slotframe(
            self.SLOTFRAME_HANDLE, self.config.slotframe_length
        )
        for index in range(self.config.num_shared_cells):
            slot = (index * self.config.slotframe_length) // self.config.num_shared_cells
            slotframe.add_cell(
                Cell(
                    slot_offset=slot,
                    channel_offset=self.config.channel_offset,
                    options=CellOption.TX
                    | CellOption.RX
                    | CellOption.SHARED
                    | CellOption.BROADCAST,
                    neighbor=None,
                    purpose=CellPurpose.SHARED,
                    label="minimal-shared",
                )
            )
