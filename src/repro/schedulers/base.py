"""The scheduling-function plug-in interface.

A 6TiSCH Scheduling Function (SF) decides which TSCH cells a node installs
and when the schedule is updated.  RFC 8480 leaves the SF open -- that is the
research gap the paper addresses -- so the simulator treats it as a plug-in:

* the SF observes the node's protocol events (parent switches, new children,
  received EBs/DIOs, finished transmissions);
* it installs/removes cells on the node's :class:`repro.mac.tsch.TschEngine`;
* it may negotiate cells with neighbours through the node's 6P layer;
* it may piggyback fields on EBs and DIOs (GT-TSCH uses both).

All callbacks have default no-op implementations so concrete schedulers only
override what they need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.net.packet import Packet
from repro.sixtop.messages import SixPMessage, SixPReturnCode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node


class SchedulingFunction:
    """Base class for TSCH scheduling functions.

    Lifecycle contract
    ------------------
    ``attach(node)`` binds the SF to its node (exactly once, before any other
    callback); ``start()`` installs the initial schedule -- it runs either at
    network build time (warm start, after which the node replays
    ``on_parent_changed``/``on_child_added`` for the pre-seeded topology) or
    after cold-start synchronisation, right before RPL boots; ``stop()`` runs
    on node crash and must cancel every live timer the SF owns, because a
    rejoin boots a *fresh* SF instance while the old one's events would
    otherwise keep firing.  The fault injector builds replacement instances
    through the same registry factory used at network construction, so an SF
    must be fully functional when constructed with nothing but its config.

    Settlement-barrier obligations
    ------------------------------
    The fast kernel skips slots in which no node acts, so an SF **must not**
    rely on per-slot callbacks -- all of its logic has to be event-driven
    (periodic timers, ``on_tx_done``, ``on_eb_received``, 6P callbacks), and
    anything resembling "per elapsed slot" accounting must be computed
    arithmetically from time deltas at event boundaries.  Every schedule
    mutation (``Slotframe.add_cell`` / ``remove_cell``) is automatically a
    settlement barrier: the MAC settles duty-cycle and CSMA state up to the
    current slot before the mutation applies, which is what keeps the
    skipping kernel bit-identical to the per-slot reference loop.  Mutating
    the schedule from any event-queue callback is therefore safe; counting
    slots by hooking them is not.
    """

    #: Human-readable name used in metrics and experiment tables.
    name = "base"
    #: 6P Scheduling Function Identifier advertised in 6P messages.
    sf_id = 0

    def __init__(self) -> None:
        self.node: Optional["Node"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, node: "Node") -> None:
        """Bind the SF to its node.  Called once, before :meth:`start`."""
        self.node = node

    def start(self) -> None:
        """Install the initial schedule (slotframes, minimal cells)."""

    def stop(self) -> None:
        """Tear down any live resources (timers) on node crash.

        Called by the fault injector when the node powers off; the
        schedule itself is cleared separately (``TschEngine.clear_schedule``)
        and a later rejoin boots a *fresh* SF instance, so implementations
        only need to cancel what would otherwise keep firing on the event
        queue.  The default SF owns no timers.
        """

    # ------------------------------------------------------------------
    # RPL events
    # ------------------------------------------------------------------
    def on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        """The node selected a new preferred parent (or lost its parent)."""

    def on_child_added(self, child: int) -> None:
        """A node announced (via DAO) that it uses us as its parent."""

    def on_child_removed(self, child: int) -> None:
        """A previously known child is gone."""

    # ------------------------------------------------------------------
    # control-plane piggybacking
    # ------------------------------------------------------------------
    def eb_fields(self) -> dict[str, Any]:
        """Extra fields to piggyback on this node's Enhanced Beacons."""
        return {}

    def dio_fields(self) -> dict[str, Any]:
        """Extra fields to piggyback on this node's DIOs (e.g. ``l_rx``)."""
        return {}

    def on_eb_received(self, packet: Packet) -> None:
        """An Enhanced Beacon was received from a neighbor."""

    def on_dio_received(self, packet: Packet) -> None:
        """A DIO was received (after RPL has already processed it)."""

    # ------------------------------------------------------------------
    # 6P events
    # ------------------------------------------------------------------
    def on_sixp_request(
        self, peer: int, message: SixPMessage
    ) -> tuple[SixPReturnCode, dict[str, Any]]:
        """Answer an incoming 6P request.

        Returns the response return code plus the response fields
        (``cell_list``, ``channel_offset``...).  The default rejects every
        request, which is correct for autonomous schedulers that never use 6P.
        """
        return SixPReturnCode.ERR, {}

    # ------------------------------------------------------------------
    # MAC events
    # ------------------------------------------------------------------
    def on_packet_enqueued(self, packet: Packet) -> None:
        """A packet (data or control) entered the MAC queue."""

    def on_tx_done(self, packet: Packet, success: bool) -> None:
        """A unicast packet left the MAC (delivered, or dropped after retries)."""

    def relocation_count(self) -> int:
        """Schedule cells installed or removed through 6P so far (churn).

        Negotiating schedulers (GT-TSCH) override this; autonomous ones have
        no 6P traffic, so the metric is zero.  The collector differences it
        across the measurement window to report cell relocations per
        load-balancing period.
        """
        return 0

    def load_balance_period_s(self) -> float:
        """Length of the scheduler's periodic adaptation round (0 = none)."""
        return 0.0

    def config_fingerprint(self) -> Any:
        """Value describing everything configurable about this SF instance.

        Folded into the scenario fingerprint (and hence the on-disk result
        cache key) by :func:`repro.experiments.parallel.scenario_fingerprint`,
        so scheduler configuration enters cache keys generically instead of
        through per-scheduler ``ContikiConfig`` special cases -- a
        third-party SF with its own config dataclass is cached correctly
        without touching the experiments layer.  The returned value must be
        canonicalisable: a dataclass, a dict/list/tuple of scalars, or any
        object with a value-based ``__repr__``.  The default returns the
        conventional ``config`` attribute (every first-party scheduler stores
        its config dataclass there), or ``None`` for config-free SFs.
        """
        return getattr(self, "config", None)

    # ------------------------------------------------------------------
    # introspection helpers shared by concrete schedulers
    # ------------------------------------------------------------------
    def describe_schedule(self) -> str:
        """Human-readable dump of installed cells, for examples and debugging."""
        if self.node is None:
            return "<detached scheduler>"
        lines = [f"Schedule of node {self.node.node_id} ({self.name}):"]
        for handle in sorted(self.node.tsch.slotframes):
            slotframe = self.node.tsch.slotframes[handle]
            lines.append(f"  slotframe {handle} (length {slotframe.length}):")
            for cell in slotframe.all_cells():
                lines.append(f"    {cell!r}")
        return "\n".join(lines)
