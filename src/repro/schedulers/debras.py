"""DeBrAS: broadcast-aware autonomous scheduling.

DeBrAS (De-congested Broadcast + Autonomous Scheduling, after Rekik et al.)
keeps Orchestra's negotiation-free autonomous-cell idea but fixes its worst
collision source: autonomous unicast cells that hash onto the slots carrying
broadcast traffic (EBs, DIOs) lose to the higher-priority broadcast cell
every slotframe, silently halving the owner's bandwidth.  DeBrAS therefore

* spreads a configurable number of shared broadcast cells evenly over a
  *single* slotframe (the same spread rule as the paper's 6TiSCH-minimal
  baseline, but alongside unicast cells rather than instead of them), and
* derives each node's autonomous unicast cell from a deterministic hash of
  its id, then **relocates** it away from any congested broadcast slot by
  linear probing to the next broadcast-free slot.

Everything is receiver-based, as in default Orchestra: a node listens on its
own (relocated) cell and transmits towards parent and children on *their*
cells.  Both link ends compute the same relocation from the owner's id
alone, so no signalling is needed -- the scheduler is entirely autonomous
and never touches 6P.

There are no timers and no per-slot hooks, so the fast-kernel settlement
contract is trivially satisfied: the schedule only mutates on RPL topology
events, and each mutation is its own settlement barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.schedulers.base import SchedulingFunction
from repro.schedulers.msf import sax_hash
from repro.schedulers.registry import register_scheduler


@dataclass(frozen=True)
class DebrasConfig:
    """DeBrAS knobs.  Frozen and slotted: it enters the scenario fingerprint.

    No field defaults (``__slots__`` rules out class-level defaults on
    Python 3.9): construct via :func:`debras_config_from` or supply every
    field explicitly.
    """

    __slots__ = (
        "slotframe_length",
        "num_channels",
        "num_broadcast_cells",
        "broadcast_channel_offset",
    )

    slotframe_length: int
    num_channels: int
    #: Shared broadcast cells spread evenly over the slotframe.
    num_broadcast_cells: int
    broadcast_channel_offset: int

    def __post_init__(self) -> None:
        if self.slotframe_length < 2:
            raise ValueError("slotframe_length must be at least 2")
        if self.num_channels < 2:
            raise ValueError("DeBrAS needs at least 2 channel offsets")
        if not 1 <= self.num_broadcast_cells < self.slotframe_length:
            raise ValueError(
                "num_broadcast_cells must leave at least one unicast slot"
            )

    def broadcast_slots(self) -> tuple:
        """Evenly spread broadcast slot offsets (6TiSCH-minimal spread rule)."""
        length = self.slotframe_length
        return tuple(
            (index * length) // self.num_broadcast_cells
            for index in range(self.num_broadcast_cells)
        )


def debras_config_from(contiki: Any) -> DebrasConfig:
    """Derive a :class:`DebrasConfig` from the experiment-wide config.

    Reuses the GT-TSCH slotframe length and the scenario's broadcast-cell
    budget (``num_broadcast_cells`` also sizes GT-TSCH's broadcast
    slotframe), so the comparison holds the control-plane capacity constant.
    """
    return DebrasConfig(
        slotframe_length=contiki.gt_slotframe_length,
        num_channels=len(contiki.hopping_sequence),
        num_broadcast_cells=contiki.num_broadcast_cells,
        broadcast_channel_offset=0,
    )


class DebrasScheduler(SchedulingFunction):
    """Autonomous receiver-based scheduler with broadcast-slot avoidance."""

    name = "DeBrAS"
    sf_id = 0x02

    SLOTFRAME_HANDLE = 0

    __slots__ = ("config", "_broadcast_slots", "_parent_tx_cell", "_child_tx_cells")

    def __init__(self, config: DebrasConfig) -> None:
        super().__init__()
        self.config = config
        self._broadcast_slots = frozenset(config.broadcast_slots())
        self._parent_tx_cell: Optional[Cell] = None
        self._child_tx_cells: dict[int, Cell] = {}

    # ------------------------------------------------------------------
    # cell coordinate derivation (the broadcast-aware part)
    # ------------------------------------------------------------------
    def _autonomous_cell(self, owner: int) -> tuple:
        """(slot, channel) of ``owner``'s autonomous cell, probed off any
        broadcast slot.

        Linear probing is deterministic and uses only the owner's id, so
        sender and receiver agree without signalling.  ``num_broadcast_cells
        < slotframe_length`` guarantees termination.
        """
        h = sax_hash(owner)
        slot = h % self.config.slotframe_length
        while slot in self._broadcast_slots:
            slot = (slot + 1) % self.config.slotframe_length
        channel = 1 + (h >> 16) % (self.config.num_channels - 1)
        return slot, channel

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        node = self.node
        slotframe = node.tsch.add_slotframe(
            self.SLOTFRAME_HANDLE, self.config.slotframe_length
        )
        for slot in self.config.broadcast_slots():
            slotframe.add_cell(
                Cell(
                    slot_offset=slot,
                    channel_offset=self.config.broadcast_channel_offset,
                    options=CellOption.TX
                    | CellOption.RX
                    | CellOption.SHARED
                    | CellOption.BROADCAST,
                    neighbor=None,
                    purpose=CellPurpose.BROADCAST,
                    label="debras-broadcast",
                )
            )
        own_slot, own_channel = self._autonomous_cell(node.node_id)
        slotframe.add_cell(
            Cell(
                slot_offset=own_slot,
                channel_offset=own_channel,
                options=CellOption.RX | CellOption.ALWAYS_ON,
                neighbor=None,
                purpose=CellPurpose.UNICAST_DATA,
                label="debras-autonomous-rx",
            )
        )

    # ------------------------------------------------------------------
    # RPL events keep the unicast cells aligned with the topology
    # ------------------------------------------------------------------
    def on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        if self._parent_tx_cell is not None:
            slotframe.remove_cell(self._parent_tx_cell)
            self._parent_tx_cell = None
        if new_parent is None:
            return
        slot, channel = self._autonomous_cell(new_parent)
        self._parent_tx_cell = slotframe.add_cell(
            Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.TX | CellOption.SHARED,
                neighbor=new_parent,
                purpose=CellPurpose.UNICAST_DATA,
                label="debras-autonomous-tx",
            )
        )

    def on_child_added(self, child: int) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if slotframe is None or child in self._child_tx_cells:
            return
        slot, channel = self._autonomous_cell(child)
        self._child_tx_cells[child] = slotframe.add_cell(
            Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.TX | CellOption.SHARED,
                neighbor=child,
                purpose=CellPurpose.UNICAST_DATA,
                label="debras-autonomous-tx-child",
            )
        )

    def on_child_removed(self, child: int) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        cell = self._child_tx_cells.pop(child, None)
        if slotframe is not None and cell is not None:
            slotframe.remove_cell(cell)


@register_scheduler(DebrasScheduler.name)
def _build_debras(contiki: Any) -> Any:
    """Registry builder: fresh per-node config, like every first-party SF."""
    return lambda node_id, is_root: DebrasScheduler(debras_config_from(contiki))
