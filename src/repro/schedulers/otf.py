"""OTF: on-the-fly bandwidth estimation and cell allocation.

OTF (Palattella et al., "On-the-Fly Bandwidth Reservation for 6TiSCH
Wireless Industrial Networks") sizes each node's Tx bandwidth towards its
parent from a running estimate of outgoing traffic instead of a game
(GT-TSCH) or a fixed hash (Orchestra/DeBrAS).  This implementation models
OTF's allocation policy over sender-based autonomous "lanes":

* lane ``i`` of node ``n`` sits at deterministic hash coordinates of
  ``(n, i)``, so both link ends can compute it without negotiation;
* the sender installs Tx lanes towards its parent and advertises its current
  lane count (and its parent's id) in its Enhanced Beacons; the parent
  mirrors matching Rx lanes when it hears the EB -- EB piggybacking replaces
  OTF's 6top signalling, trading 6P round-trips for EB-period allocation lag;
* a periodic allocation tick re-estimates the required bandwidth from
  (a) packets generated locally since the last tick, (b) the number of Rx
  lanes granted to children (forwarding demand), and (c) current MAC-queue
  pressure; the lane count grows immediately when demand rises and shrinks
  only when it falls more than a hysteresis margin below the allocation
  (OTF's over-provisioning threshold, which damps allocation churn).

Fast-kernel compliance: bandwidth is estimated from event-driven counters
(``on_packet_enqueued``) and queue length sampled at timer ticks -- never
from per-slot hooks -- so the slot-skipping kernel stays bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.net.packet import Packet, PacketType
from repro.schedulers.base import SchedulingFunction
from repro.schedulers.msf import sax_hash
from repro.schedulers.registry import register_scheduler
from repro.sim.events import PeriodicTimer


@dataclass(frozen=True)
class OtfConfig:
    """OTF knobs.  Frozen and slotted: it enters the scenario fingerprint.

    No field defaults (``__slots__`` rules out class-level defaults on
    Python 3.9): construct via :func:`otf_config_from` or supply every field
    explicitly.
    """

    __slots__ = (
        "slotframe_length",
        "num_channels",
        "num_broadcast_cells",
        "max_lanes",
        "hysteresis_lanes",
        "allocation_period_s",
    )

    slotframe_length: int
    num_channels: int
    #: Shared broadcast cells spread evenly over the slotframe.  Lane
    #: signalling rides on EBs, so OTF depends on broadcast capacity more
    #: than the receiver-based schedulers do: a parent that cannot hear a
    #: child's EBs never installs the Rx side of its lanes.
    num_broadcast_cells: int
    #: Upper bound on Tx lanes towards the parent.
    max_lanes: int
    #: Shrink only when demand falls this many lanes below the allocation
    #: (OTF's over-provisioning threshold).
    hysteresis_lanes: int
    allocation_period_s: float

    def __post_init__(self) -> None:
        if self.slotframe_length < 2:
            raise ValueError("slotframe_length must be at least 2")
        if self.num_channels < 2:
            raise ValueError("OTF needs at least 2 channel offsets")
        if not 1 <= self.num_broadcast_cells < self.slotframe_length:
            raise ValueError(
                "num_broadcast_cells must leave at least one unicast slot"
            )
        if self.max_lanes < 1:
            raise ValueError("max_lanes must be at least 1")
        if self.hysteresis_lanes < 0:
            raise ValueError("hysteresis_lanes must be non-negative")
        if self.allocation_period_s <= 0:
            raise ValueError("allocation_period_s must be positive")

    def broadcast_slots(self) -> tuple:
        """Slot offsets of the shared broadcast cells, spread evenly."""
        return tuple(
            (index * self.slotframe_length) // self.num_broadcast_cells
            for index in range(self.num_broadcast_cells)
        )


def otf_config_from(contiki: Any) -> OtfConfig:
    """Derive an :class:`OtfConfig` from the experiment-wide config.

    Same slotframe length and adaptation cadence as GT-TSCH, so the figure
    head-to-heads compare allocation *policies* rather than timer settings.
    """
    return OtfConfig(
        slotframe_length=contiki.gt_slotframe_length,
        num_channels=len(contiki.hopping_sequence),
        num_broadcast_cells=contiki.num_broadcast_cells,
        max_lanes=6,
        hysteresis_lanes=1,
        allocation_period_s=contiki.load_balance_period_s,
    )


def lane_coordinates(
    owner: int,
    index: int,
    slotframe_length: int,
    num_channels: int,
    broadcast_slots: frozenset = frozenset(),
) -> tuple:
    """(slot, channel) of lane ``index`` of node ``owner``.

    A pure function of the arguments, shared by both link ends: the sender
    installs the Tx side and the parent derives the identical Rx side from
    the EB-advertised lane count.  Lanes linearly probe off the broadcast
    slots (both ends pass the same set, so they still agree) and off slot 0,
    which stays reserved even when it carries no broadcast cell.
    """
    h = sax_hash(((owner & 0xFFFFFF) << 6) ^ (index & 0x3F))
    slot = 1 + h % (slotframe_length - 1)
    while slot in broadcast_slots:
        slot = 1 + (slot % (slotframe_length - 1))
    channel = 1 + (h >> 16) % (num_channels - 1)
    return slot, channel


class OtfScheduler(SchedulingFunction):
    """Queue-pressure-driven bandwidth allocation over autonomous lanes."""

    name = "OTF"
    sf_id = 0x03

    SLOTFRAME_HANDLE = 0

    __slots__ = (
        "config",
        "_broadcast_slots",
        "_timer",
        "_tx_lanes",
        "_rx_lanes",
        "_packets_generated",
        "cells_relocated",
    )

    def __init__(self, config: OtfConfig) -> None:
        super().__init__()
        self.config = config
        self._broadcast_slots = frozenset(config.broadcast_slots())
        self._timer: Optional[PeriodicTimer] = None
        #: Tx lanes towards the parent, by lane index order.
        self._tx_lanes: list[Cell] = []
        #: Rx lanes granted to each child, by lane index order.
        self._rx_lanes: dict[int, list[Cell]] = {}
        #: Locally generated DATA packets since the last allocation tick.
        self._packets_generated = 0
        #: Lane installs/removals (schedule churn, GT-TSCH counter semantics).
        self.cells_relocated = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        node = self.node
        slotframe = node.tsch.add_slotframe(
            self.SLOTFRAME_HANDLE, self.config.slotframe_length
        )
        # Spread broadcast cells (minimal/DeBrAS layout).  OTF's lane
        # signalling rides on EBs, so a single shared cell would congest
        # under the whole network's control traffic and starve the Rx-lane
        # reconciliation that makes the dedicated lanes usable.
        for slot in self.config.broadcast_slots():
            slotframe.add_cell(
                Cell(
                    slot_offset=slot,
                    channel_offset=0,
                    options=CellOption.TX
                    | CellOption.RX
                    | CellOption.SHARED
                    | CellOption.BROADCAST,
                    neighbor=None,
                    purpose=CellPurpose.BROADCAST,
                    label="otf-shared",
                )
            )
        period = self.config.allocation_period_s
        timer_rng = node.rng_registry.stream(f"otf.timer.{node.node_id}")
        queue = node.event_queue
        self._timer = PeriodicTimer(
            queue,
            period,
            self._allocation_tick,
            start_offset=timer_rng.random() * period,
            label=f"otf-allocation.{node.node_id}",
            jitter=0.1,
            rng=timer_rng,
            wheel=queue.wheel("otf-allocation"),
        )
        self._timer.start()

    def stop(self) -> None:
        """Cancel the allocation timer (node crash teardown)."""
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # lane reconciliation (both link ends derive the same coordinates)
    # ------------------------------------------------------------------
    def _set_tx_lanes(self, parent: int, count: int) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        count = max(0, min(count, self.config.max_lanes))
        while len(self._tx_lanes) > count:
            slotframe.remove_cell(self._tx_lanes.pop())
            self.cells_relocated += 1
        while len(self._tx_lanes) < count:
            slot, channel = lane_coordinates(
                self.node.node_id,
                len(self._tx_lanes),
                self.config.slotframe_length,
                self.config.num_channels,
                self._broadcast_slots,
            )
            self._tx_lanes.append(
                slotframe.add_cell(
                    Cell(
                        slot_offset=slot,
                        channel_offset=channel,
                        options=CellOption.TX,
                        neighbor=parent,
                        purpose=CellPurpose.UNICAST_DATA,
                        label="otf-tx-lane",
                    )
                )
            )
            self.cells_relocated += 1

    def _set_child_lanes(self, child: int, count: int) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        count = max(0, min(count, self.config.max_lanes))
        lanes = self._rx_lanes.setdefault(child, [])
        while len(lanes) > count:
            slotframe.remove_cell(lanes.pop())
            self.cells_relocated += 1
        while len(lanes) < count:
            slot, channel = lane_coordinates(
                child,
                len(lanes),
                self.config.slotframe_length,
                self.config.num_channels,
                self._broadcast_slots,
            )
            lanes.append(
                slotframe.add_cell(
                    Cell(
                        slot_offset=slot,
                        channel_offset=channel,
                        options=CellOption.RX | CellOption.ALWAYS_ON,
                        neighbor=child,
                        purpose=CellPurpose.UNICAST_DATA,
                        label="otf-rx-lane",
                    )
                )
            )
            self.cells_relocated += 1
        if not lanes:
            del self._rx_lanes[child]

    # ------------------------------------------------------------------
    # RPL events
    # ------------------------------------------------------------------
    def on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        self._set_tx_lanes(old_parent if old_parent is not None else 0, 0)
        if new_parent is not None:
            # One default lane immediately; the parent mirrors the same
            # default in ``on_child_added``, so lane 0 works before any EB.
            self._set_tx_lanes(new_parent, 1)

    def on_child_added(self, child: int) -> None:
        if child not in self._rx_lanes:
            self._set_child_lanes(child, 1)

    def on_child_removed(self, child: int) -> None:
        self._set_child_lanes(child, 0)

    # ------------------------------------------------------------------
    # EB piggybacking replaces OTF's 6top lane signalling
    # ------------------------------------------------------------------
    def eb_fields(self) -> dict[str, Any]:
        parent = self.node.rpl.preferred_parent
        if parent is None:
            return {}
        return {"otf_parent": parent, "otf_lanes": len(self._tx_lanes)}

    def on_eb_received(self, packet: Packet) -> None:
        payload = packet.payload or {}
        advertised_parent = payload.get("otf_parent")
        if advertised_parent != self.node.node_id:
            # A former child that re-parented elsewhere stops needing its Rx
            # lanes here; without DAO-based child tracking the EB is the only
            # signal that they went stale.
            if advertised_parent is not None and packet.link_source in self._rx_lanes:
                self._set_child_lanes(packet.link_source, 0)
            return
        lanes = payload.get("otf_lanes")
        if isinstance(lanes, int) and lanes >= 1:
            self._set_child_lanes(packet.link_source, lanes)

    # ------------------------------------------------------------------
    # bandwidth estimation
    # ------------------------------------------------------------------
    def on_packet_enqueued(self, packet: Packet) -> None:
        if packet.ptype is PacketType.DATA and packet.source == self.node.node_id:
            self._packets_generated += 1

    def _allocation_tick(self) -> None:
        node = self.node
        generated = self._packets_generated
        self._packets_generated = 0
        parent = node.rpl.preferred_parent
        if parent is None or node.is_root:
            return
        # Cells per slotframe needed to drain the locally generated traffic
        # observed over the last period (same unit conversion as GT-TSCH's
        # generation term, inlined to keep this package core-import-free).
        slotframe_s = self.config.slotframe_length * node.config.tsch.slot_duration_s
        generation_lanes = math.ceil(
            generated * slotframe_s / self.config.allocation_period_s
        )
        # Forwarding demand: whatever the children may push in, we must be
        # able to push out.
        forwarding_lanes = sum(len(lanes) for lanes in self._rx_lanes.values())
        # Queue pressure: a backlog right now means the estimate is lagging
        # behind reality, so reserve one extra lane to drain it.
        pressure_lane = 1 if node.tsch.data_queue_length() > 0 else 0
        required = max(1, generation_lanes + forwarding_lanes + pressure_lane)
        required = min(required, self.config.max_lanes)
        current = len(self._tx_lanes)
        if required > current or required < current - self.config.hysteresis_lanes:
            self._set_tx_lanes(parent, required)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def relocation_count(self) -> int:
        return self.cells_relocated

    def load_balance_period_s(self) -> float:
        return self.config.allocation_period_s

    def tx_lane_count(self) -> int:
        return len(self._tx_lanes)

    def rx_lane_count(self, child: int) -> int:
        return len(self._rx_lanes.get(child, ()))


@register_scheduler(OtfScheduler.name)
def _build_otf(contiki: Any) -> Any:
    """Registry builder: fresh per-node config, like every first-party SF."""
    return lambda node_id, is_root: OtfScheduler(otf_config_from(contiki))
