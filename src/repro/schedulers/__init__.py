"""TSCH scheduling functions and the scheduler-plugin registry.

Every scheduler in this repository -- the paper's GT-TSCH contribution
(:mod:`repro.core.scheduler`), the Orchestra baseline
(:mod:`repro.schedulers.orchestra`), the 6TiSCH minimal configuration
(:mod:`repro.schedulers.minimal`) and the adaptive baselines MSF
(:mod:`repro.schedulers.msf`), DeBrAS (:mod:`repro.schedulers.debras`) and
OTF (:mod:`repro.schedulers.otf`) -- implements the
:class:`repro.schedulers.base.SchedulingFunction` interface and only installs
or removes cells; the TSCH MAC, RPL and 6P machinery underneath is shared,
which keeps performance comparisons apples-to-apples.

Schedulers are selected by name through
:mod:`repro.schedulers.registry`: the new modules self-register on import
(see ``@register_scheduler`` at the bottom of each), while GT-TSCH --
which lives outside this package -- and the two pre-registry baselines are
registered below.  Import-cycle contract: this package must stay importable
without :mod:`repro.experiments` (builders receive the Contiki configuration
duck-typed) and without :mod:`repro.core` at module level
(``repro.core.scheduler`` imports :mod:`repro.schedulers.base`, so GT-TSCH's
builder defers its import to first use).
"""

from typing import Any

from repro.schedulers import registry
from repro.schedulers.base import SchedulingFunction
from repro.schedulers.debras import DebrasConfig, DebrasScheduler
from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig
from repro.schedulers.msf import MsfConfig, MsfScheduler
from repro.schedulers.orchestra import OrchestraConfig, OrchestraScheduler
from repro.schedulers.otf import OtfConfig, OtfScheduler
from repro.schedulers.registry import register_scheduler

__all__ = [
    "SchedulingFunction",
    "registry",
    "register_scheduler",
    "OrchestraScheduler",
    "OrchestraConfig",
    "MinimalScheduler",
    "MinimalSchedulerConfig",
    "MsfScheduler",
    "MsfConfig",
    "DebrasScheduler",
    "DebrasConfig",
    "OtfScheduler",
    "OtfConfig",
]


# The flagged registrations define the default line-ups (the decorator
# preserves statement order): the paper figures compare GT-TSCH vs Orchestra,
# the robustness/join/scale figures add the 6TiSCH-minimal floor.  The
# MSF/DeBrAS/OTF baselines registered above (module import order) carry no
# flags, so recorded defaults are unchanged and the newcomers opt in via
# ``--schedulers``.
@register_scheduler("GT-TSCH", paper_default=True, robustness_default=True)
def _build_gt_tsch(contiki: Any) -> Any:
    # Deferred import: repro.core.scheduler imports repro.schedulers.base,
    # so importing it while this package initialises would be a cycle.
    from repro.core.scheduler import GtTschScheduler

    return lambda node_id, is_root: GtTschScheduler(contiki.gt_tsch_config())


@register_scheduler(
    OrchestraScheduler.name, paper_default=True, robustness_default=True
)
def _build_orchestra(contiki: Any) -> Any:
    return lambda node_id, is_root: OrchestraScheduler(contiki.orchestra_config())


@register_scheduler(MinimalScheduler.name, robustness_default=True)
def _build_minimal(contiki: Any) -> Any:
    return lambda node_id, is_root: MinimalScheduler(MinimalSchedulerConfig())
