"""TSCH scheduling functions.

Every scheduler in this repository -- the paper's GT-TSCH contribution
(:mod:`repro.core.scheduler`), the Orchestra baseline
(:mod:`repro.schedulers.orchestra`) and the 6TiSCH minimal configuration
(:mod:`repro.schedulers.minimal`) -- implements the
:class:`repro.schedulers.base.SchedulingFunction` interface and only installs
or removes cells; the TSCH MAC, RPL and 6P machinery underneath is shared,
which keeps performance comparisons apples-to-apples.
"""

from repro.schedulers.base import SchedulingFunction
from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig
from repro.schedulers.orchestra import OrchestraConfig, OrchestraScheduler

__all__ = [
    "SchedulingFunction",
    "OrchestraScheduler",
    "OrchestraConfig",
    "MinimalScheduler",
    "MinimalSchedulerConfig",
]
