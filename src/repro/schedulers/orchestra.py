"""Orchestra: the autonomous TSCH scheduler used as the paper's baseline.

Orchestra (Duquennoy et al., SenSys 2015) computes every node's schedule
locally from routing-layer information, with no negotiation.  The Contiki-NG
implementation the paper compares against maintains three slotframes:

* an **EB slotframe**: one Tx cell for the node's own Enhanced Beacons at
  ``hash(node) % L_eb`` and one Rx cell at ``hash(time_source) % L_eb``;
* a **common (broadcast/default) slotframe**: a single shared Tx/Rx cell used
  by every node for RPL broadcast traffic and any frame without a dedicated
  cell;
* a **unicast slotframe**: in the default receiver-based mode every node
  listens on the cell derived from its *own* id and transmits to a neighbour
  on the cell derived from the *neighbour's* id.  Because every child of a
  given parent derives the same cell, these cells are contention cells
  (CSMA/CA back-off applies) -- which is exactly why Orchestra degrades under
  load: the per-destination capacity is one cell per slotframe period, shared
  by all senders, regardless of traffic.

Slot and channel offsets are derived with a deterministic hash of the node
id, reproducing Orchestra's collision characteristics (two unrelated nodes
may hash onto the same cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.schedulers.base import SchedulingFunction


def orchestra_hash(value: int) -> int:
    """Deterministic 32-bit integer hash (Knuth multiplicative).

    Python's built-in ``hash`` is randomised per process, which would make
    runs irreproducible; Orchestra itself hashes link-layer addresses, which
    are stable, so a deterministic hash is the faithful model.
    """
    return (value * 2654435761) & 0xFFFFFFFF


@dataclass
class OrchestraConfig:
    """Orchestra slotframe sizes (Contiki-NG defaults, scaled to the paper).

    The paper sweeps the *unicast* slotframe length over {8, 12, 16, 20}
    (Fig. 10) and notes that for fairness GT-TSCH's single slotframe is set
    to four times Orchestra's unicast slotframe.  The EB and common slotframe
    lengths follow Contiki's rule of thumb of being co-prime with the unicast
    length so cells do not systematically overlap.
    """

    unicast_slotframe_length: int = 8
    common_slotframe_length: int = 31
    eb_slotframe_length: int = 41
    #: False = receiver-based (Contiki default, used in the paper's
    #: comparison); True = sender-based.
    sender_based: bool = False
    #: Number of channel offsets available to the hash (the hopping sequence
    #: length of Table II).
    num_channels: int = 8
    #: Channel offsets reserved for the EB and common slotframes.
    eb_channel_offset: int = 0
    common_channel_offset: int = 1

    def __post_init__(self) -> None:
        if self.unicast_slotframe_length < 2:
            raise ValueError("unicast_slotframe_length must be at least 2")
        if self.num_channels < 2:
            raise ValueError("Orchestra needs at least 2 channel offsets")


class OrchestraScheduler(SchedulingFunction):
    """Autonomous Orchestra scheduling function (receiver- or sender-based)."""

    name = "Orchestra"
    sf_id = 0x00

    #: Slotframe handles, in Contiki's priority order (lower = higher priority).
    EB_HANDLE = 0
    COMMON_HANDLE = 1
    UNICAST_HANDLE = 2

    def __init__(self, config: Optional[OrchestraConfig] = None) -> None:
        super().__init__()
        self.config = config or OrchestraConfig()
        self._parent_tx_cell: Optional[Cell] = None
        self._child_tx_cells: dict[int, Cell] = {}
        self._eb_rx_cell: Optional[Cell] = None

    # ------------------------------------------------------------------
    # cell coordinate derivation
    # ------------------------------------------------------------------
    def _unicast_coordinates(self, owner: int) -> tuple:
        """(slot, channel) of the unicast cell derived from ``owner``'s id."""
        length = self.config.unicast_slotframe_length
        slot = orchestra_hash(owner) % length
        channel = 2 + (orchestra_hash(owner) % max(1, self.config.num_channels - 2))
        if channel >= self.config.num_channels:
            channel = self.config.num_channels - 1
        return slot, channel

    def _eb_slot(self, owner: int) -> int:
        return orchestra_hash(owner) % self.config.eb_slotframe_length

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        node = self.node
        # EB slotframe: transmit our own EBs on the slot derived from our id.
        eb_sf = node.tsch.add_slotframe(self.EB_HANDLE, self.config.eb_slotframe_length)
        eb_sf.add_cell(
            Cell(
                slot_offset=self._eb_slot(node.node_id),
                channel_offset=self.config.eb_channel_offset,
                options=CellOption.TX | CellOption.BROADCAST,
                neighbor=None,
                purpose=CellPurpose.BROADCAST,
                label="orchestra-eb-tx",
            )
        )

        # Common slotframe: one shared broadcast cell for RPL traffic.
        common_sf = node.tsch.add_slotframe(
            self.COMMON_HANDLE, self.config.common_slotframe_length
        )
        common_sf.add_cell(
            Cell(
                slot_offset=0,
                channel_offset=self.config.common_channel_offset,
                options=CellOption.TX | CellOption.RX | CellOption.SHARED | CellOption.BROADCAST,
                neighbor=None,
                purpose=CellPurpose.BROADCAST,
                label="orchestra-common",
            )
        )

        # Unicast slotframe: always listen on our own cell (receiver-based) --
        # the radio cost of this permanent Rx cell is Orchestra's main energy
        # overhead under low load.
        unicast_sf = node.tsch.add_slotframe(
            self.UNICAST_HANDLE, self.config.unicast_slotframe_length
        )
        own_slot, own_channel = self._unicast_coordinates(node.node_id)
        if not self.config.sender_based:
            unicast_sf.add_cell(
                Cell(
                    slot_offset=own_slot,
                    channel_offset=own_channel,
                    options=CellOption.RX | CellOption.ALWAYS_ON,
                    neighbor=None,
                    purpose=CellPurpose.UNICAST_DATA,
                    label="orchestra-rbs-rx",
                )
            )
        else:
            # Sender-based: we transmit on our own cell towards the current
            # parent (installed when the parent becomes known) and listen on
            # each child's cell (installed per child).
            pass

    # ------------------------------------------------------------------
    # RPL events keep the unicast slotframe aligned with the topology
    # ------------------------------------------------------------------
    def on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        unicast_sf = self.node.tsch.get_slotframe(self.UNICAST_HANDLE)
        eb_sf = self.node.tsch.get_slotframe(self.EB_HANDLE)
        if unicast_sf is None or eb_sf is None:
            return
        if self._parent_tx_cell is not None:
            unicast_sf.remove_cell(self._parent_tx_cell)
            self._parent_tx_cell = None
        if self._eb_rx_cell is not None:
            eb_sf.remove_cell(self._eb_rx_cell)
            self._eb_rx_cell = None
        if new_parent is None:
            return

        if self.config.sender_based:
            slot, channel = self._unicast_coordinates(self.node.node_id)
        else:
            slot, channel = self._unicast_coordinates(new_parent)
        self._parent_tx_cell = unicast_sf.add_cell(
            Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.TX | CellOption.SHARED,
                neighbor=new_parent,
                purpose=CellPurpose.UNICAST_DATA,
                label="orchestra-unicast-tx",
            )
        )
        # Follow the parent's EBs for synchronisation (time-source cell).
        self._eb_rx_cell = eb_sf.add_cell(
            Cell(
                slot_offset=self._eb_slot(new_parent),
                channel_offset=self.config.eb_channel_offset,
                options=CellOption.RX,
                neighbor=new_parent,
                purpose=CellPurpose.BROADCAST,
                label="orchestra-eb-rx",
            )
        )

    def on_child_added(self, child: int) -> None:
        unicast_sf = self.node.tsch.get_slotframe(self.UNICAST_HANDLE)
        if unicast_sf is None or child in self._child_tx_cells:
            return
        if self.config.sender_based:
            # Sender-based: listen on the child's own cell.
            slot, channel = self._unicast_coordinates(child)
            cell = Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.RX | CellOption.ALWAYS_ON,
                neighbor=child,
                purpose=CellPurpose.UNICAST_DATA,
                label="orchestra-sbs-rx",
            )
        else:
            # Receiver-based: keep a Tx cell towards the child for downward
            # traffic (hash of the child's id).
            slot, channel = self._unicast_coordinates(child)
            cell = Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.TX | CellOption.SHARED,
                neighbor=child,
                purpose=CellPurpose.UNICAST_DATA,
                label="orchestra-unicast-tx-child",
            )
        self._child_tx_cells[child] = unicast_sf.add_cell(cell)

    def on_child_removed(self, child: int) -> None:
        unicast_sf = self.node.tsch.get_slotframe(self.UNICAST_HANDLE)
        cell = self._child_tx_cells.pop(child, None)
        if unicast_sf is not None and cell is not None:
            unicast_sf.remove_cell(cell)
