"""MSF: the Minimal Scheduling Function (RFC 9033).

The IETF's standards-track answer to the load-adaptation problem GT-TSCH's
game solves, and the adaptive baseline the paper never compares against.
MSF combines one *autonomous* cell pair derived from a SAX-style hash of the
node id (so two neighbours can talk before any negotiation) with *negotiated*
dedicated cells managed over 6P ADD/DELETE transactions, driven by
cell-usage counters against the standard ``MAX_NUMCELLS`` /
``LIM_NUMCELLSUSED_HIGH`` / ``LIM_NUMCELLSUSED_LOW`` thresholds:

* every node installs the RFC 8180 minimal shared cell (slot 0) plus an
  autonomous Rx cell at ``sax(own id)``, and an autonomous shared Tx cell
  towards its parent at ``sax(parent id)``;
* after acquiring a parent it negotiates one dedicated Tx cell (6P ADD);
* a housekeeping timer compares how often the negotiated cells were *used*
  against how many fired, and adds (usage above the high threshold) or
  deletes (below the low threshold) one cell at a time -- evaluating only
  once ``MAX_NUMCELLS`` cell opportunities have elapsed, which is the RFC's
  hysteresis against reacting to bursts.

This is the only scheduler besides GT-TSCH that exercises
:mod:`repro.sixtop.layer`, including the timeout/retry path: a timed-out ADD
resets the bootstrap flag and the next housekeeping tick re-queues it
(self-healing, same contract as GT-TSCH's bootstrap).

Fast-kernel compliance: there are **no per-slot hooks**.  Elapsed cell
opportunities are computed arithmetically from the time delta between
housekeeping ticks (each negotiated Tx cell fires once per slotframe), and
cell usage is counted in ``on_tx_done`` -- both event-driven, so the
slot-skipping kernel stays bit-identical to the reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.net.packet import Packet, PacketType
from repro.schedulers.base import SchedulingFunction
from repro.schedulers.registry import register_scheduler
from repro.sim.events import PeriodicTimer
from repro.sixtop.messages import CellDescriptor, SixPCommand, SixPMessage, SixPReturnCode

#: RFC 9033 Section 5.3 defaults: evaluate the usage ratio every
#: ``MAX_NUMCELLS`` elapsed cell opportunities; add a cell above the high
#: threshold (75%), delete one below the low threshold (25%).
MAX_NUMCELLS = 16
LIM_NUMCELLSUSED_HIGH = 12
LIM_NUMCELLSUSED_LOW = 4


def sax_hash(value: int) -> int:
    """Deterministic 32-bit SAX (shift-and-xor) hash of a node id.

    RFC 9033 derives autonomous cell coordinates from a SAX hash of the
    node's EUI-64; Python's built-in ``hash`` is randomised per process, so a
    hand-rolled deterministic hash is the reproducible model (same reasoning
    as :func:`repro.schedulers.orchestra.orchestra_hash`).
    """
    h = value & 0xFFFFFFFF
    for _ in range(3):
        h = (h ^ (h << 5) ^ (h >> 2)) & 0xFFFFFFFF
        h = (h + 0x9E3779B9) & 0xFFFFFFFF
    return h


@dataclass(frozen=True)
class MsfConfig:
    """MSF knobs.  Frozen and slotted: it enters the scenario fingerprint.

    No field defaults (the ``__slots__``/default clash rules out class-level
    defaults on Python 3.9): construct via :func:`msf_config_from` -- the
    registry builder -- or supply every field explicitly.
    """

    __slots__ = (
        "slotframe_length",
        "num_channels",
        "max_numcells",
        "lim_numcells_high",
        "lim_numcells_low",
        "max_negotiated_tx",
        "housekeeping_period_s",
    )

    slotframe_length: int
    num_channels: int
    #: Cell opportunities between usage-ratio evaluations (RFC: MAX_NUMCELLS).
    max_numcells: int
    #: Usage count above which one cell is added (RFC: 75% of MAX_NUMCELLS).
    lim_numcells_high: int
    #: Usage count below which one cell is deleted (RFC: 25% of MAX_NUMCELLS).
    lim_numcells_low: int
    #: Upper bound on negotiated Tx cells towards the parent.
    max_negotiated_tx: int
    housekeeping_period_s: float

    def __post_init__(self) -> None:
        if self.slotframe_length < 2:
            raise ValueError("slotframe_length must be at least 2")
        if self.num_channels < 2:
            raise ValueError("MSF needs at least 2 channel offsets")
        if not 0 <= self.lim_numcells_low < self.lim_numcells_high <= self.max_numcells:
            raise ValueError("need 0 <= lim_low < lim_high <= max_numcells")
        if self.max_negotiated_tx < 1:
            raise ValueError("max_negotiated_tx must be at least 1")
        if self.housekeeping_period_s <= 0:
            raise ValueError("housekeeping_period_s must be positive")


def msf_config_from(contiki: Any) -> MsfConfig:
    """Derive an :class:`MsfConfig` from the experiment-wide protocol config.

    ``contiki`` is duck-typed (any object with ``gt_slotframe_length``,
    ``hopping_sequence`` and ``load_balance_period_s``); the slotframe
    follows the GT-TSCH length so the Fig. 10 fairness sweep scales every
    negotiating scheduler together, and housekeeping runs at the shared
    load-balancing cadence rather than RFC 9033's 60 s default, which would
    never fire inside the paper's measurement windows.
    """
    return MsfConfig(
        slotframe_length=contiki.gt_slotframe_length,
        num_channels=len(contiki.hopping_sequence),
        max_numcells=MAX_NUMCELLS,
        lim_numcells_high=LIM_NUMCELLSUSED_HIGH,
        lim_numcells_low=LIM_NUMCELLSUSED_LOW,
        max_negotiated_tx=8,
        housekeeping_period_s=contiki.load_balance_period_s,
    )


@dataclass
class _MsfRequest:
    """A queued 6P request (one transaction towards the parent at a time)."""

    __slots__ = ("command", "num_cells", "cell_list")

    command: SixPCommand
    num_cells: int
    cell_list: list


class MsfScheduler(SchedulingFunction):
    """RFC 9033 Minimal Scheduling Function over autonomous + negotiated cells."""

    name = "MSF"
    #: RFC 9033 registers SFID 0 for MSF.
    sf_id = 0x00

    SLOTFRAME_HANDLE = 0

    __slots__ = (
        "config",
        "_timer",
        "_request_queue",
        "_requested_initial",
        "_tx_negotiated",
        "_rx_cells_by_child",
        "_downward_cells",
        "_parent_tx_cell",
        "_num_cells_elapsed",
        "_num_cells_used",
        "_last_tick_now",
        "add_requests_sent",
        "delete_requests_sent",
        "cells_relocated",
    )

    def __init__(self, config: MsfConfig) -> None:
        super().__init__()
        self.config = config
        self._timer: Optional[PeriodicTimer] = None
        self._request_queue: list[_MsfRequest] = []
        self._requested_initial = False
        #: Negotiated dedicated Tx cells towards the parent.
        self._tx_negotiated: list[Cell] = []
        #: Negotiated Rx cells granted to each child.
        self._rx_cells_by_child: dict[int, list[Cell]] = {}
        #: Autonomous shared Tx cells towards children (6P response path).
        self._downward_cells: dict[int, Cell] = {}
        self._parent_tx_cell: Optional[Cell] = None
        #: RFC 9033 usage counters (evaluated by the housekeeping tick).
        self._num_cells_elapsed = 0
        self._num_cells_used = 0
        self._last_tick_now = 0.0
        #: Diagnostics.
        self.add_requests_sent = 0
        self.delete_requests_sent = 0
        #: 6P-driven schedule churn (same meaning as GT-TSCH's counter).
        self.cells_relocated = 0

    # ------------------------------------------------------------------
    # autonomous cell coordinates (SAX hash, RFC 9033 Section 3)
    # ------------------------------------------------------------------
    def _autonomous_cell(self, owner: int) -> tuple:
        """(slot, channel) of the autonomous cell derived from ``owner``'s id.

        Slot 0 is reserved for the minimal shared cell and channel 0 for
        broadcast, so both coordinates are mapped into ``[1, ...)``.
        """
        h = sax_hash(owner)
        slot = 1 + h % (self.config.slotframe_length - 1)
        channel = 1 + (h >> 16) % (self.config.num_channels - 1)
        return slot, channel

    def _pair_channel(self, child: int) -> int:
        """Channel offset of cells this node grants to ``child`` (Rx side)."""
        h = sax_hash(((self.node.node_id & 0xFFFF) << 16) ^ (child & 0xFFFFFFFF))
        return 1 + h % (self.config.num_channels - 1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        node = self.node
        slotframe = node.tsch.add_slotframe(
            self.SLOTFRAME_HANDLE, self.config.slotframe_length
        )
        # RFC 8180 minimal shared cell: EBs, DIOs and -- because 6P messages
        # are control traffic -- the 6P bootstrap path before any autonomous
        # or negotiated cell towards the peer exists.
        slotframe.add_cell(
            Cell(
                slot_offset=0,
                channel_offset=0,
                options=CellOption.TX
                | CellOption.RX
                | CellOption.SHARED
                | CellOption.BROADCAST,
                neighbor=None,
                purpose=CellPurpose.BROADCAST,
                label="msf-shared",
            )
        )
        # Autonomous Rx cell at this node's own SAX coordinates: any
        # neighbour can reach us here without negotiation.
        slot, channel = self._autonomous_cell(node.node_id)
        slotframe.add_cell(
            Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.RX | CellOption.ALWAYS_ON,
                neighbor=None,
                purpose=CellPurpose.UNICAST_DATA,
                label="msf-autonomous-rx",
            )
        )

        period = self.config.housekeeping_period_s
        timer_rng = node.rng_registry.stream(f"msf.timer.{node.node_id}")
        queue = node.event_queue
        self._last_tick_now = queue.now
        self._timer = PeriodicTimer(
            queue,
            period,
            self._housekeeping_tick,
            start_offset=timer_rng.random() * period,
            label=f"msf-housekeeping.{node.node_id}",
            jitter=0.1,
            rng=timer_rng,
            wheel=queue.wheel("msf-housekeeping"),
        )
        self._timer.start()

    def stop(self) -> None:
        """Cancel the housekeeping timer (node crash teardown)."""
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # RPL events
    # ------------------------------------------------------------------
    def on_parent_changed(self, old_parent: Optional[int], new_parent: Optional[int]) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if old_parent is not None and slotframe is not None:
            # Drops the autonomous Tx cell and every negotiated Tx cell.
            slotframe.remove_cells_with_neighbor(old_parent)
            self.node.tsch.quiet_shared_neighbors.discard(old_parent)
        self._parent_tx_cell = None
        self._tx_negotiated = [
            cell for cell in self._tx_negotiated if cell.neighbor == new_parent
        ]
        self._request_queue.clear()
        self._requested_initial = False
        self._num_cells_elapsed = 0
        self._num_cells_used = 0
        if new_parent is None or slotframe is None:
            return
        slot, channel = self._autonomous_cell(new_parent)
        self._parent_tx_cell = slotframe.add_cell(
            Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.TX | CellOption.SHARED,
                neighbor=new_parent,
                purpose=CellPurpose.UNICAST_DATA,
                label="msf-autonomous-tx",
            )
        )
        self._bootstrap_with_parent()

    def on_child_added(self, child: int) -> None:
        self._ensure_downward_cell(child)

    def _ensure_downward_cell(self, child: int) -> None:
        """Autonomous shared Tx cell towards a child, at the *child's* SAX
        coordinates (receiver-based): carries 6P responses and any downward
        traffic.  Installed on DAO or on the first 6P request from the child,
        whichever comes first."""
        if child in self._downward_cells:
            return
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        slot, channel = self._autonomous_cell(child)
        self._downward_cells[child] = slotframe.add_cell(
            Cell(
                slot_offset=slot,
                channel_offset=channel,
                options=CellOption.TX | CellOption.SHARED,
                neighbor=child,
                purpose=CellPurpose.UNICAST_DATA,
                label="msf-autonomous-tx-child",
            )
        )

    def on_child_removed(self, child: int) -> None:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        if slotframe is None:
            return
        cell = self._downward_cells.pop(child, None)
        if cell is not None:
            slotframe.remove_cell(cell)
        for rx_cell in self._rx_cells_by_child.pop(child, []):
            slotframe.remove_cell(rx_cell)
            self.cells_relocated += 1

    # ------------------------------------------------------------------
    # 6P initiator side (this node's role as a child)
    # ------------------------------------------------------------------
    def _bootstrap_with_parent(self) -> None:
        """Queue the first negotiated Tx cell (RFC 9033 Section 5.1).

        A timeout resets ``_requested_initial`` and the next housekeeping
        tick lands back here, so the bootstrap self-heals exactly like
        GT-TSCH's.
        """
        if not self._requested_initial and not self._tx_negotiated:
            self._requested_initial = True
            self._queue_add(1)
        self._pump_requests()

    def _queue_add(self, num_cells: int) -> None:
        # Replace any stale queued ADD so slow 6P rounds cannot pile up
        # outdated requests (same rule as GT-TSCH's load-balance tick).
        self._request_queue = [
            request
            for request in self._request_queue
            if request.command is not SixPCommand.ADD
        ]
        self._request_queue.append(_MsfRequest(SixPCommand.ADD, num_cells, []))

    def _pump_requests(self) -> None:
        """Send the next queued 6P request if none is in flight."""
        parent = self.node.rpl.preferred_parent
        if parent is None or not self._request_queue:
            return
        if self.node.sixtop.has_pending_transaction(parent):
            return
        request = self._request_queue.pop(0)
        # Keep the shared cells towards the parent open for the response
        # while the transaction is in flight.
        self.node.tsch.quiet_shared_neighbors.add(parent)
        if request.command is SixPCommand.ADD:
            self.add_requests_sent += 1
            # RFC 8480: propose offsets free on our side so the parent never
            # grants a timeslot we already use.
            candidates = [
                CellDescriptor(offset, 0) for offset in self._free_offsets()
            ]
            self.node.sixtop.send_request(
                parent,
                SixPCommand.ADD,
                num_cells=request.num_cells,
                cell_list=candidates,
                metadata={"purpose": "data"},
                callback=self._on_add_response,
            )
        else:
            self.delete_requests_sent += 1
            self.node.sixtop.send_request(
                parent,
                SixPCommand.DELETE,
                num_cells=request.num_cells,
                cell_list=request.cell_list,
                metadata={"purpose": "data"},
                callback=self._on_delete_response,
            )

    def _free_offsets(self) -> list:
        """Slot offsets with no cell of ours (slot 0 is the shared cell)."""
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        occupied = {cell.slot_offset for cell in slotframe.all_cells()}
        return [
            offset
            for offset in range(1, self.config.slotframe_length)
            if offset not in occupied
        ]

    def _on_add_response(
        self, peer: int, request: SixPMessage, response: Optional[SixPMessage]
    ) -> None:
        self.node.tsch.quiet_shared_neighbors.discard(peer)
        if response is None or response.return_code is not SixPReturnCode.SUCCESS:
            # Timeout or parent out of resources: retry from the next
            # housekeeping tick (via the reset bootstrap flag).
            if not self._tx_negotiated:
                self._requested_initial = False
            self._pump_requests()
            return
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        for descriptor in response.cell_list:
            if slotframe.cells_at_offset(descriptor.slot_offset):
                # The offset was committed between request and response
                # (typically an Rx grant to one of our own children); the
                # parent's orphan Rx cell is deleted by the low-usage path.
                continue
            cell = slotframe.add_cell(
                Cell(
                    slot_offset=descriptor.slot_offset,
                    channel_offset=descriptor.channel_offset,
                    options=CellOption.TX,
                    neighbor=peer,
                    purpose=CellPurpose.UNICAST_DATA,
                    label="msf-negotiated-tx",
                )
            )
            self._tx_negotiated.append(cell)
            self.cells_relocated += 1
        self._pump_requests()

    def _on_delete_response(
        self, peer: int, request: SixPMessage, response: Optional[SixPMessage]
    ) -> None:
        self.node.tsch.quiet_shared_neighbors.discard(peer)
        if response is not None and response.return_code is SixPReturnCode.SUCCESS:
            slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
            removed = {descriptor.slot_offset for descriptor in response.cell_list}
            for cell in list(self._tx_negotiated):
                if cell.slot_offset in removed:
                    slotframe.remove_cell(cell)
                    self._tx_negotiated.remove(cell)
                    self.cells_relocated += 1
        self._pump_requests()

    # ------------------------------------------------------------------
    # 6P responder side (this node's role as a parent)
    # ------------------------------------------------------------------
    def on_sixp_request(
        self, peer: int, message: SixPMessage
    ) -> tuple[SixPReturnCode, dict[str, Any]]:
        # The request proves the peer routes through us; make sure the
        # response has a way back even before its DAO is processed.
        self._ensure_downward_cell(peer)
        if message.command is SixPCommand.ADD:
            return self._answer_add(peer, message)
        if message.command is SixPCommand.DELETE:
            return self._answer_delete(peer, message)
        return SixPReturnCode.ERR, {}

    def _answer_add(self, peer: int, message: SixPMessage) -> tuple[SixPReturnCode, dict[str, Any]]:
        count = max(1, message.num_cells)
        allowed = (
            {descriptor.slot_offset for descriptor in message.cell_list}
            if message.cell_list
            else None
        )
        offsets = [
            offset
            for offset in self._free_offsets()
            if allowed is None or offset in allowed
        ][:count]
        if not offsets:
            return SixPReturnCode.ERR_NORES, {}
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        channel = self._pair_channel(peer)
        granted: list[CellDescriptor] = []
        for offset in offsets:
            cell = slotframe.add_cell(
                Cell(
                    slot_offset=offset,
                    channel_offset=channel,
                    options=CellOption.RX | CellOption.ALWAYS_ON,
                    neighbor=peer,
                    purpose=CellPurpose.UNICAST_DATA,
                    label="msf-negotiated-rx",
                )
            )
            self._rx_cells_by_child.setdefault(peer, []).append(cell)
            granted.append(CellDescriptor(offset, channel))
        self.cells_relocated += len(granted)
        return SixPReturnCode.SUCCESS, {
            "cell_list": granted,
            "num_cells": len(granted),
            "metadata": {"purpose": "data"},
        }

    def _answer_delete(
        self, peer: int, message: SixPMessage
    ) -> tuple[SixPReturnCode, dict[str, Any]]:
        slotframe = self.node.tsch.get_slotframe(self.SLOTFRAME_HANDLE)
        my_cells = self._rx_cells_by_child.get(peer, [])
        requested = {descriptor.slot_offset for descriptor in message.cell_list}
        if not requested and message.num_cells > 0:
            requested = {cell.slot_offset for cell in my_cells[-message.num_cells:]}
        removed: list[CellDescriptor] = []
        for cell in list(my_cells):
            if cell.slot_offset in requested:
                slotframe.remove_cell(cell)
                my_cells.remove(cell)
                removed.append(CellDescriptor(cell.slot_offset, cell.channel_offset))
        self.cells_relocated += len(removed)
        return SixPReturnCode.SUCCESS, {"cell_list": removed, "num_cells": len(removed)}

    # ------------------------------------------------------------------
    # cell-usage adaptation (RFC 9033 Section 5.1)
    # ------------------------------------------------------------------
    def on_tx_done(self, packet: Packet, success: bool) -> None:
        parent = self.node.rpl.preferred_parent
        if (
            parent is not None
            and packet.ptype is PacketType.DATA
            and packet.link_destination == parent
        ):
            self._num_cells_used += 1

    def _housekeeping_tick(self) -> None:
        node = self.node
        now = node.event_queue.now
        delta_s = now - self._last_tick_now
        self._last_tick_now = now
        parent = node.rpl.preferred_parent
        if parent is None or node.is_root:
            self._num_cells_elapsed = 0
            self._num_cells_used = 0
            return
        # Self-healing bootstrap: a timed-out initial ADD reset its flag.
        self._bootstrap_with_parent()

        # Elapsed negotiated-cell opportunities, computed arithmetically from
        # the tick interval (each cell fires once per slotframe) -- never by
        # counting slots, which the fast kernel skips.
        slot_s = node.config.tsch.slot_duration_s
        elapsed_frames = int(delta_s / (slot_s * self.config.slotframe_length))
        self._num_cells_elapsed += elapsed_frames * max(1, len(self._tx_negotiated))
        if self._num_cells_elapsed < self.config.max_numcells:
            return
        used = self._num_cells_used
        self._num_cells_elapsed = 0
        self._num_cells_used = 0
        if (
            used >= self.config.lim_numcells_high
            and len(self._tx_negotiated) < self.config.max_negotiated_tx
        ):
            self._queue_add(1)
        elif used <= self.config.lim_numcells_low and len(self._tx_negotiated) > 1:
            victim = max(self._tx_negotiated, key=lambda cell: cell.slot_offset)
            self._request_queue.append(
                _MsfRequest(
                    SixPCommand.DELETE,
                    1,
                    [CellDescriptor(victim.slot_offset, victim.channel_offset)],
                )
            )
        self._pump_requests()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def relocation_count(self) -> int:
        return self.cells_relocated

    def load_balance_period_s(self) -> float:
        return self.config.housekeeping_period_s

    def negotiated_tx_cell_count(self) -> int:
        return len(self._tx_negotiated)

    def negotiated_rx_cell_count(self) -> int:
        return sum(len(cells) for cells in self._rx_cells_by_child.values())


@register_scheduler(MsfScheduler.name)
def _build_msf(contiki: Any) -> Any:
    """Registry builder: fresh per-node config, like every first-party SF."""
    return lambda node_id, is_root: MsfScheduler(msf_config_from(contiki))
