"""Radio / physical-layer models.

This package replaces the Cooja UDGM radio medium used in the paper's
evaluation with an equivalent software model:

* :mod:`repro.phy.propagation` -- link-quality (PRR) models as a function of
  distance, plus per-link overrides for crafted topologies.
* :mod:`repro.phy.medium` -- the per-slot arbitration of all concurrent
  transmissions: who hears whom, collisions (including the hidden-terminal
  case motivating the paper's channel-allocation rules), and ACK outcomes.
* :mod:`repro.phy.linkstats` -- per-link transmission statistics from which
  nodes estimate ETX.
"""

from repro.phy.dynamic import (
    DynamicMediumDriver,
    DynamicMediumPolicy,
    default_drift_policy,
)
from repro.phy.linkstats import EtxEstimator, LinkStats
from repro.phy.medium import Medium, TransmissionIntent, TransmissionResult
from repro.phy.propagation import (
    FixedPrrModel,
    LogisticPrrModel,
    PropagationModel,
    UnitDiskLossyEdgeModel,
)

__all__ = [
    "PropagationModel",
    "UnitDiskLossyEdgeModel",
    "LogisticPrrModel",
    "FixedPrrModel",
    "Medium",
    "TransmissionIntent",
    "TransmissionResult",
    "EtxEstimator",
    "LinkStats",
    "DynamicMediumPolicy",
    "DynamicMediumDriver",
    "default_drift_policy",
]
