"""Link-quality (packet reception ratio) models.

The paper's testbed uses Zolertia Firefly motes emulated in Cooja, whose
default radio medium is the Unit Disk Graph Medium (UDGM): frames are received
with a configurable success ratio inside the transmission range, and
transmissions inside the (larger) interference range corrupt concurrent
receptions.  :class:`UnitDiskLossyEdgeModel` reproduces that behaviour with an
additional lossy edge band so ETX varies smoothly with distance, which is what
drives the link-quality cost term of the GT-TSCH game (Eq. (5)).

All models answer two questions about an ordered pair of positions:

* ``prr(a, b)`` -- probability that a frame sent from ``a`` is correctly
  decoded at ``b`` in the absence of interference;
* ``in_interference_range(a, b)`` -- whether energy from a transmitter at
  ``a`` is strong enough at ``b`` to corrupt another reception (even if it is
  too weak to be decoded).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

Position = tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two 2-D positions (metres)."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class PropagationModel:
    """Interface for link-quality models."""

    def prr(self, a: Position, b: Position) -> float:
        """Interference-free packet reception ratio for a frame a -> b."""
        raise NotImplementedError

    def in_interference_range(self, a: Position, b: Position) -> bool:
        """Whether a transmission at ``a`` can corrupt a reception at ``b``."""
        raise NotImplementedError

    def in_communication_range(self, a: Position, b: Position) -> bool:
        """Whether a frame from ``a`` has a non-negligible chance of decoding at ``b``."""
        return self.prr(a, b) > 0.0


@dataclass
class UnitDiskLossyEdgeModel(PropagationModel):
    """Unit-disk radio with a lossy outer edge (Cooja-UDGM-like).

    * within ``reliable_range``: PRR equals ``prr_max``;
    * between ``reliable_range`` and ``communication_range``: PRR decays
      linearly from ``prr_max`` down to ``prr_edge``;
    * beyond ``communication_range``: PRR is zero;
    * within ``interference_range`` (>= communication range): the transmitter
      still corrupts concurrent receptions at the same channel.

    Distances are in metres; the defaults model a short-range 2.4 GHz
    802.15.4 deployment comparable to the indoor layouts used in the paper.
    """

    reliable_range: float = 30.0
    communication_range: float = 45.0
    interference_range: float = 70.0
    prr_max: float = 0.97
    prr_edge: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 < self.reliable_range <= self.communication_range <= self.interference_range):
            raise ValueError(
                "ranges must satisfy 0 < reliable <= communication <= interference"
            )
        if not (0.0 <= self.prr_edge <= self.prr_max <= 1.0):
            raise ValueError("PRRs must satisfy 0 <= prr_edge <= prr_max <= 1")

    def prr(self, a: Position, b: Position) -> float:
        d = distance(a, b)
        if d <= self.reliable_range:
            return self.prr_max
        if d >= self.communication_range:
            return 0.0
        span = self.communication_range - self.reliable_range
        fraction = (d - self.reliable_range) / span
        return self.prr_max - fraction * (self.prr_max - self.prr_edge)

    def in_interference_range(self, a: Position, b: Position) -> bool:
        return distance(a, b) <= self.interference_range


@dataclass
class LogisticPrrModel(PropagationModel):
    """Smooth logistic PRR-vs-distance curve.

    ``prr(d) = prr_max / (1 + exp(steepness * (d - midpoint)))``

    Useful for experiments that need gradually degrading links (e.g. the
    link-quality ablation), where the piecewise-linear unit-disk edge would
    introduce artificial thresholds.
    """

    midpoint: float = 35.0
    steepness: float = 0.25
    prr_max: float = 0.98
    interference_range: float = 80.0
    #: PRRs below this value are clamped to zero (link considered unusable).
    prr_floor: float = 0.01

    def prr(self, a: Position, b: Position) -> float:
        d = distance(a, b)
        value = self.prr_max / (1.0 + math.exp(self.steepness * (d - self.midpoint)))
        return value if value >= self.prr_floor else 0.0

    def in_interference_range(self, a: Position, b: Position) -> bool:
        return distance(a, b) <= self.interference_range


class FixedPrrModel(PropagationModel):
    """Per-link PRR table with a default, for hand-crafted topologies.

    Tests and the illustrative examples (the 7-node DAG of Fig. 6, the
    interference cases of Fig. 2) use this model to pin exact link qualities
    regardless of node positions.
    """

    def __init__(
        self,
        default_prr: float = 0.0,
        interference_pairs: Optional[set] = None,
        symmetric: bool = True,
    ) -> None:
        if not 0.0 <= default_prr <= 1.0:
            raise ValueError("default_prr must be within [0, 1]")
        self.default_prr = default_prr
        self.symmetric = symmetric
        self._links: dict[tuple[Position, Position], float] = {}
        self._interference_pairs = interference_pairs or set()
        #: Optional mapping from position to an identifier, purely cosmetic.
        self.labels: dict[Position, str] = {}

    def set_link(self, a: Position, b: Position, prr: float) -> None:
        """Set the PRR for the ordered link a -> b (and b -> a if symmetric)."""
        if not 0.0 <= prr <= 1.0:
            raise ValueError("prr must be within [0, 1]")
        self._links[(a, b)] = prr
        if self.symmetric:
            self._links[(b, a)] = prr

    def add_interference(self, a: Position, b: Position) -> None:
        """Declare that a transmitter at ``a`` interferes with receptions at ``b``."""
        self._interference_pairs.add((a, b))
        if self.symmetric:
            self._interference_pairs.add((b, a))

    def prr(self, a: Position, b: Position) -> float:
        return self._links.get((a, b), self.default_prr)

    def in_interference_range(self, a: Position, b: Position) -> bool:
        if (a, b) in self._interference_pairs:
            return True
        # Any pair that can communicate also interferes.
        return self.prr(a, b) > 0.0
