"""Per-link transmission statistics and ETX estimation.

The GT-TSCH game uses the Expected Transmission Count (ETX) of the link to the
preferred parent as its link-quality signal (Eq. (4): ``ETX = 1 / PRR``).  On
real motes ETX is estimated from unicast transmission outcomes (ACK received
or not); this module reproduces the Contiki-NG ``link-stats`` behaviour: an
exponentially weighted moving average over per-transmission outcomes, seeded
with a configurable initial guess for fresh links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.state import LocalBacking, NodeStateStore, bind_backing

#: Contiki-NG expresses ETX in fixed point with a divisor of 128; we keep
#: floating point but bound the estimate the same way (1..16 transmissions).
ETX_MIN = 1.0
ETX_MAX = 16.0


@dataclass
class LinkStats:
    """Raw counters for a single directed link."""

    tx_attempts: int = 0
    tx_successes: int = 0
    rx_frames: int = 0
    last_tx_time: float = 0.0
    last_rx_time: float = 0.0

    @property
    def prr(self) -> float:
        """Empirical packet reception ratio measured from unicast attempts."""
        if self.tx_attempts == 0:
            return 0.0
        return self.tx_successes / self.tx_attempts


class EtxEstimator:
    """EWMA-based ETX estimator over unicast transmission outcomes.

    Parameters
    ----------
    alpha:
        EWMA weight given to the previous estimate (Contiki-NG uses 90 %
        "old" / 10 % "new" per transmission batch; we apply it per attempt).
    initial_etx:
        Estimate used before any feedback is available.  Contiki-NG
        initialises fresh links at 2 transmissions.
    """

    def __init__(self, alpha: float = 0.9, initial_etx: float = 2.0) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        if not ETX_MIN <= initial_etx <= ETX_MAX:
            raise ValueError("initial_etx must lie within [ETX_MIN, ETX_MAX]")
        self.alpha = alpha
        self.initial_etx = initial_etx
        self._etx: dict[int, float] = {}
        self._stats: dict[int, LinkStats] = {}
        #: Monotonic counter bumped whenever any neighbor's ETX estimate may
        #: have changed (a transmission outcome or a reset; received frames
        #: leave the estimate untouched).  RPL's rank memoisation compares it
        #: to decide whether a reception can settle without re-ranking.
        #: Stored in the node's struct-of-arrays row once bound (see
        #: :meth:`bind`): neighbours' rank-memo stamps compare against the
        #: ``etx_version`` column without touching this object.
        self._backing = LocalBacking()
        self._row = 0
        self.version = 0
        #: Per-neighbor flavour of :attr:`version`: bumped only when *that*
        #: link's estimate may have changed, so a stale candidate rank is
        #: re-scored for exactly the dirtied neighbor.
        self.neighbor_versions: dict[int, int] = {}

    @property
    def version(self) -> int:
        return int(self._backing.etx_version[self._row])

    @version.setter
    def version(self, value: int) -> None:
        self._backing.etx_version[self._row] = value

    def bind(self, store: NodeStateStore, row: int) -> None:
        """Move the estimator's version stamp onto ``store[row]``."""
        bind_backing(self, store, row, ("etx_version",))

    def stats(self, neighbor: int) -> LinkStats:
        """Raw counters for the link towards ``neighbor`` (created on demand)."""
        if neighbor not in self._stats:
            self._stats[neighbor] = LinkStats()
        return self._stats[neighbor]

    def etx(self, neighbor: int) -> float:
        """Current ETX estimate for the link towards ``neighbor``."""
        return self._etx.get(neighbor, self.initial_etx)

    def neighbor_version(self, neighbor: int) -> int:
        """Version of the ETX estimate towards ``neighbor`` (0 = untouched)."""
        return self.neighbor_versions.get(neighbor, 0)

    def prr(self, neighbor: int) -> float:
        """PRR implied by the current ETX estimate (Eq. (4) inverted)."""
        return 1.0 / self.etx(neighbor)

    def record_tx(self, neighbor: int, success: bool, attempts: int = 1, now: float = 0.0) -> float:
        """Record the outcome of one unicast transmission (with retries).

        ``attempts`` is the number of over-the-air transmissions it took to
        either receive an ACK (``success=True``) or give up
        (``success=False``).  Returns the updated ETX estimate.
        """
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        stats = self.stats(neighbor)
        stats.tx_attempts += attempts
        if success:
            stats.tx_successes += 1
        stats.last_tx_time = now

        # The instantaneous sample is the number of attempts this packet
        # needed; a failed packet is penalised as if it needed one more
        # attempt than the retry limit allowed.
        sample = float(attempts if success else attempts + 1)
        sample = min(max(sample, ETX_MIN), ETX_MAX)
        previous = self._etx.get(neighbor, self.initial_etx)
        updated = self.alpha * previous + (1.0 - self.alpha) * sample
        self._etx[neighbor] = min(max(updated, ETX_MIN), ETX_MAX)
        self.version += 1
        self.neighbor_versions[neighbor] = self.neighbor_versions.get(neighbor, 0) + 1
        return self._etx[neighbor]

    def record_rx(self, neighbor: int, now: float = 0.0) -> None:
        """Record a frame received from ``neighbor`` (used for neighbor freshness).

        Broadcast-heavy scenarios hit this once per decoded frame per
        receiver, so the stats entry is fetched with a plain dict get (the
        miss path allocates at most once per neighbor).
        """
        stats = self._stats.get(neighbor)
        if stats is None:
            stats = self._stats[neighbor] = LinkStats()
        stats.rx_frames += 1
        stats.last_rx_time = now

    def known_neighbors(self) -> set[int]:
        """Neighbors for which any statistic exists."""
        return set(self._stats) | set(self._etx)

    def reset(self, neighbor: int) -> None:
        """Forget everything about ``neighbor`` (e.g. after a parent switch)."""
        self._etx.pop(neighbor, None)
        self._stats.pop(neighbor, None)
        self.version += 1
        self.neighbor_versions[neighbor] = self.neighbor_versions.get(neighbor, 0) + 1
