"""Epoch-varying link quality: the dynamic-medium policy.

Every static scenario freezes the :class:`~repro.phy.medium.Medium` once and
runs against one immutable PRR table — the least production-like regime.  A
:class:`DynamicMediumPolicy` describes a *seeded epoch schedule* of per-link
PRR perturbations layered on top of the frozen tables: at every epoch
boundary a fresh per-link scale-vector table is drawn from a stream derived
purely from ``(policy seed, epoch index)`` and applied through
:meth:`~repro.phy.medium.Medium.set_link_prr_scales`, which re-freezes the
dense rows from the pristine base without unfreezing the medium.  After the
last epoch the pristine tables are restored bit-exactly.

Determinism contract: the epoch boundaries are ordinary
:class:`~repro.sim.events.EventQueue` callbacks at absolute times, drained at
slot boundaries by both slot loops through the same ``run_until`` calls, and
each epoch's table is a pure function of the policy — no state is carried
between epochs and no draw depends on the simulation's own streams.  The
fast kernel therefore stays bit-identical to ``step_slot_reference`` under
link drift (proven by ``TestDynamicEquivalence``), and the sweep engine's
frozen-snapshot cache stays poison-free because
:meth:`~repro.phy.medium.Medium.export_frozen` refuses to snapshot while an
epoch is open and stamps every snapshot with the medium's epoch count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random  # reprolint: disable=RL001

    from repro.net.network import Network

__all__ = ["DynamicMediumPolicy", "DynamicMediumDriver", "default_drift_policy"]


@dataclass(frozen=True)
class DynamicMediumPolicy:
    """A seeded schedule of per-link PRR perturbation epochs.

    ``num_epochs`` epochs of ``epoch_s`` seconds start at ``start_s``; during
    epoch ``i`` every directed link is, with probability ``link_fraction``,
    scaled by a factor drawn uniformly from ``[scale_low, scale_high]`` (the
    rest keep scale 1.0).  Draws come from a stream named after the epoch
    index in a registry seeded by ``seed`` alone, so the schedule is a pure
    function of the policy — independent of the simulation seed, the slot
    loop, and of anything the network does.  After the last epoch the medium
    returns to its pristine frozen tables.

    The class is frozen and slotted: it is part of the scenario fingerprint
    (the result cache hashes its fields) and must never mutate mid-run.
    """

    __slots__ = (
        "seed",
        "start_s",
        "epoch_s",
        "num_epochs",
        "scale_low",
        "scale_high",
        "link_fraction",
    )

    seed: int
    start_s: float
    epoch_s: float
    num_epochs: int
    scale_low: float
    scale_high: float
    link_fraction: float

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.epoch_s <= 0.0:
            raise ValueError(f"epoch_s must be positive, got {self.epoch_s}")
        if self.num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {self.num_epochs}")
        if not 0.0 < self.scale_low <= self.scale_high <= 1.0:
            raise ValueError(
                "scales must satisfy 0 < scale_low <= scale_high <= 1, got "
                f"[{self.scale_low}, {self.scale_high}]"
            )
        if not 0.0 <= self.link_fraction <= 1.0:
            raise ValueError(
                f"link_fraction must be in [0, 1], got {self.link_fraction}"
            )

    def end_s(self) -> float:
        """Absolute time at which the last epoch closes."""
        return self.start_s + self.num_epochs * self.epoch_s


def default_drift_policy(
    seed: int = 1,
    start_s: float = 0.0,
    epoch_s: float = 5.0,
    num_epochs: int = 3,
    scale_low: float = 0.5,
    scale_high: float = 0.9,
    link_fraction: float = 0.3,
) -> DynamicMediumPolicy:
    """Build a :class:`DynamicMediumPolicy` with sensible defaults.

    The policy dataclass itself carries no field defaults (slotted frozen
    dataclasses with defaults need Python 3.10's ``slots=True``; the repo
    supports 3.9), so this factory is the ergonomic front door.
    """
    return DynamicMediumPolicy(
        seed=seed,
        start_s=start_s,
        epoch_s=epoch_s,
        num_epochs=num_epochs,
        scale_low=scale_low,
        scale_high=scale_high,
        link_fraction=link_fraction,
    )


class DynamicMediumDriver:
    """Arms one :class:`DynamicMediumPolicy` on a network's event queue."""

    __slots__ = ("network", "policy", "armed")

    def __init__(self, network: "Network", policy: DynamicMediumPolicy) -> None:
        self.network = network
        self.policy = policy
        self.armed = False

    def arm(self) -> None:
        """Schedule every epoch boundary plus the final restore (idempotent)."""
        if self.armed:
            return
        events = self.network.events
        policy = self.policy
        for index in range(policy.num_epochs):
            events.schedule(
                policy.start_s + index * policy.epoch_s,
                self._begin_epoch,
                index,
                label=f"medium-epoch.{index}",
            )
        events.schedule(policy.end_s(), self._restore, label="medium-epoch-restore")
        self.armed = True

    def draw_scale_rows(self, index: int) -> dict[int, list[float]]:
        """Epoch ``index``'s per-link scale table (pure function, no state).

        A fresh stream is derived per call from ``(policy.seed, index)``, so
        the same epoch always yields the same table regardless of which slot
        loop (or test) asks, and regardless of how often.
        """
        policy = self.policy
        rng: random.Random = RngRegistry(policy.seed).stream(f"medium.epoch.{index}")
        ids = list(self.network.medium.node_ids())
        rows: dict[int, list[float]] = {}
        for sender in ids:
            row: list[float] = []
            for _listener in ids:
                if rng.random() < policy.link_fraction:
                    row.append(rng.uniform(policy.scale_low, policy.scale_high))
                else:
                    row.append(1.0)
            rows[sender] = row
        return rows

    def _begin_epoch(self, index: int) -> None:
        metrics = self.network.metrics
        if metrics is not None:
            metrics.on_fault_injected("link-drift", self.network.events.now)
        self.network.medium.set_link_prr_scales(self.draw_scale_rows(index))

    def _restore(self) -> None:
        self.network.medium.set_link_prr_scales(None)


def arm_link_drift(
    network: "Network", policy: Optional[DynamicMediumPolicy]
) -> Optional[DynamicMediumDriver]:
    """Convenience: build + arm a driver when ``policy`` is given."""
    if policy is None:
        return None
    driver = DynamicMediumDriver(network, policy)
    driver.arm()
    return driver
