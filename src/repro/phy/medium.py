"""Per-slot arbitration of concurrent transmissions (the radio medium).

In a TSCH network every synchronised node acts within the same timeslot, so
the medium can be resolved slot-by-slot:

1.  every node declares an *intent*: transmit a frame on a physical channel,
    listen on a physical channel, or sleep;
2.  the medium groups transmissions per physical channel and decides, for
    every listener, whether it decodes a frame, hears a collision, or hears
    nothing;
3.  for unicast frames the medium also resolves the acknowledgement sent by
    the receiver in the same slot.

The collision rules intentionally reproduce the four interference problems of
Section III of the paper (same-slot parent/child conflicts, sibling conflicts,
uncle conflicts, hidden terminals): any listener that is within interference
range of two or more simultaneous transmitters on its channel decodes
nothing.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Optional

from repro.net.packet import BROADCAST_ADDRESS, Packet
from repro.phy.propagation import Position, PropagationModel
from repro.sim.accel import numpy_or_none

if TYPE_CHECKING:
    import random  # reprolint: disable=RL001

# Optional accelerator: the container ships numpy, CI may not (and
# REPRO_NO_NUMPY=1 forces the pure-Python fallback for equivalence tests).
_np = numpy_or_none()


class TransmissionIntent:
    """A node's decision to transmit a frame in the current slot.

    Hand-rolled ``__slots__`` class (not a dataclass): one is allocated per
    transmission on the kernel's hot path.
    """

    __slots__ = ("sender", "packet", "channel", "expects_ack")

    def __init__(
        self,
        sender: int,
        packet: Packet,
        channel: int,
        expects_ack: bool = True,
    ) -> None:
        self.sender = sender
        self.packet = packet
        self.channel = channel
        #: True when the sender expects a link-layer ACK (unicast data/6P).
        self.expects_ack = expects_ack

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TransmissionIntent(sender={self.sender}, channel={self.channel}, "
            f"packet={self.packet!r})"
        )


class TransmissionResult:
    """Outcome of one transmission intent after medium arbitration.

    ``__slots__`` class for the same hot-path reason as its intent.
    """

    __slots__ = ("intent", "receivers", "delivered", "acked", "collided")

    def __init__(
        self,
        intent: TransmissionIntent,
        receivers: Optional[list[int]] = None,
        delivered: bool = False,
        acked: bool = False,
        collided: bool = False,
    ) -> None:
        self.intent = intent
        #: Node ids that decoded the frame.
        self.receivers = [] if receivers is None else receivers
        #: Whether the intended unicast destination decoded the frame.
        self.delivered = delivered
        #: Whether the sender received the link-layer ACK (unicast only).
        self.acked = acked
        #: True when the frame was lost because of a collision at the
        #: intended destination (as opposed to channel error).
        self.collided = collided

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TransmissionResult(delivered={self.delivered}, acked={self.acked}, "
            f"collided={self.collided}, receivers={self.receivers})"
        )


class Medium:
    """The shared radio medium: positions, propagation, per-slot arbitration."""

    def __init__(
        self,
        propagation: PropagationModel,
        rng: random.Random,
        ack_prr_scale: float = 1.0,
    ) -> None:
        """
        Parameters
        ----------
        propagation:
            Model answering PRR / interference-range queries.
        rng:
            ``random.Random`` stream used for packet-loss draws.
        ack_prr_scale:
            Multiplier applied to the reverse-link PRR when resolving ACKs
            (ACK frames are short, so they often survive links that drop full
            data frames; 1.0 keeps both identical).
        """
        self.propagation = propagation
        self.rng = rng
        self.ack_prr_scale = ack_prr_scale
        #: When False, arbitration always takes the general grouped path (the
        #: reference implementation); the single-transmitter shortcut below is
        #: identical in results and RNG draws, it only skips the bookkeeping.
        self.fast_paths = True
        self._positions: dict[int, Position] = {}
        # Caches keyed by ordered node-id pair; the topology is static after
        # build, so propagation queries are answered at most once per pair.
        self._prr_cache: dict[tuple[int, int], float] = {}
        self._interf_cache: dict[tuple[int, int], bool] = {}
        self._neighbors_cache: dict[tuple[int, float], list[int]] = {}
        #: Dense matrix state (populated by :meth:`freeze`): node id ->
        #: contiguous index, and per-sender rows indexed by listener index.
        self._frozen = False
        self._index_of: dict[int, int] = {}
        self._ids: list[int] = []
        self._prr_rows: dict[int, list[float]] = {}
        self._interf_rows: dict[int, list[bool]] = {}
        self._audience: dict[int, frozenset] = {}
        #: Link-degradation epochs (fault injection): the pristine frozen
        #: PRR rows, kept aside the first time :meth:`set_prr_scale`
        #: degrades the medium so ending the last epoch restores them
        #: bit-exactly, and the scale currently applied.
        self._prr_base_rows: Optional[dict[int, list[float]]] = None
        self._prr_scale = 1.0
        #: Per-link scale vectors (dynamic-medium epochs): sender id ->
        #: per-listener multipliers composed on top of the scalar scale.
        #: ``None`` means no per-link epoch is open.
        self._link_scale_rows: Optional[dict[int, list[float]]] = None
        #: Monotonic count of per-link epoch transitions since freeze();
        #: stamped into :meth:`export_frozen` snapshots so the sweep engine's
        #: warm-pool frozen cache can prove it only ever serves epoch-0
        #: (pristine) tables.
        self._link_epoch = 0
        #: Dense boolean interference matrix (numpy, when available): row =
        #: sender index, column = listener index.  Pure accelerator for the
        #: audible-count scan of :meth:`_resolve_same_channel`; the list
        #: tables above remain the source of truth (PRR floats in
        #: particular are always read from them, so every RNG comparison
        #: uses exactly the reference values).
        self._np_interf = None
        #: Dense float64 PRR matrix, same indexing.  Unlike ``_np_interf``
        #: it is also an *RNG comparison* input on the batched broadcast
        #: path, which stays bit-identical because float64 round-trips the
        #: list values exactly; it is rebuilt whenever ``_prr_rows`` is
        #: replaced (freeze, adopt, link-degradation epochs).
        self._np_prr = None
        #: Counters for diagnostics / tests.
        self.total_transmissions = 0
        self.total_collisions = 0

    # ------------------------------------------------------------------
    # topology registration
    # ------------------------------------------------------------------
    def register_node(self, node_id: int, position: Position) -> None:
        """Register (or move) a node at ``position``."""
        self._positions[node_id] = position
        self._prr_cache.clear()
        self._interf_cache.clear()
        self._neighbors_cache.clear()
        # The dense tables are stale the moment the topology changes; the next
        # freeze() recomputes them in one pass.
        self._frozen = False
        self._index_of = {}
        self._ids = []
        self._prr_rows = {}
        self._interf_rows = {}
        self._audience = {}
        self._prr_base_rows = None
        self._prr_scale = 1.0
        self._link_scale_rows = None
        self._link_epoch = 0
        self._np_interf = None
        self._np_prr = None

    @property
    def frozen(self) -> bool:
        """Whether the dense PRR / interference tables are current."""
        return self._frozen

    def freeze(self) -> None:
        """Bulk-precompute every pairwise link query (idempotent).

        Called when the topology is final (the network does this on
        :meth:`~repro.net.network.Network.start`): one pass fills dense N x N
        PRR and interference tables plus the default neighbor lists, so the
        hot arbitration path never hits the lazy per-pair dict-miss path and
        benchmarks see no cold-start jitter from first-use propagation
        queries.  Registering (or moving) a node un-freezes the medium; the
        values are exactly what the lazy path would have computed, so freezing
        never changes simulation results.
        """
        if self._frozen:
            return
        ids = list(self._positions)
        self._ids = ids
        self._index_of = {node_id: index for index, node_id in enumerate(ids)}
        prr = self.propagation.prr
        in_range = self.propagation.in_interference_range
        for a in ids:
            position_a = self._positions[a]
            prr_row: list[float] = []
            interf_row: list[bool] = []
            for b in ids:
                if a == b:
                    prr_row.append(0.0)
                    interf_row.append(False)
                else:
                    prr_row.append(prr(position_a, self._positions[b]))
                    interf_row.append(in_range(position_a, self._positions[b]))
            self._prr_rows[a] = prr_row
            self._interf_rows[a] = interf_row
        for a in ids:
            row = self._prr_rows[a]
            self._neighbors_cache[(a, 0.0)] = [
                b for index, b in enumerate(ids) if b != a and row[index] > 0.0
            ]
            interf_row = self._interf_rows[a]
            self._audience[a] = frozenset(
                b for index, b in enumerate(ids) if interf_row[index]
            )
        if _np is not None and ids:
            self._np_interf = _np.array(
                [self._interf_rows[a] for a in ids], dtype=bool
            )
            self._rebuild_np_prr()
        self._frozen = True

    def export_frozen(self) -> dict:
        """Snapshot the dense tables computed by :meth:`freeze`.

        The tables are a pure function of the node positions and the
        propagation model (no RNG), so a snapshot taken from one network can
        seed any other network with the same topology and model -- the sweep
        engine's workers use this to freeze each distinct topology once per
        process instead of once per scenario cell.  The snapshot shares the
        row lists; callers must treat them as read-only (the simulator does).
        """
        if not self._frozen:
            raise RuntimeError("export_frozen() requires a frozen medium")
        if self._prr_scale != 1.0 or self._link_scale_rows is not None:
            # A snapshot taken mid-epoch would poison every adopter with
            # degraded tables; the sweep engine snapshots right after
            # freeze(), before any fault fires, so this never triggers there.
            raise RuntimeError("export_frozen() during a link-degradation epoch")
        return {
            "ids": self._ids,
            "index_of": self._index_of,
            "prr_rows": self._prr_rows,
            "interf_rows": self._interf_rows,
            "audience": self._audience,
            "neighbors": {key: value for key, value in self._neighbors_cache.items()},
            # Epoch stamp: snapshots are only ever taken at pristine tables
            # (enforced above), so adopters can assert the stamp to prove the
            # warm-pool frozen cache was never fed a mid-epoch table.
            "link_epoch": self._link_epoch,
        }

    def adopt_frozen(self, state: dict) -> bool:
        """Install a :meth:`export_frozen` snapshot instead of recomputing.

        Returns False (leaving the medium untouched, to be frozen normally)
        when the snapshot's node set does not match this medium's -- the
        caller's cache key should make that impossible, but a silent mismatch
        would corrupt every PRR draw, so it is checked.
        """
        if self._frozen:
            return True
        if state["ids"] != list(self._positions):
            return False
        self._ids = state["ids"]
        self._index_of = state["index_of"]
        self._prr_rows = state["prr_rows"]
        self._interf_rows = state["interf_rows"]
        self._audience = state["audience"]
        self._neighbors_cache.update(state["neighbors"])
        # Snapshots are always pristine (export_frozen refuses mid-epoch
        # tables), so the adopter starts a fresh epoch history of its own.
        self._link_epoch = 0
        if _np is not None and self._ids:
            # Rebuilt locally rather than shipped in the snapshot, keeping
            # exported state portable to numpy-less interpreters.
            self._np_interf = _np.array(
                [self._interf_rows[a] for a in self._ids], dtype=bool
            )
            self._rebuild_np_prr()
        self._frozen = True
        return True

    def set_prr_scale(self, scale: float) -> None:
        """Enter (or leave) a link-degradation epoch on a frozen medium.

        Rebuilds the dense PRR tables as ``pristine_row * scale`` without
        unfreezing: interference ranges, audience sets and neighbor
        reachability are untouched (``scale`` is strictly positive, so
        ``prr > 0`` membership is preserved), which keeps the dispatch
        kernel's participant planning valid across epochs.  The pristine
        rows are kept aside on first use and re-installed -- the very same
        list objects, bit-exact -- when the scale returns to 1.0.  Rows are
        always *new* lists, never mutated in place, because snapshots from
        :meth:`export_frozen` (the sweep engine's per-topology freeze
        cache) share them.
        """
        if not self._frozen:
            raise RuntimeError("set_prr_scale() requires a frozen medium")
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"PRR scale must be in (0, 1], got {scale}")
        if scale == self._prr_scale:
            return
        self._prr_scale = scale
        self._recompute_scaled_rows()

    def set_link_prr_scales(
        self, scale_rows: Optional[dict[int, Sequence[float]]]
    ) -> None:
        """Enter (or, with ``None``, leave) a *per-link* scale epoch.

        The dynamic-medium policy (:mod:`repro.phy.dynamic`) perturbs
        individual links rather than the whole medium: ``scale_rows`` maps
        every sender id to a per-listener multiplier vector (same indexing as
        the frozen PRR rows, values in ``(0, 1]`` so audience membership is
        preserved).  The vectors compose multiplicatively with the scalar
        :meth:`set_prr_scale` epochs, and like them they rebuild *new* row
        lists from the pristine base without unfreezing — snapshots from
        :meth:`export_frozen` share the base rows and must never see them
        mutate.  Every transition bumps the epoch stamp checked by
        :meth:`export_frozen`.
        """
        if not self._frozen:
            raise RuntimeError("set_link_prr_scales() requires a frozen medium")
        if scale_rows is None:
            if self._link_scale_rows is None:
                return
            self._link_scale_rows = None
            self._link_epoch += 1
            self._recompute_scaled_rows()
            return
        validated: dict[int, list[float]] = {}
        width = len(self._ids)
        for sender in self._ids:
            row = scale_rows.get(sender)
            if row is None:
                raise ValueError(f"per-link scale rows missing sender {sender}")
            values = list(row)
            if len(values) != width:
                raise ValueError(
                    f"per-link scale row for sender {sender} has "
                    f"{len(values)} entries, expected {width}"
                )
            for value in values:
                if not 0.0 < value <= 1.0:
                    raise ValueError(
                        f"per-link PRR scale must be in (0, 1], got {value}"
                    )
            validated[sender] = values
        self._link_scale_rows = validated
        self._link_epoch += 1
        self._recompute_scaled_rows()

    def _recompute_scaled_rows(self) -> None:
        """Rebuild the effective PRR rows: ``base * scalar * per-link``.

        Shared by the scalar and per-link epoch entry points.  The pristine
        rows are kept aside on first use and re-installed — the very same
        list objects, bit-exact — when both scales return to pristine; the
        scalar-only branch keeps the exact historic ``value * scale``
        expression so legacy link-degradation epochs stay bit-identical.
        """
        if self._prr_base_rows is None:
            self._prr_base_rows = self._prr_rows
        base = self._prr_base_rows
        scale = self._prr_scale
        link = self._link_scale_rows
        if scale == 1.0 and link is None:
            self._prr_rows = base
        elif link is None:
            self._prr_rows = {
                sender: [value * scale for value in row]
                for sender, row in base.items()
            }
        elif scale == 1.0:
            self._prr_rows = {
                sender: [value * s for value, s in zip(row, link[sender])]
                for sender, row in base.items()
            }
        else:
            self._prr_rows = {
                sender: [value * scale * s for value, s in zip(row, link[sender])]
                for sender, row in base.items()
            }
        if self._np_interf is not None:
            self._rebuild_np_prr()

    def _rebuild_np_prr(self) -> None:
        """Mirror ``_prr_rows`` into the dense numpy table (frozen media).

        Always rebuilt *from* the list rows so every batched comparison uses
        bit-exact copies of the reference values, including mid-epoch scaled
        rows.
        """
        self._np_prr = _np.array(
            [self._prr_rows[a] for a in self._ids], dtype=float
        )

    @property
    def prr_scale(self) -> float:
        """The link-degradation scale currently applied (1.0 = pristine)."""
        return self._prr_scale

    @property
    def link_epoch(self) -> int:
        """Count of per-link epoch transitions applied since freeze()."""
        return self._link_epoch

    @property
    def in_link_epoch(self) -> bool:
        """Whether a per-link scale epoch is currently open."""
        return self._link_scale_rows is not None

    def audience_of(self, sender: int) -> frozenset:
        """Node ids within interference range of ``sender`` (frozen medium).

        Exactly the listeners that could draw an RNG number or decode when
        ``sender`` transmits; everyone else provably hears nothing, which the
        network's dispatch kernel exploits to leave them unplanned.
        """
        return self._audience[sender]

    def position_of(self, node_id: int) -> Position:
        return self._positions[node_id]

    def node_ids(self) -> Sequence[int]:
        return tuple(self._positions)

    # ------------------------------------------------------------------
    # link queries
    # ------------------------------------------------------------------
    def link_prr(self, sender: int, receiver: int) -> float:
        """Interference-free PRR of the directed link sender -> receiver."""
        if self._frozen:
            return self._prr_rows[sender][self._index_of[receiver]]
        if sender == receiver:
            return 0.0
        key = (sender, receiver)
        if key not in self._prr_cache:
            self._prr_cache[key] = self.propagation.prr(
                self._positions[sender], self._positions[receiver]
            )
        return self._prr_cache[key]

    def interferes(self, transmitter: int, listener: int) -> bool:
        """Whether energy from ``transmitter`` reaches ``listener`` at all."""
        if self._frozen:
            return self._interf_rows[transmitter][self._index_of[listener]]
        if transmitter == listener:
            return False
        key = (transmitter, listener)
        if key not in self._interf_cache:
            self._interf_cache[key] = self.propagation.in_interference_range(
                self._positions[transmitter], self._positions[listener]
            )
        return self._interf_cache[key]

    def neighbors_of(self, node_id: int, min_prr: float = 0.0) -> list[int]:
        """Node ids with a usable link from ``node_id`` (PRR > ``min_prr``).

        Memoised per ``(node, threshold)``; the cache is dropped whenever a
        node registers or moves.  Callers get the cached list itself and must
        treat it as read-only.
        """
        key = (node_id, min_prr)
        neighbors = self._neighbors_cache.get(key)
        if neighbors is None:
            neighbors = [
                other
                for other in self._positions
                if other != node_id and self.link_prr(node_id, other) > min_prr
            ]
            self._neighbors_cache[key] = neighbors
        return neighbors

    # ------------------------------------------------------------------
    # per-slot arbitration
    # ------------------------------------------------------------------
    def resolve_slot(
        self,
        intents: Sequence[TransmissionIntent],
        listeners: dict[int, int],
        listeners_by_channel: Optional[dict[int, list[int]]] = None,
    ) -> list[TransmissionResult]:
        """Arbitrate one timeslot.

        Parameters
        ----------
        intents:
            All transmissions attempted in this slot (across all channels).
        listeners:
            Mapping ``node_id -> physical channel`` for every node whose radio
            is in receive mode this slot.  Transmitting nodes must not appear
            here (half-duplex radios).
        listeners_by_channel:
            Optional ``channel -> listener ids`` grouping of the same
            listeners, with each group preserving the iteration order of
            ``listeners``.  The network's dispatch loop builds it for free
            while planning; when absent it is derived here once per slot.
            Either way both fast paths below share it instead of re-checking
            every listener's channel per intent.

        Returns
        -------
        One :class:`TransmissionResult` per intent, in input order.
        """
        results = [TransmissionResult(intent=intent) for intent in intents]
        self.total_transmissions += len(intents)
        if not intents:
            return results

        channel = intents[0].channel
        if self.fast_paths and all(intent.channel == channel for intent in intents):
            # Fast path for the overwhelmingly common case of every
            # transmission sharing one physical channel (a single transmitter
            # in particular): listeners on other channels can neither decode
            # nor collide, so only the matching channel group is visited.
            # Within the group the listener order equals the order of
            # ``listeners``, so arbitration and RNG draws are identical to
            # the general path below.
            if listeners_by_channel is not None:
                channel_listeners: Sequence[int] = listeners_by_channel.get(channel, ())
            else:
                channel_listeners = [
                    listener for listener, ch in listeners.items() if ch == channel
                ]
            if len(intents) == 1:
                self._resolve_single(intents[0], results[0], channel_listeners)
            else:
                self._resolve_same_channel(intents, results, channel_listeners)
            self._resolve_acks(results)
            return results

        # Group transmitting senders per physical channel.
        per_channel: dict[int, list[int]] = {}
        for index, intent in enumerate(intents):
            per_channel.setdefault(intent.channel, []).append(index)

        for listener, channel in listeners.items():
            indices = per_channel.get(channel)
            if not indices:
                continue
            # Which simultaneous transmitters does this listener hear energy from?
            audible = [i for i in indices if self.interferes(intents[i].sender, listener)]
            if not audible:
                continue
            if len(audible) > 1:
                # Two or more frames overlap at this listener: collision, the
                # listener decodes nothing.  This is exactly the failure mode
                # of problems 1-4 in Section III of the paper.
                for i in audible:
                    if intents[i].packet.link_destination in (listener, BROADCAST_ADDRESS):
                        results[i].collided = True
                self.total_collisions += 1
                continue
            index = audible[0]
            intent = intents[index]
            prr = self.link_prr(intent.sender, listener)
            if prr <= 0.0:
                # Energy is audible (interference range) but too weak to decode.
                continue
            if self.rng.random() <= prr:
                results[index].receivers.append(listener)
                if intent.packet.link_destination == listener:
                    results[index].delivered = True

        self._resolve_acks(results)
        return results

    def _resolve_single(
        self,
        intent: TransmissionIntent,
        result: TransmissionResult,
        channel_listeners: Sequence[int],
    ) -> None:
        """Resolve one transmitter against its channel's listeners (no collision)."""
        destination = intent.packet.link_destination
        rng_random = self.rng.random
        if self._frozen:
            interf_row = self._interf_rows[intent.sender]
            prr_row = self._prr_rows[intent.sender]
            index_of = self._index_of
            if self._np_prr is not None and len(channel_listeners) >= 16:
                # Broadcast-sized audiences (EB/DIO on the frozen topology):
                # mask eligibility in one vectorised pass, then draw the RNG
                # for exactly the eligible listeners, in listener order --
                # the same scalar draws the loop below would make -- and
                # compare the whole batch at once.  float64 copies of the
                # list PRRs make the comparison bit-identical.
                columns = _np.fromiter(
                    (index_of[listener] for listener in channel_listeners),
                    dtype=_np.intp,
                    count=len(channel_listeners),
                )
                sender_row = index_of[intent.sender]
                prr_sub = self._np_prr[sender_row, columns]
                eligible = _np.flatnonzero(
                    self._np_interf[sender_row, columns] & (prr_sub > 0.0)
                )
                if not len(eligible):
                    return
                draws = _np.fromiter(
                    (rng_random() for _ in range(len(eligible))),
                    dtype=float,
                    count=len(eligible),
                )
                received = eligible[draws <= prr_sub[eligible]]
                receivers = result.receivers
                for position in received.tolist():
                    listener = channel_listeners[position]
                    receivers.append(listener)
                    if destination == listener:
                        result.delivered = True
                return
            for listener in channel_listeners:
                index = index_of[listener]
                if not interf_row[index]:
                    continue
                prr = prr_row[index]
                if prr <= 0.0:
                    continue
                if rng_random() <= prr:
                    result.receivers.append(listener)
                    if destination == listener:
                        result.delivered = True
            return
        for listener in channel_listeners:
            if not self.interferes(intent.sender, listener):
                continue
            prr = self.link_prr(intent.sender, listener)
            if prr <= 0.0:
                continue
            if rng_random() <= prr:
                result.receivers.append(listener)
                if destination == listener:
                    result.delivered = True

    def _resolve_same_channel(
        self,
        intents: Sequence[TransmissionIntent],
        results: list[TransmissionResult],
        channel_listeners: Sequence[int],
    ) -> None:
        """Resolve several same-channel transmitters (collisions possible)."""
        if (
            self._np_interf is not None
            and len(intents) >= 3
            and len(channel_listeners) >= 8
        ):
            # Vectorised audible counting (the dense matrix is a pure
            # function of the list tables, and PRR values are still read
            # from the reference lists): same collisions, same marks, same
            # RNG draws in the same listener order as the scans below.
            index_of = self._index_of
            sub = self._np_interf[
                _np.fromiter(
                    (index_of[intent.sender] for intent in intents),
                    dtype=_np.intp,
                    count=len(intents),
                )
            ][
                :,
                _np.fromiter(
                    (index_of[listener] for listener in channel_listeners),
                    dtype=_np.intp,
                    count=len(channel_listeners),
                ),
            ]
            counts = sub.sum(axis=0)
            collided_columns = counts > 1
            collisions = int(collided_columns.sum())
            if collisions:
                self.total_collisions += collisions
                # An intent audible at any collided listener it addresses is
                # marked; broadcasts address every listener.
                audible_at_collided = sub[:, collided_columns]
                broadcast_hit = audible_at_collided.any(axis=1)
                collided_listeners = None
                for index, intent in enumerate(intents):
                    destination = intent.packet.link_destination
                    if destination == BROADCAST_ADDRESS:
                        if broadcast_hit[index]:
                            results[index].collided = True
                    else:
                        if collided_listeners is None:
                            collided_listeners = {
                                listener
                                for listener, flag in zip(
                                    channel_listeners, collided_columns.tolist()
                                )
                                if flag
                            }
                        if destination in collided_listeners:
                            column = channel_listeners.index(destination)
                            if sub[index][column]:
                                results[index].collided = True
            if bool((counts == 1).any()):
                senders_of = sub.argmax(axis=0).tolist()
                rng_random = self.rng.random
                for column, count in enumerate(counts.tolist()):
                    if count != 1:
                        continue
                    index = senders_of[column]
                    intent = intents[index]
                    listener = channel_listeners[column]
                    prr = self._prr_rows[intent.sender][index_of[listener]]
                    if prr <= 0.0:
                        continue
                    if rng_random() <= prr:
                        results[index].receivers.append(listener)
                        if intent.packet.link_destination == listener:
                            results[index].delivered = True
            return
        if self._frozen:
            # Dense-table path: per listener, test each sender's precomputed
            # interference row directly -- no per-slot audible-map building,
            # no set allocations.  Listener order equals ``channel_listeners``
            # and audible senders keep intent order, so collisions, PRR draws
            # and the RNG stream are exactly those of the general scan below.
            index_of = self._index_of
            interf = [self._interf_rows[intent.sender] for intent in intents]
            prr_rows = [self._prr_rows[intent.sender] for intent in intents]
            count = len(intents)
            rng_random = self.rng.random
            for listener in channel_listeners:
                column = index_of[listener]
                first = -1
                audible = 0
                for index in range(count):
                    if interf[index][column]:
                        audible += 1
                        if audible == 1:
                            first = index
                if not audible:
                    continue
                if audible > 1:
                    for index in range(count):
                        if interf[index][column] and intents[
                            index
                        ].packet.link_destination in (listener, BROADCAST_ADDRESS):
                            results[index].collided = True
                    self.total_collisions += 1
                    continue
                prr = prr_rows[first][column]
                if prr <= 0.0:
                    continue
                if rng_random() <= prr:
                    results[first].receivers.append(listener)
                    if intents[first].packet.link_destination == listener:
                        results[first].delivered = True
            return
        for listener in channel_listeners:
            audible = [
                index
                for index, intent in enumerate(intents)
                if self.interferes(intent.sender, listener)
            ]
            if not audible:
                continue
            if len(audible) > 1:
                for index in audible:
                    if intents[index].packet.link_destination in (listener, BROADCAST_ADDRESS):
                        results[index].collided = True
                self.total_collisions += 1
                continue
            index = audible[0]
            intent = intents[index]
            prr = self.link_prr(intent.sender, listener)
            if prr <= 0.0:
                continue
            if self.rng.random() <= prr:
                results[index].receivers.append(listener)
                if intent.packet.link_destination == listener:
                    results[index].delivered = True

    def _resolve_acks(self, results: list[TransmissionResult]) -> None:
        """Resolve ACKs for unicast frames that reached their destination."""
        for result in results:
            intent = result.intent
            if not intent.expects_ack or intent.packet.is_broadcast:
                continue
            if not result.delivered:
                continue
            destination = intent.packet.link_destination
            ack_prr = min(1.0, self.link_prr(destination, intent.sender) * self.ack_prr_scale)
            result.acked = self.rng.random() <= ack_prr
