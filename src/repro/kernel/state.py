"""Struct-of-arrays store for per-node hot state.

Profiling (EXPERIMENTS.md, "Struct-of-arrays kernel") showed the residual
per-stepped-slot cost at sparse-telemetry scale is pointer-chasing across
per-node Python objects: duty-cycle settlement walks hundreds of
``DutyCycleMeter`` instances, broadcast delivery bumps per-node ``MacStats``
one attribute at a time, and the audience pass re-reads ``alive``/``joined``
flags object by object.  This module moves those fields into contiguous
columns indexed by a dense node *row*, so the dispatch kernel can operate on
them as bulk (optionally numpy-vectorised) array operations.

Layout -- one column per field, all rows allocated by :meth:`NodeStateStore.add_row`:

====================== ======= ==============================================
column                 dtype   meaning
====================== ======= ==============================================
``tx_slots``           int64   duty-cycle counters (five columns, mirrors
``rx_slots``                   :class:`repro.mac.duty_cycle.DutyCycleMeter`)
``idle_listen_slots``
``sleep_slots``
``total_slots``
``duty_accounted_asn`` int64   deferred-settlement watermark per node
``queue_len``          int64   TX-queue occupancy
``ptype_counts``       int64   2-D ``(rows, 5)``: queued packets per
                               :class:`~repro.net.packet.PacketType`
``alive``              int64   node powered (fault injector clears on crash)
``joined``             int64   RPL-joined: root, or has a preferred parent
``adv_rank``           float64 the node's own advertised rank (RPL)
``etx_version``        int64   the node's ETX estimator version stamp
``eb_phase``           float64 next EB timer fire time (-1.0 = timer idle)
``traffic_phase``      float64 next traffic-generator fire time (-1.0 = none)
``trickle_phase``      float64 next Trickle fire time (-1.0 = timer idle)
``tx_horizon``         int64   node's next potentially-TX ASN (-1 = unknown)
====================== ======= ==============================================

View contract -- the object classes (``DutyCycleMeter``, ``TxQueue``,
``TschEngine``, ``RplEngine``, ``Node``...) do **not** keep copies of these
fields: their attributes are properties reading and writing the store row, so
a mutation through either side is immediately visible on the other.  A view
constructed standalone (unit tests, pre-``add_node``) starts on a private
:class:`LocalBacking` single row and is migrated onto the shared store --
values copied, identity preserved -- by ``bind``.  Only the dispatch kernel
in :mod:`repro.net.network` may *bulk*-write columns directly; every other
writer goes through the views (see ``docs/soa.md``).

Storage is a typed contiguous buffer per column (``array.array``, int64 /
float64), *always* -- scalar view access then costs the same as a plain list
index and yields native Python ints and floats.  numpy enters only in the
bulk kernels: they wrap the very same buffers in zero-copy
``numpy.frombuffer`` views for the vectorised fancy-index updates, so there
is never a second copy to keep coherent.  The views are transient (created
and dropped inside each bulk call); a cached view across :meth:`add_row`
would raise ``BufferError`` on growth, by design.  The shared
:func:`repro.sim.accel.numpy_or_none` gate (honouring ``REPRO_NO_NUMPY=1``)
selects between the vectorised kernels and loop fallbacks with identical
semantics; all counters stay integers either way (RL006).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any

from repro.sim.accel import numpy_or_none

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.packet import PacketType

#: Dense index of each :class:`~repro.net.packet.PacketType` into the
#: ``ptype_counts`` columns, in enum declaration order (DATA, EB, DIO, DAO,
#: SIXP).  Filled lazily on first backing construction: importing
#: :mod:`repro.net.packet` here at module level would close an import cycle
#: (this module is imported by the MAC/RPL view classes, which the ``net``
#: package init pulls in).  Consumers import the dict object itself, so the
#: deferred fill is visible through every reference.
PTYPE_INDEX: "dict[PacketType, int]" = {}
#: Width of the ``ptype_counts`` columns; checked against the enum on fill.
NUM_PTYPES = 5


def _ensure_ptype_index() -> None:
    if PTYPE_INDEX:
        return
    from repro.net.packet import PacketType
    for index, ptype in enumerate(PacketType):
        PTYPE_INDEX[ptype] = index
    if len(PTYPE_INDEX) != NUM_PTYPES:  # pragma: no cover - enum drift guard
        raise RuntimeError("PacketType count drifted from NUM_PTYPES")

#: Integer columns (grown zero-filled).
_INT_COLUMNS = (
    "tx_slots",
    "rx_slots",
    "idle_listen_slots",
    "sleep_slots",
    "total_slots",
    "duty_accounted_asn",
    "queue_len",
    "alive",
    "joined",
    "etx_version",
    "tx_horizon",
)
#: Float columns (grown with the given fill).
_FLOAT_COLUMNS = ("adv_rank", "eb_phase", "traffic_phase", "trickle_phase")
_FLOAT_FILL = {"adv_rank": 0.0, "eb_phase": -1.0, "traffic_phase": -1.0, "trickle_phase": -1.0}
_INT_FILL = {"tx_horizon": -1, "alive": 1}


class LocalBacking:
    """Single-row, list-backed stand-in for a :class:`NodeStateStore` row.

    Standalone views (a ``DutyCycleMeter`` built in a unit test, a node not
    yet added to a network) read and write row 0 of one of these; ``bind``
    copies the values into the shared store and retargets the view.  The
    columns are plain one-element lists, so the view code is byte-for-byte
    identical on both backings.
    """

    __slots__ = tuple(_INT_COLUMNS) + tuple(_FLOAT_COLUMNS) + ("ptype_counts",)

    # Column attributes are created dynamically from the tables above; the
    # annotations keep static analysis aware of them.
    tx_slots: Any
    rx_slots: Any
    idle_listen_slots: Any
    sleep_slots: Any
    total_slots: Any
    duty_accounted_asn: Any
    queue_len: Any
    alive: Any
    joined: Any
    etx_version: Any
    tx_horizon: Any
    adv_rank: Any
    eb_phase: Any
    traffic_phase: Any
    trickle_phase: Any
    ptype_counts: Any

    def __init__(self) -> None:
        _ensure_ptype_index()
        for name in _INT_COLUMNS:
            setattr(self, name, [_INT_FILL.get(name, 0)])
        for name in _FLOAT_COLUMNS:
            setattr(self, name, [_FLOAT_FILL[name]])
        self.ptype_counts: Any = [[0] * NUM_PTYPES]


class NodeStateStore:
    """Struct-of-arrays store for the per-node hot state of one network.

    Rows are dense and append-only (``add_row``); node death does not free a
    row -- the ``alive`` flag is cleared instead, which keeps every view's
    row index stable for the lifetime of the network.

    Growth may reallocate the column buffers, so any code caching a raw
    column reference (or a numpy view of one) must refetch it when
    :attr:`layout_version` changes; the views never cache (they index
    through the store attribute on every access) and the bulk kernels build
    their numpy views transiently per call.
    """

    __slots__ = (
        tuple(_INT_COLUMNS)
        + tuple(_FLOAT_COLUMNS)
        + ("ptype_counts", "np", "layout_version", "rows", "_capacity")
    )

    tx_slots: Any
    rx_slots: Any
    idle_listen_slots: Any
    sleep_slots: Any
    total_slots: Any
    duty_accounted_asn: Any
    queue_len: Any
    alive: Any
    joined: Any
    etx_version: Any
    tx_horizon: Any
    adv_rank: Any
    eb_phase: Any
    traffic_phase: Any
    trickle_phase: Any
    ptype_counts: Any

    def __init__(self, capacity: int = 64) -> None:
        _ensure_ptype_index()
        self.np = numpy_or_none()
        #: Bumped whenever the column storage grows (capacity change);
        #: cached raw column references are invalid across bumps.
        self.layout_version = 0
        self.rows = 0
        self._capacity = 0
        for name in _INT_COLUMNS:
            setattr(self, name, array("q"))
        for name in _FLOAT_COLUMNS:
            setattr(self, name, array("d"))
        self.ptype_counts = []
        self._allocate(max(1, capacity))

    # ------------------------------------------------------------------
    # Row allocation
    # ------------------------------------------------------------------
    def _allocate(self, capacity: int) -> None:
        """Grow every column to ``capacity`` rows (appending fill values)."""
        grow = capacity - self._capacity
        for name in _INT_COLUMNS:
            getattr(self, name).extend([_INT_FILL.get(name, 0)] * grow)
        for name in _FLOAT_COLUMNS:
            getattr(self, name).extend([_FLOAT_FILL[name]] * grow)
        self.ptype_counts.extend(array("q", [0] * NUM_PTYPES) for _ in range(grow))
        self._capacity = capacity
        self.layout_version += 1

    def add_row(self) -> int:
        """Allocate (and zero-initialise) the next node row; returns its index."""
        if self.rows >= self._capacity:
            self._allocate(self._capacity * 2)
        row = self.rows
        self.rows += 1
        return row

    # ------------------------------------------------------------------
    # Bulk kernels (numpy-vectorised with identical loop fallbacks)
    # ------------------------------------------------------------------
    def settle_idle_rx(
        self, rows: "list[int]", idles: "list[int]", windows: "list[int]", asn: int
    ) -> None:
        """Credit deferred duty windows for many nodes at once.

        For each node ``rows[i]``: ``idles[i]`` idle-listen slots, the rest of
        the ``windows[i]``-slot window asleep, watermark advanced to ``asn``.
        Semantically identical to ``windows[i]`` individual
        ``record_rx(False)`` / ``record_sleep`` calls (the meter's integer
        counters make bulk and one-by-one crediting indistinguishable).
        """
        np = self.np
        if np is not None and len(rows) >= 8:
            row_index = np.asarray(rows, dtype=np.intp)
            idle_arr = np.asarray(idles, dtype=np.int64)
            window_arr = np.asarray(windows, dtype=np.int64)
            # Zero-copy views over the column buffers; rows are unique (one
            # entry per settled node), so fancy-indexed += has no collision
            # hazard.
            np.frombuffer(self.rx_slots, dtype=np.int64)[row_index] += idle_arr
            np.frombuffer(self.idle_listen_slots, dtype=np.int64)[row_index] += idle_arr
            np.frombuffer(self.sleep_slots, dtype=np.int64)[row_index] += (
                window_arr - idle_arr
            )
            np.frombuffer(self.total_slots, dtype=np.int64)[row_index] += window_arr
            np.frombuffer(self.duty_accounted_asn, dtype=np.int64)[row_index] = asn
            return
        rx = self.rx_slots
        idle_col = self.idle_listen_slots
        sleep = self.sleep_slots
        total = self.total_slots
        accounted = self.duty_accounted_asn
        for row, idle, window in zip(rows, idles, windows):
            rx[row] += idle
            idle_col[row] += idle
            sleep[row] += window - idle
            total[row] += window
            accounted[row] = asn

    def account_rx_frames(self, rows: "list[int]", asn: int) -> None:
        """Account one frame-received slot for each row, eagerly.

        Equivalent to per-node ``DutyCycleMeter.record_rx(True)`` plus
        advancing each watermark to ``asn + 1``; rows must be unique within
        one call (a node decodes at most one frame per slot), and callers
        settle each node's deferred window *before* this credit.
        """
        np = self.np
        if np is not None and len(rows) >= 8:
            row_index = np.asarray(rows, dtype=np.intp)
            np.frombuffer(self.rx_slots, dtype=np.int64)[row_index] += 1
            np.frombuffer(self.total_slots, dtype=np.int64)[row_index] += 1
            np.frombuffer(self.duty_accounted_asn, dtype=np.int64)[row_index] = asn + 1
            return
        rx = self.rx_slots
        total = self.total_slots
        accounted = self.duty_accounted_asn
        for row in rows:
            rx[row] += 1
            total[row] += 1
            accounted[row] = asn + 1

    def alive_rows(self) -> "list[int]":
        """Rows whose node is currently powered, in row order."""
        np = self.np
        if np is not None and self.rows >= 8:
            alive = np.frombuffer(self.alive, dtype=np.int64, count=self.rows)
            return np.nonzero(alive)[0].tolist()
        alive_col = self.alive
        return [row for row in range(self.rows) if alive_col[row]]


def bind_backing(
    view: Any, store: NodeStateStore, row: int, columns: "tuple[str, ...]"
) -> None:
    """Retarget a view onto ``store[row]``, copying ``columns`` across.

    Shared helper for the views' ``bind`` methods: preserves the values a
    standalone object accumulated before the network adopted it (e.g. a
    meter mutated in a test before ``add_node``).  ``ptype_counts`` (the 2-D
    column) is copied element-wise.
    """
    old = view._backing
    old_row = view._row
    if old is store and old_row == row:
        return
    for name in columns:
        if name == "ptype_counts":
            source = old.ptype_counts[old_row]
            target = store.ptype_counts[row]
            for index in range(NUM_PTYPES):
                target[index] = source[index]
        else:
            getattr(store, name)[row] = getattr(old, name)[old_row]
    view._backing = store
    view._row = row
