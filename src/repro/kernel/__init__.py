"""Struct-of-arrays node-state kernel.

:mod:`repro.kernel.state` holds the per-node hot counters and flags in
contiguous columns indexed by node row, so the dispatch kernel in
:mod:`repro.net.network` can settle duty cycles, account broadcast
receptions and scan liveness/backlog state as bulk array operations instead
of pointer-chasing across hundreds of per-node Python objects.  See
``docs/soa.md`` for the array layout and the view contract.
"""

from repro.kernel.state import LocalBacking, NodeStateStore

__all__ = ["LocalBacking", "NodeStateStore"]
