"""Experiment harness reproducing the paper's evaluation (Figs. 8-10).

* :mod:`repro.experiments.scenarios` -- the Table II configuration and the
  three scenario families (traffic-load sweep, DODAG-size sweep, slotframe
  length sweep).
* :mod:`repro.experiments.runner` -- functions that run one scenario or a
  whole figure and return the metric series the paper plots.
* :mod:`repro.experiments.parallel` -- the execution engine: multiprocessing
  fan-out over scenarios plus an on-disk, content-addressed result cache.
* :mod:`repro.experiments.ablation` -- ablations over GT-TSCH design choices
  that the paper fixes (payoff weights, EWMA smoothing, shared cells).

``python -m repro.experiments`` exposes the figure runners on the command
line (``--figure 8 --seeds 1 2 3 --jobs 0`` runs Fig. 8 across three seeds on
every core).
"""

from repro.experiments.ablation import (
    run_ewma_ablation,
    run_shared_cell_ablation,
    run_weight_ablation,
)
from repro.experiments.export import figure_to_csv, figure_to_json, load_figure_csv
from repro.experiments.parallel import (
    ResultCache,
    run_scenarios,
    scenario_fingerprint,
)
from repro.experiments.runner import (
    FigureResult,
    run_figure10,
    run_figure8,
    run_figure9,
    run_scale,
    run_scenario,
)
from repro.experiments.scenarios import (
    ContikiConfig,
    Scenario,
    dodag_size_scenario,
    scale_scenario,
    slotframe_scenario,
    traffic_load_scenario,
)
from repro.metrics.aggregate import MetricsAggregate

__all__ = [
    "MetricsAggregate",
    "ResultCache",
    "run_scenarios",
    "scenario_fingerprint",
    "ContikiConfig",
    "Scenario",
    "traffic_load_scenario",
    "dodag_size_scenario",
    "slotframe_scenario",
    "scale_scenario",
    "FigureResult",
    "run_scenario",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_scale",
    "run_weight_ablation",
    "run_ewma_ablation",
    "run_shared_cell_ablation",
    "figure_to_csv",
    "figure_to_json",
    "load_figure_csv",
]
