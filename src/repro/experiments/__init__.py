"""Experiment harness reproducing the paper's evaluation (Figs. 8-10).

* :mod:`repro.experiments.scenarios` -- the Table II configuration and the
  three scenario families (traffic-load sweep, DODAG-size sweep, slotframe
  length sweep).
* :mod:`repro.experiments.runner` -- functions that run one scenario or a
  whole figure and return the metric series the paper plots.
* :mod:`repro.experiments.ablation` -- ablations over GT-TSCH design choices
  that the paper fixes (payoff weights, EWMA smoothing, shared cells).
"""

from repro.experiments.scenarios import (
    ContikiConfig,
    Scenario,
    dodag_size_scenario,
    slotframe_scenario,
    traffic_load_scenario,
)
from repro.experiments.runner import (
    FigureResult,
    run_figure8,
    run_figure9,
    run_figure10,
    run_scenario,
)
from repro.experiments.ablation import (
    run_ewma_ablation,
    run_shared_cell_ablation,
    run_weight_ablation,
)
from repro.experiments.export import figure_to_csv, figure_to_json, load_figure_csv

__all__ = [
    "ContikiConfig",
    "Scenario",
    "traffic_load_scenario",
    "dodag_size_scenario",
    "slotframe_scenario",
    "FigureResult",
    "run_scenario",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_weight_ablation",
    "run_ewma_ablation",
    "run_shared_cell_ablation",
    "figure_to_csv",
    "figure_to_json",
    "load_figure_csv",
]
