"""Parallel, cached execution of experiment scenarios.

This is the execution engine underneath the figure runners: it takes a flat
list of fully-specified :class:`~repro.experiments.scenarios.Scenario`
objects and returns one :class:`~repro.metrics.collector.NetworkMetrics` per
scenario, optionally

* fanning the scenarios out over a **persistent** ``multiprocessing`` pool
  (every scenario is an independent, seeded simulation, so workers are
  embarrassingly parallel and the results are bit-identical to a serial
  run).  The pool outlives individual ``run_scenarios`` calls: repeated
  figure sweeps reuse warm workers instead of forking a fresh pool per
  figure, cells are dispatched with chunked ``imap_unordered`` so slow cells
  (N=500 reference runs) do not serialise behind fast ones, and each worker
  keeps a per-topology cache of the medium's frozen PRR/interference tables
  (a pure function of positions and the propagation model), so the dense
  N x N precompute is paid once per distinct topology per worker rather than
  once per cell;
* memoising each result on disk under a content hash of the scenario, so
  re-running a figure, extending a sweep, or adding seeds only simulates the
  cells that have never been run before.  Cache keys are untouched by the
  pool mechanics.

The figure-level fan-out (sweep value x scheduler x seed) lives in
:mod:`repro.experiments.runner`; this module is deliberately ignorant of
figures and only sees scenarios.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import logging
import multiprocessing
import os
import pickle
import tempfile
from collections.abc import Sequence
from typing import Optional, Union

from repro.experiments.scenarios import Scenario
from repro.metrics.collector import NetworkMetrics

_LOGGER = logging.getLogger(__name__)

#: Bump to invalidate every cached result (e.g. when the simulator's
#: semantics change in a way the scenario fingerprint cannot see).
#: 2: duty-cycle accounting switched to integer slot counters (the weighted
#:    radio-on time is now derived, which changes float rounding in the last
#:    digits versus the old per-slot accumulator).
#: 3: scenarios grew a fault-injection plan and recovery metrics; the
#:    fingerprint document changed shape and old entries lack the new
#:    ``NetworkMetrics`` fields.
#: 4: scenarios grew cold-start join knobs, arrival faults and an
#:    epoch-varying link-drift policy; old entries lack the join metrics.
#: 5: the fingerprint document gained the scheduler's own
#:    ``config_fingerprint()`` (registry-resolved), so old entries hashed
#:    without per-scheduler config cannot collide with new ones.
CACHE_SCHEMA_VERSION = 5

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


#: Per-process cache of frozen-medium snapshots, keyed by a content hash of
#: (topology, propagation model).  Bounded: scale sweeps hold dense N x N
#: tables (several MB at N=500), so only the most recent topologies stay.
_FREEZE_CACHE: dict[str, dict] = {}
_FREEZE_CACHE_MAX = 8

#: Event-queue statistics of the most recent scenario run *in this process*
#: (surfaced by ``python -m repro.experiments --profile``, which runs
#: serially; worker-process runs leave the parent's copy untouched).
LAST_QUEUE_STATS: Optional[dict] = None


def _freeze_key(scenario: Scenario) -> str:
    """Content hash of everything the frozen medium tables depend on."""
    from repro.phy.propagation import UnitDiskLossyEdgeModel

    propagation = scenario.propagation or UnitDiskLossyEdgeModel()
    document = {
        "topology": _canonical(scenario.topology),
        "propagation": _canonical(propagation),
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _warm_freeze(network, scenario: Scenario) -> None:
    """Freeze the network's medium, reusing this process's per-topology cache.

    Frozen tables are deterministic in (positions, propagation model), so
    adopting a cached snapshot is bit-identical to freezing from scratch.
    """
    key = _freeze_key(scenario)
    state = _FREEZE_CACHE.get(key)
    if state is not None and network.medium.adopt_frozen(state):
        return
    network.medium.freeze()
    if len(_FREEZE_CACHE) >= _FREEZE_CACHE_MAX:
        _FREEZE_CACHE.pop(next(iter(_FREEZE_CACHE)))
    _FREEZE_CACHE[key] = network.medium.export_frozen()


def run_scenario(scenario: Scenario) -> NetworkMetrics:
    """Build, run and measure one scenario (in the current process)."""
    global LAST_QUEUE_STATS
    network = scenario.build_network()
    _warm_freeze(network, scenario)
    metrics = network.run_experiment(
        warmup_s=scenario.warmup_s,
        measurement_s=scenario.measurement_s,
        drain_s=scenario.drain_s,
        scheduler_name=scenario.scheduler,
    )
    LAST_QUEUE_STATS = network.events.stats()
    return metrics


# ----------------------------------------------------------------------
# scenario fingerprinting
# ----------------------------------------------------------------------
def _canonical(obj):
    """Reduce a scenario field to a JSON-serialisable canonical form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        return {"__class__": type(obj).__name__, **fields}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # Non-dataclass objects (custom propagation models, ...): fall back to
    # their repr, which must be value-based for the fingerprint to be stable
    # -- the default object repr embeds a memory address, which would make
    # every run a silent cache miss.
    if type(obj).__repr__ is object.__repr__:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__}: define a value-based "
            "__repr__ (or make it a dataclass) so results can be cached"
        )
    return repr(obj)


def scenario_fingerprint(scenario: Scenario) -> str:
    """Stable content hash of everything that determines a scenario's result.

    The package version is part of the hash, so cached results never survive
    a release boundary; within one version, simulator code changes still
    require a ``CACHE_SCHEMA_VERSION`` bump (or ``--no-cache``) to invalidate
    old entries.
    """
    import repro
    from repro.schedulers import registry

    # Probe the scheduler's own configuration through the registry: SF
    # constructors are side-effect-free until ``attach``/``start``, so
    # building one throwaway instance is cheap, and a third-party plugin's
    # config enters the cache key with no special-casing here.
    probe = registry.resolve(scenario.scheduler)(scenario.contiki)(0, False)
    document = {
        "schema": CACHE_SCHEMA_VERSION,
        "version": getattr(repro, "__version__", "0"),
        "scenario": _canonical(scenario),
        "scheduler_config": _canonical(probe.config_fingerprint()),
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of finished scenario metrics.

    Results are pickled under ``<root>/<fingerprint>.pkl``.  The root defaults
    to ``$REPRO_CACHE_DIR`` or ``~/.cache/gt-tsch-repro``.  Writes are atomic
    (temp file + rename) so concurrent experiment processes can share a root.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or os.environ.get(CACHE_DIR_ENV) or os.path.join(
            os.path.expanduser("~"), ".cache", "gt-tsch-repro"
        )
        self.hits = 0
        self.misses = 0
        #: Entries that existed on disk but could not be loaded (and were
        #: therefore treated as misses).
        self.corrupt = 0

    def _path(self, scenario: Scenario) -> str:
        return os.path.join(self.root, scenario_fingerprint(scenario) + ".pkl")

    def get(self, scenario: Scenario) -> Optional[NetworkMetrics]:
        """Cached metrics for this exact scenario, or ``None``.

        A *corrupt* entry -- truncated write, garbage bytes, stale pickle
        referencing renamed classes, wrong payload type -- is treated exactly
        like a miss: the caller recomputes the cell and its ``put()``
        overwrites the bad file.  The discard is logged (once per lookup) so
        recomputation never silently masks a filesystem problem.
        """
        path = self._path(scenario)
        try:
            with open(path, "rb") as handle:
                metrics = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:
            self.corrupt += 1
            self.misses += 1
            _LOGGER.warning(
                "discarding corrupt cache entry %s (%s: %s)",
                path,
                type(exc).__name__,
                exc,
            )
            return None
        if not isinstance(metrics, NetworkMetrics):
            self.corrupt += 1
            self.misses += 1
            _LOGGER.warning(
                "discarding cache entry %s: unexpected payload of type %s",
                path,
                type(metrics).__name__,
            )
            return None
        self.hits += 1
        return metrics

    def info(self) -> dict:
        """Summary of the on-disk cache: entry count and total size in bytes."""
        entries = 0
        total_bytes = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            try:
                total_bytes += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                continue
            entries += 1
        return {"root": self.root, "entries": entries, "total_bytes": total_bytes}

    def clear(self) -> int:
        """Delete every cached result; returns the number of entries removed."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if not (name.endswith(".pkl") or name.endswith(".tmp")):
                continue
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                continue
            if name.endswith(".pkl"):
                removed += 1
        return removed

    def put(self, scenario: Scenario, metrics: NetworkMetrics) -> str:
        """Store metrics for this scenario; returns the cache file path."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(scenario)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(metrics, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path


def resolve_cache(cache: Union[None, bool, ResultCache]) -> Optional[ResultCache]:
    """Normalise the ``cache`` argument of the runner entry points."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    return cache


# ----------------------------------------------------------------------
# pool execution
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


#: The persistent worker pool, shared by every ``run_scenarios`` call of this
#: process (one pool per worker count; resizing replaces it).
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_WORKERS = 0
_POOL_ATEXIT_REGISTERED = False


def _pool_initializer() -> None:
    """Warm a fresh worker: pre-import the whole simulation stack.

    Import cost is paid once per worker instead of inside the first task,
    and the worker-local frozen-medium cache starts empty but live.
    """
    import repro.experiments.scenarios  # noqa: F401
    import repro.net.network  # noqa: F401
    import repro.core.scheduler  # noqa: F401
    import repro.schedulers  # noqa: F401  (registers every first-party SF)


def shutdown_pool() -> None:
    """Dispose of the persistent pool (idempotent; a new one spawns on demand)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_WORKERS = 0


def get_pool(workers: int) -> multiprocessing.pool.Pool:
    """The persistent pool with exactly ``workers`` processes.

    Reused across calls (and figures) when the size matches; resized
    otherwise.  Registered for interpreter-exit cleanup once.
    """
    global _POOL, _POOL_WORKERS, _POOL_ATEXIT_REGISTERED
    if _POOL is None or _POOL_WORKERS != workers:
        shutdown_pool()
        _POOL = multiprocessing.Pool(processes=workers, initializer=_pool_initializer)
        _POOL_WORKERS = workers
        if not _POOL_ATEXIT_REGISTERED:
            atexit.register(shutdown_pool)
            _POOL_ATEXIT_REGISTERED = True
    return _POOL


class _TaskError:
    """Picklable marker for a scenario that raised inside a pool worker.

    Exceptions are not re-raised through ``imap_unordered`` directly because
    a raised result breaks the iterator and loses every other in-flight cell;
    wrapping lets the parent retry just the failing cell.
    """

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


def _run_indexed(
    item: tuple[int, Scenario],
) -> tuple[int, Union[NetworkMetrics, _TaskError]]:
    """Pool task: run one scenario, tagged with its position in the batch."""
    index, scenario = item
    try:
        return index, run_scenario(scenario)
    except Exception as exc:  # noqa: BLE001 - reported and retried by parent
        return index, _TaskError(f"{type(exc).__name__}: {exc}")


#: Poll interval while waiting on pool results; every empty poll is an
#: opportunity to notice a dead worker.
_POOL_POLL_S = 0.2
#: Times one cell may raise inside a worker before the whole run aborts.
_MAX_CELL_ATTEMPTS = 2


def _pool_alive_pids(pool: multiprocessing.pool.Pool) -> frozenset:
    """Pids of the pool's live worker processes (the crash fingerprint)."""
    processes = getattr(pool, "_pool", None) or []
    return frozenset(process.pid for process in processes if process.is_alive())


def _run_with_persistent_pool(
    todo: Sequence[Scenario], workers: int
) -> list[NetworkMetrics]:
    """Run ``todo`` on the persistent pool, surviving one worker crash.

    ``multiprocessing.Pool`` silently replaces a worker that dies (OOM kill,
    segfault in a C extension, ``os._exit``) but never re-runs the tasks the
    worker held, so a plain ``imap_unordered`` loop would block forever.
    Results are therefore polled with a timeout, and every empty poll
    compares the pool's live-worker pid set against the set captured at
    dispatch: any change means tasks were lost.  Recovery rebuilds the pool
    once and resubmits every not-yet-received cell -- scenarios are
    deterministic, so recomputing a cell that finished but was never received
    is bit-identical.  A second crash aborts.

    Independently, a cell whose scenario *raises* is retried up to
    ``_MAX_CELL_ATTEMPTS`` times and then reported with the failing cell's
    name and position.
    """
    results: list[Optional[NetworkMetrics]] = [None] * len(todo)
    outstanding = set(range(len(todo)))
    failures = [0] * len(todo)
    rebuilt = False
    pool = get_pool(workers)
    while outstanding:
        batch = sorted(outstanding)
        known_pids = _pool_alive_pids(pool)
        # chunksize stays 1: for chunksize > 1 ``imap_unordered`` returns a
        # flattening *generator* without the ``next(timeout=...)`` method the
        # crash-detection poll below depends on.  Each cell is a whole
        # simulation, so per-task dispatch overhead is noise anyway.
        iterator = pool.imap_unordered(
            _run_indexed,
            [(position, todo[position]) for position in batch],
        )
        remaining = len(batch)
        crashed = False
        while remaining:
            try:
                position, outcome = iterator.next(timeout=_POOL_POLL_S)
            except multiprocessing.TimeoutError:
                if _pool_alive_pids(pool) == known_pids:
                    continue
                crashed = True
                break
            except StopIteration:  # pragma: no cover - defensive
                break
            remaining -= 1
            if isinstance(outcome, _TaskError):
                failures[position] += 1
                if failures[position] >= _MAX_CELL_ATTEMPTS:
                    raise RuntimeError(
                        f"scenario {todo[position].name!r} (cell {position}) "
                        f"failed {failures[position]} times; last error: "
                        f"{outcome.message}"
                    )
                _LOGGER.warning(
                    "retrying scenario %r (cell %d) after worker error: %s",
                    todo[position].name,
                    position,
                    outcome.message,
                )
                continue  # stays outstanding; resubmitted next round
            results[position] = outcome
            outstanding.discard(position)
        if crashed:
            if rebuilt:
                raise RuntimeError(
                    "experiment pool lost a worker twice; aborting with "
                    f"{len(outstanding)} cells unfinished"
                )
            rebuilt = True
            _LOGGER.warning(
                "experiment pool lost a worker; rebuilding and resubmitting "
                "%d cells",
                len(outstanding),
            )
            shutdown_pool()
            pool = get_pool(workers)
    return results  # type: ignore[return-value]


def run_scenarios(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
    persistent_pool: bool = True,
) -> list[NetworkMetrics]:
    """Run many scenarios, returning metrics aligned with the input order.

    ``jobs=1`` runs serially in-process; ``jobs>1`` fans out over a
    ``multiprocessing`` pool (``jobs<=0`` / ``None`` use every core).  Each
    scenario is a self-contained seeded simulation, so the parallel path is
    bit-identical to the serial one.  With a cache, previously-computed
    scenarios are loaded instead of re-run and fresh results are stored.

    ``persistent_pool=True`` (default) reuses one long-lived pool across
    calls with chunked unordered dispatch; ``False`` forks a fresh pool per
    call and tears it down afterwards (the pre-existing behaviour, kept for
    the warm-vs-fork benchmark and as an isolation escape hatch).  Results
    are identical either way; completion order never leaks into the output,
    which is re-assembled by index.
    """
    cache = resolve_cache(cache)
    results: list[Optional[NetworkMetrics]] = [None] * len(scenarios)
    pending: list[int] = []
    for index, scenario in enumerate(scenarios):
        cached = cache.get(scenario) if cache is not None else None
        if cached is not None:
            results[index] = cached
        else:
            pending.append(index)

    if pending:
        todo = [scenarios[index] for index in pending]
        workers = min(resolve_jobs(jobs), len(todo))
        if workers <= 1:
            fresh = [run_scenario(scenario) for scenario in todo]
            for index, metrics in zip(pending, fresh):
                results[index] = metrics
                if cache is not None:
                    cache.put(scenarios[index], metrics)
        elif persistent_pool:
            fresh = _run_with_persistent_pool(todo, workers)
            for index, metrics in zip(pending, fresh):
                results[index] = metrics
                if cache is not None:
                    cache.put(scenarios[index], metrics)
        else:
            # Chunk size balances dispatch overhead against stragglers: small
            # chunks keep slow cells from pinning a whole chunk to one worker.
            chunksize = max(1, len(todo) // (workers * 4))
            tagged = list(zip(range(len(todo)), todo))
            with multiprocessing.Pool(
                processes=workers, initializer=_pool_initializer
            ) as pool:
                for position, outcome in pool.imap_unordered(
                    _run_indexed, tagged, chunksize=chunksize
                ):
                    index = pending[position]
                    if isinstance(outcome, _TaskError):
                        # The throwaway pool is the isolation escape hatch:
                        # fail fast instead of retrying, but name the cell.
                        raise RuntimeError(
                            f"scenario {scenarios[index].name!r} failed in "
                            f"worker: {outcome.message}"
                        )
                    results[index] = outcome
                    if cache is not None:
                        cache.put(scenarios[index], outcome)

    return results  # type: ignore[return-value]
