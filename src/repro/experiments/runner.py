"""Run scenarios and whole figures, and render the paper-style series.

Each ``run_figureN`` function reproduces one figure of the paper's evaluation
section: it sweeps the figure's x-axis, runs every scheduler at every swept
value, and returns a :class:`FigureResult` whose ``report()`` prints the same
six series (PDR, delay, packet loss, duty cycle, queue loss, throughput) the
figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.scenarios import (
    GT_TSCH,
    ORCHESTRA,
    Scenario,
    dodag_size_scenario,
    slotframe_scenario,
    traffic_load_scenario,
)
from repro.metrics.collector import NetworkMetrics
from repro.metrics.report import format_figure_report

#: Scheduler line-up used in the paper's comparisons.
DEFAULT_SCHEDULERS = (GT_TSCH, ORCHESTRA)


def run_scenario(scenario: Scenario) -> NetworkMetrics:
    """Build, run and measure one scenario."""
    network = scenario.build_network()
    return network.run_experiment(
        warmup_s=scenario.warmup_s,
        measurement_s=scenario.measurement_s,
        drain_s=scenario.drain_s,
        scheduler_name=scenario.scheduler,
    )


@dataclass
class FigureResult:
    """Results of one figure: a sweep axis x a set of schedulers."""

    figure: str
    sweep_label: str
    sweep_values: List
    #: scheduler name -> list of metrics, aligned with ``sweep_values``.
    results: Dict[str, List[NetworkMetrics]] = field(default_factory=dict)

    def series(self, scheduler: str, metric_key: str) -> List[float]:
        """One plotted line: the metric values of one scheduler across the sweep."""
        return [metrics.as_dict()[metric_key] for metrics in self.results[scheduler]]

    def report(self) -> str:
        """Text rendering of all six panels of the figure."""
        return format_figure_report(
            self.figure, self.sweep_label, self.sweep_values, self.results
        )

    def rows(self) -> List[dict]:
        """Flat list of dict rows (sweep value + scheduler + metrics), CSV-friendly."""
        rows = []
        for scheduler, series in self.results.items():
            for value, metrics in zip(self.sweep_values, series):
                row = {"sweep": value, **metrics.as_dict()}
                row["scheduler"] = scheduler
                rows.append(row)
        return rows


def _run_sweep(
    figure: str,
    sweep_label: str,
    sweep_values: Sequence,
    scenario_for: Callable[[object, str], Scenario],
    schedulers: Sequence[str],
) -> FigureResult:
    result = FigureResult(
        figure=figure, sweep_label=sweep_label, sweep_values=list(sweep_values)
    )
    for scheduler in schedulers:
        series: List[NetworkMetrics] = []
        for value in sweep_values:
            scenario = scenario_for(value, scheduler)
            series.append(run_scenario(scenario))
        result.results[scheduler] = series
    return result


def run_figure8(
    rates_ppm: Sequence[float] = (30, 75, 120, 165),
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
) -> FigureResult:
    """Fig. 8: performance vs per-node traffic load (30-165 ppm), 14 nodes."""
    return _run_sweep(
        figure="Figure 8: performance vs traffic load",
        sweep_label="traffic load (ppm/node)",
        sweep_values=rates_ppm,
        scenario_for=lambda rate, scheduler: traffic_load_scenario(
            rate_ppm=rate,
            scheduler=scheduler,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
    )


def run_figure9(
    dodag_sizes: Sequence[int] = (6, 7, 8, 9),
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
) -> FigureResult:
    """Fig. 9: performance vs DODAG size (6-9 nodes per DODAG), 120 ppm."""
    return _run_sweep(
        figure="Figure 9: performance vs DODAG size",
        sweep_label="nodes per DODAG",
        sweep_values=dodag_sizes,
        scenario_for=lambda size, scheduler: dodag_size_scenario(
            nodes_per_dodag=size,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
    )


def run_figure10(
    unicast_lengths: Sequence[int] = (8, 12, 16, 20),
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
) -> FigureResult:
    """Fig. 10: performance vs unicast slotframe length (8-20)."""
    return _run_sweep(
        figure="Figure 10: performance vs slotframe length",
        sweep_label="unicast slotframe length",
        sweep_values=unicast_lengths,
        scenario_for=lambda length, scheduler: slotframe_scenario(
            unicast_slotframe_length=length,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
    )
