"""Run scenarios and whole figures, and render the paper-style series.

Each ``run_figureN`` function reproduces one figure of the paper's evaluation
section: it sweeps the figure's x-axis, runs every scheduler at every swept
value for every requested seed, and returns a :class:`FigureResult` whose
``report()`` prints the same six series (PDR, delay, packet loss, duty cycle,
queue loss, throughput) the figure plots.

Execution goes through :mod:`repro.experiments.parallel`: every
``(sweep value x scheduler x seed)`` cell is an independent scenario, so a
figure can be fanned out over a process pool (``jobs``) and memoised on disk
(``cache``) without changing the numbers — the parallel path is bit-identical
to the serial one for the same seeds.  Each figure point is a
:class:`~repro.metrics.aggregate.MetricsAggregate` (mean / stddev / 95% CI
across seeds), which collapses to the single run's exact values when only one
seed is requested.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.experiments.parallel import ResultCache, run_scenarios
from repro.experiments.parallel import run_scenario as run_scenario  # re-export
from repro.experiments.scenarios import (
    SCALE_RATE_PPM,
    Scenario,
    churn_scenario,
    dodag_size_scenario,
    join_scenario,
    scale_scenario,
    slotframe_scenario,
    traffic_load_scenario,
)
from repro.metrics.aggregate import MetricsAggregate
from repro.metrics.collector import NetworkMetrics
from repro.metrics.report import format_figure_report
from repro.phy.dynamic import DynamicMediumPolicy, default_drift_policy
from repro.schedulers import registry

#: Scheduler line-up used in the paper's comparisons (GT-TSCH vs Orchestra),
#: derived from the registry's ``paper_default`` registrations.
DEFAULT_SCHEDULERS = registry.paper_lineup()

#: Three-scheduler line-up of the robustness/join/scale extensions (adds the
#: 6TiSCH-minimal floor), derived from ``robustness_default`` registrations.
ROBUSTNESS_SCHEDULERS = registry.robustness_lineup()

#: Either a raw single-run metrics object or a cross-seed aggregate; both
#: expose the same ``as_dict()`` keys.
MetricsLike = Union[NetworkMetrics, MetricsAggregate]


@dataclass
class FigureResult:
    """Results of one figure: a sweep axis x a set of schedulers."""

    figure: str
    sweep_label: str
    sweep_values: list
    #: scheduler name -> list of per-point metrics (aggregated across seeds
    #: by the figure runners), aligned with ``sweep_values``.
    results: dict[str, list[MetricsLike]] = field(default_factory=dict)
    #: Seeds each point was averaged over (empty for directly-built results).
    seeds: list[int] = field(default_factory=list)

    def series(self, scheduler: str, metric_key: str) -> list[float]:
        """One plotted line: the metric values of one scheduler across the sweep."""
        return [metrics.as_dict()[metric_key] for metrics in self.results[scheduler]]

    def report(self) -> str:
        """Text rendering of all six panels of the figure."""
        return format_figure_report(
            self.figure, self.sweep_label, self.sweep_values, self.results
        )

    def ranking(
        self, metric_key: str = "pdr_percent", descending: bool = True
    ) -> list[tuple[str, float]]:
        """Schedulers ranked by the metric's mean across the whole sweep.

        Used by the churn figure to print a robustness ranking: under a
        combined arrival/departure/link-drift plan the interesting answer
        is not one point but which scheduler degrades least over the sweep.
        Ties keep the scheduler line-up order (sorts are stable).
        """
        means = [
            (scheduler, sum(self.series(scheduler, metric_key)) / len(self.sweep_values))
            for scheduler in self.results
        ]
        return sorted(means, key=lambda item: item[1], reverse=descending)

    def rows(self) -> list[dict]:
        """Flat list of dict rows (sweep value + scheduler + metrics), CSV-friendly.

        Results aggregated over more than one seed additionally carry
        ``n_seeds`` and per-metric ``_std`` / ``_ci95`` dispersion columns;
        single-seed rows keep the historical single-run layout.
        """
        rows = []
        for scheduler, series in self.results.items():
            for value, metrics in zip(self.sweep_values, series):
                row = {"sweep": value, **metrics.as_dict()}
                row["scheduler"] = scheduler
                stats = getattr(metrics, "stats_dict", None)
                if stats is not None and getattr(metrics, "n", 0) > 1:
                    row.update(stats())
                rows.append(row)
        return rows


def _run_sweep(
    figure: str,
    sweep_label: str,
    sweep_values: Sequence,
    scenario_for: Callable[[object, str], Scenario],
    schedulers: Sequence[str],
    seeds: Sequence[int] = (1,),
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Fan a figure out into scenarios, execute, and aggregate across seeds."""
    seeds = list(seeds)
    sweep_values = list(sweep_values)
    scenarios: list[Scenario] = []
    for scheduler in schedulers:
        for value in sweep_values:
            base = scenario_for(value, scheduler)
            for seed in seeds:
                scenarios.append(replace(base, seed=seed))

    metrics = run_scenarios(scenarios, jobs=jobs, cache=cache)

    result = FigureResult(
        figure=figure, sweep_label=sweep_label, sweep_values=sweep_values, seeds=seeds
    )
    index = 0
    for scheduler in schedulers:
        series: list[MetricsLike] = []
        for _ in sweep_values:
            runs = metrics[index : index + len(seeds)]
            index += len(seeds)
            series.append(MetricsAggregate.from_runs(runs, seeds))
        result.results[scheduler] = series
    return result


def _resolve_seeds(seeds: Optional[Sequence[int]], seed: int) -> Sequence[int]:
    """``seeds`` wins when given; otherwise fall back to the single ``seed``."""
    return list(seeds) if seeds is not None else [seed]


def run_figure8(
    rates_ppm: Sequence[float] = (30, 75, 120, 165),
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Fig. 8: performance vs per-node traffic load (30-165 ppm), 14 nodes."""
    return _run_sweep(
        figure="Figure 8: performance vs traffic load",
        sweep_label="traffic load (ppm/node)",
        sweep_values=rates_ppm,
        scenario_for=lambda rate, scheduler: traffic_load_scenario(
            rate_ppm=rate,
            scheduler=scheduler,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )


def run_figure9(
    dodag_sizes: Sequence[int] = (6, 7, 8, 9),
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Fig. 9: performance vs DODAG size (6-9 nodes per DODAG), 120 ppm."""
    return _run_sweep(
        figure="Figure 9: performance vs DODAG size",
        sweep_label="nodes per DODAG",
        sweep_values=dodag_sizes,
        scenario_for=lambda size, scheduler: dodag_size_scenario(
            nodes_per_dodag=size,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )


def run_scale(
    node_counts: Sequence[int] = (100, 200, 500),
    schedulers: Sequence[str] = ROBUSTNESS_SCHEDULERS,
    rate_ppm: float = SCALE_RATE_PPM,
    seed: int = 1,
    measurement_s: float = 40.0,
    warmup_s: float = 20.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Scaling sweep: performance vs total network size (100-500 nodes).

    Goes beyond the paper's 12-18-node evaluation by replicating its
    DODAG construction until the site holds hundreds of motes (see
    :func:`~repro.experiments.scenarios.scale_scenario`); enabled by the
    participant-dispatch simulation kernel, which keeps per-slot cost tied
    to the nodes that actually act rather than the network size.
    """
    return _run_sweep(
        figure="Scale: performance vs network size",
        sweep_label="total nodes",
        sweep_values=node_counts,
        scenario_for=lambda count, scheduler: scale_scenario(
            num_nodes=count,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )


def run_churn(
    crash_counts: Sequence[int] = (1, 2, 3),
    schedulers: Sequence[str] = ROBUSTNESS_SCHEDULERS,
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
    num_arrivals: int = 0,
    link_drift: Optional[DynamicMediumPolicy] = None,
    cold_start: bool = False,
) -> FigureResult:
    """Churn sweep: robustness vs number of injected node crashes.

    A three-scheduler head-to-head beyond the paper's steady-state
    evaluation: each point replays one deterministic
    :class:`~repro.faults.FaultPlan` (crashes + warm rejoins + a
    link-degradation epoch + a parent-loss injection) against the Fig. 8
    topology and reports the recovery metrics -- time-to-reconverge,
    PDR-under-churn, packets-lost-to-crash, orphaned cell slots -- alongside
    the six steady-state series.  Multi-seed runs keep the fault plan fixed
    (``plan_seed`` stays at its default) so the confidence intervals measure
    the network's response to one fault scenario, not plan variability.

    ``num_arrivals``, ``link_drift``, and ``cold_start`` switch on the
    dynamic-network extensions (late node power-ons, epoch-varying per-link
    PRR drift, unsynchronised boots); the defaults reproduce the recorded
    legacy series bit-for-bit.
    """
    return _run_sweep(
        figure="Churn: robustness vs injected node crashes",
        sweep_label="node crashes",
        sweep_values=crash_counts,
        scenario_for=lambda crashes, scheduler: churn_scenario(
            num_crashes=crashes,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
            num_arrivals=num_arrivals,
            link_drift=link_drift,
            cold_start=cold_start,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )


def run_churn_dynamic(
    crash_counts: Sequence[int] = (1, 2),
    schedulers: Sequence[str] = ROBUSTNESS_SCHEDULERS,
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Combined-stress churn: crashes + late arrivals + epoch link drift.

    The robustness-ranking variant of :func:`run_churn`: every point layers
    one late arrival and a three-epoch per-link PRR drift schedule on top
    of the legacy crash plan, so ``result.ranking("pdr")`` answers which
    scheduler degrades least when departures, arrivals, and medium drift
    all hit the same window.  The drift epochs are pinned inside the
    measurement window so the final restore barrier always fires.
    """
    drift = default_drift_policy(
        seed=seed,
        start_s=warmup_s + 0.20 * measurement_s,
        epoch_s=0.15 * measurement_s,
        num_epochs=3,
    )
    return _run_sweep(
        figure="Churn (dynamic): crashes + arrivals + link drift",
        sweep_label="node crashes",
        sweep_values=crash_counts,
        scenario_for=lambda crashes, scheduler: churn_scenario(
            num_crashes=crashes,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
            num_arrivals=1,
            link_drift=drift,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )


def run_join(
    dodag_sizes: Sequence[int] = (5, 7, 9),
    schedulers: Sequence[str] = ROBUSTNESS_SCHEDULERS,
    rate_ppm: float = 60.0,
    seed: int = 1,
    measurement_s: float = 90.0,
    warmup_s: float = 5.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Cold-start join sweep: time-to-join / time-to-first-packet vs DODAG size.

    Every non-root node boots unsynchronised and must scan for a beacon,
    synchronise, and acquire an RPL parent before it may source traffic
    (see :func:`~repro.experiments.scenarios.join_scenario`).  The headline
    series are ``time_to_join_s`` and ``time_to_first_packet_s`` with
    cross-seed CIs; both are censored at the window close for nodes that
    never complete, so deeper DODAGs report honest lower bounds rather
    than dropping their stragglers.
    """
    return _run_sweep(
        figure="Join: cold-start formation vs DODAG size",
        sweep_label="nodes per DODAG",
        sweep_values=dodag_sizes,
        scenario_for=lambda size, scheduler: join_scenario(
            nodes_per_dodag=size,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )


def run_figure10(
    unicast_lengths: Sequence[int] = (8, 12, 16, 20),
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Union[None, bool, ResultCache] = None,
) -> FigureResult:
    """Fig. 10: performance vs unicast slotframe length (8-20)."""
    return _run_sweep(
        figure="Figure 10: performance vs slotframe length",
        sweep_label="unicast slotframe length",
        sweep_values=unicast_lengths,
        scenario_for=lambda length, scheduler: slotframe_scenario(
            unicast_slotframe_length=length,
            scheduler=scheduler,
            rate_ppm=rate_ppm,
            seed=seed,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        ),
        schedulers=schedulers,
        seeds=_resolve_seeds(seeds, seed),
        jobs=jobs,
        cache=cache,
    )
