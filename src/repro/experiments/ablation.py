"""Ablations over GT-TSCH design choices the paper fixes.

The paper sets the payoff weights (alpha, beta, gamma), the EWMA smoothing
factor zeta and the number of shared cells without sweeping them.  These
ablations quantify how sensitive the headline results are to those choices,
as called out in DESIGN.md.  Each function returns a mapping from the swept
value to the resulting :class:`repro.metrics.collector.NetworkMetrics`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.game import GameWeights
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import GT_TSCH, ContikiConfig, traffic_load_scenario
from repro.metrics.collector import NetworkMetrics


def run_weight_ablation(
    weight_sets: Sequence[tuple[float, float, float]] = (
        (8.0, 1.0, 4.0),  # default: queue cost dominates link cost
        (8.0, 4.0, 1.0),  # link cost dominates (paper: for low-quality links)
        (2.0, 1.0, 1.0),  # weak utility: near-minimal allocation
        (16.0, 1.0, 4.0),  # strong utility: aggressive allocation
    ),
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 45.0,
    warmup_s: float = 30.0,
) -> dict[tuple[float, float, float], NetworkMetrics]:
    """Sweep the (alpha, beta, gamma) payoff weights of Eq. (8)."""
    results: dict[tuple[float, float, float], NetworkMetrics] = {}
    for alpha, beta, gamma in weight_sets:
        contiki = ContikiConfig(game_weights=GameWeights(alpha=alpha, beta=beta, gamma=gamma))
        scenario = traffic_load_scenario(
            rate_ppm=rate_ppm,
            scheduler=GT_TSCH,
            seed=seed,
            contiki=contiki,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        )
        results[(alpha, beta, gamma)] = run_scenario(scenario)
    return results


def run_ewma_ablation(
    zetas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 45.0,
    warmup_s: float = 30.0,
) -> dict[float, NetworkMetrics]:
    """Sweep the EWMA smoothing factor zeta of the queue metric (Eq. (6))."""
    results: dict[float, NetworkMetrics] = {}
    for zeta in zetas:
        contiki = ContikiConfig(queue_ewma_zeta=zeta)
        scenario = traffic_load_scenario(
            rate_ppm=rate_ppm,
            scheduler=GT_TSCH,
            seed=seed,
            contiki=contiki,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        )
        results[zeta] = run_scenario(scenario)
    return results


def run_shared_cell_ablation(
    load_balance_periods: Sequence[float] = (2.0, 4.0, 8.0, 16.0),
    rate_ppm: float = 120.0,
    seed: int = 1,
    measurement_s: float = 45.0,
    warmup_s: float = 30.0,
) -> dict[float, NetworkMetrics]:
    """Sweep the load-balancing period (how quickly GT-TSCH reacts to load).

    The paper monitors the node's load "periodically" without fixing the
    period; this ablation shows the trade-off between reaction time (short
    periods adapt faster) and 6P control overhead (long periods negotiate
    less).
    """
    results: dict[float, NetworkMetrics] = {}
    for period in load_balance_periods:
        contiki = ContikiConfig(load_balance_period_s=period)
        scenario = traffic_load_scenario(
            rate_ppm=rate_ppm,
            scheduler=GT_TSCH,
            seed=seed,
            contiki=contiki,
            measurement_s=measurement_s,
            warmup_s=warmup_s,
        )
        results[period] = run_scenario(scenario)
    return results
