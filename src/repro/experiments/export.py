"""Export experiment results to CSV / JSON.

The figure runners return :class:`repro.experiments.runner.FigureResult`
objects; these helpers serialise them so results can be archived, diffed
across code versions, or plotted with external tooling (the repository itself
stays dependency-free beyond numpy).
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING

from repro.sim.accel import numpy_or_none

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import FigureResult


def _native(value):
    """Coerce numpy scalars (from seed-averaged rows) to Python builtins.

    Aggregated figure rows may carry ``numpy.float64`` means when the
    optional accelerator is installed; ``json`` refuses them and CSV would
    serialise their repr.  Detection goes through the shared
    :func:`repro.sim.accel.numpy_or_none` gate so exports behave identically
    on numpy-less installs.
    """
    np = numpy_or_none()
    if np is not None and isinstance(value, np.generic):
        return value.item()
    return value


#: Column order used for CSV export (sweep value + scheduler + panel metrics).
CSV_FIELDS = (
    "sweep",
    "scheduler",
    "pdr_percent",
    "end_to_end_delay_ms",
    "packet_loss_per_minute",
    "radio_duty_cycle_percent",
    "queue_loss_per_node",
    "received_per_minute",
    "generated",
    "delivered",
)


def _fieldnames(rows: list) -> list:
    """CSV columns: the canonical fields plus any aggregate (std/CI) columns.

    Figure results averaged over more than one seed carry ``n_seeds`` and
    per-metric ``_std`` / ``_ci95`` columns; single-seed and single-run
    results keep the historical layout.
    """
    fields = list(CSV_FIELDS)
    extras = []
    for row in rows:
        for key in row:
            if key not in fields and key not in extras:
                extras.append(key)
    return fields + sorted(extras)


def figure_to_csv(result: "FigureResult", path: str) -> str:
    """Write one row per (sweep value, scheduler) pair; returns the path."""
    rows = result.rows()
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=_fieldnames(rows), extrasaction="ignore"
        )
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _native(value) for key, value in row.items()})
    return path


def figure_to_json(result: "FigureResult", path: str) -> str:
    """Write the full figure (metadata + rows) as JSON; returns the path."""
    document = {
        "figure": result.figure,
        "sweep_label": result.sweep_label,
        "sweep_values": list(result.sweep_values),
        "schedulers": list(result.results),
        "seeds": list(getattr(result, "seeds", []) or []),
        "rows": [
            {key: _native(value) for key, value in row.items()}
            for row in result.rows()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path


def load_figure_csv(path: str) -> list:
    """Read back a CSV produced by :func:`figure_to_csv` (values as floats)."""
    rows = []
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            parsed = dict(row)
            for key, value in row.items():
                if key == "scheduler":
                    continue
                try:
                    parsed[key] = float(value)
                except (TypeError, ValueError):
                    pass
            rows.append(parsed)
    return rows
