"""Command-line entry point for the figure runners.

Examples::

    # Fig. 8, three seeds, one worker per core, results cached on disk
    python -m repro.experiments --figure 8 --seeds 1 2 3 --jobs 0

    # every figure, fresh run, CSV + JSON under ./results
    python -m repro.experiments --figure all --no-cache --export-dir results

    # a quick custom sweep (two load points, GT-TSCH only, short durations)
    python -m repro.experiments --figure 8 --values 60 120 \
        --schedulers GT-TSCH --measurement-s 10 --warmup-s 15

    # profile a figure run (cProfile, top 25 by cumulative time)
    python -m repro.experiments --figure 8 --no-cache --profile

    # inspect / clear the on-disk result cache
    python -m repro.experiments cache --info
    python -m repro.experiments cache --clear
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time
from collections.abc import Sequence
from typing import Optional

from repro.experiments.export import figure_to_csv, figure_to_json
from repro.experiments.parallel import ResultCache
from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    ROBUSTNESS_SCHEDULERS,
    FigureResult,
    run_churn,
    run_churn_dynamic,
    run_figure10,
    run_figure8,
    run_figure9,
    run_join,
    run_scale,
)
from repro.experiments.scenarios import DEFAULT_DRAIN_S
from repro.schedulers import registry
from repro.sim.clock import SimClock

#: Scheduler names the scenarios accept -- whatever is registered (including
#: third-party plugins imported before this entry point runs).
KNOWN_SCHEDULERS = tuple(registry.available())

#: figure id -> (runner, name of its sweep-values keyword, value parser)
FIGURES = {
    "8": (run_figure8, "rates_ppm", float),
    "9": (run_figure9, "dodag_sizes", int),
    "10": (run_figure10, "unicast_lengths", int),
    "scale": (run_scale, "node_counts", int),
    "churn": (run_churn, "crash_counts", int),
    "churn-dynamic": (run_churn_dynamic, "crash_counts", int),
    "join": (run_join, "dodag_sizes", int),
}

#: Figures included in ``--figure all`` (the paper's evaluation).  The
#: scaling sweep simulates hundreds of nodes and must be requested
#: explicitly: ``--figure scale`` (typically with shorter windows, e.g.
#: ``--warmup-s 20 --measurement-s 40``); likewise the fault-injection
#: head-to-head (``--figure churn`` / ``--figure churn-dynamic``) and the
#: cold-start join sweep (``--figure join``, best with ``--warmup-s 5
#: --measurement-s 90``).
PAPER_FIGURES = ("8", "9", "10")

#: Figures whose default line-up is the full three-scheduler comparison.
THREE_SCHEDULER_FIGURES = ("churn", "churn-dynamic", "join")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures (Figs. 8-10).",
    )
    parser.add_argument(
        "--figure",
        # Derived from the registry so an unknown figure id errors out with
        # the full list of valid figures and the two can never drift apart.
        choices=[*FIGURES, "all"],
        default="all",
        help="which figure to run (default: all = the paper's figures; "
        "the 100-500-node scaling sweep and the robustness sweeps must "
        "be asked for explicitly: --figure scale / churn / "
        "churn-dynamic / join)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1],
        metavar="SEED",
        help="seeds to average each figure point over (default: 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 0 means one per core (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate instead of reusing cached results",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/gt-tsch-repro)",
    )
    parser.add_argument(
        "--measurement-s", type=float, default=60.0, help="measurement window (default: 60)"
    )
    parser.add_argument(
        "--warmup-s", type=float, default=30.0, help="warm-up window (default: 30)"
    )
    parser.add_argument(
        "--values",
        nargs="+",
        default=None,
        metavar="VALUE",
        help="override the swept values of the chosen figure (not valid with --figure all)",
    )
    parser.add_argument(
        "--schedulers",
        nargs="+",
        default=None,
        choices=KNOWN_SCHEDULERS,
        metavar="NAME",
        help="schedulers to compare, any of: "
        f"{', '.join(KNOWN_SCHEDULERS)} (default: "
        f"{' '.join(DEFAULT_SCHEDULERS)}; the churn/join sweeps default to "
        f"{' '.join(ROBUSTNESS_SCHEDULERS)})",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        metavar="DIR",
        help="write figure<N>.csv / figure<N>.json under this directory",
    )
    parser.add_argument(
        "--format",
        choices=["csv", "json", "both"],
        default="both",
        help="export format when --export-dir is given (default: both)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top 25 functions by cumulative "
        "time plus the last scenario's event-queue statistics (forces "
        "--jobs 1: cProfile cannot see into worker processes)",
    )
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cache",
        description="Inspect or clear the on-disk scenario result cache.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--info", action="store_true", help="print cache location, entry count and size"
    )
    group.add_argument(
        "--clear", action="store_true", help="delete every cached scenario result"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/gt-tsch-repro)",
    )
    return parser


def cache_main(argv: Sequence[str]) -> int:
    """``python -m repro.experiments cache --info|--clear``."""
    args = build_cache_parser().parse_args(argv)
    cache = ResultCache(root=args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"cache: removed {removed} entries from {cache.root}")
        return 0
    info = cache.info()
    size_mib = info["total_bytes"] / (1024 * 1024)
    print(f"cache root:    {info['root']}")
    print(f"cache entries: {info['entries']}")
    print(f"cache size:    {info['total_bytes']} bytes ({size_mib:.2f} MiB)")
    return 0


def run_one(
    figure_id: str, args: argparse.Namespace, cache: Optional[ResultCache]
) -> FigureResult:
    runner, values_kw, value_type = FIGURES[figure_id]
    kwargs = {
        "schedulers": args.schedulers,
        "seeds": args.seeds,
        "jobs": args.jobs,
        "cache": cache,
        "measurement_s": args.measurement_s,
        "warmup_s": args.warmup_s,
    }
    if args.values is not None:
        try:
            kwargs[values_kw] = [value_type(value) for value in args.values]
        except ValueError as err:
            raise SystemExit(
                f"--values for figure {figure_id} must be "
                f"{value_type.__name__}s, got: {' '.join(args.values)}"
            ) from err
    return runner(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv and raw_argv[0] == "cache":
        return cache_main(raw_argv[1:])
    args = build_parser().parse_args(raw_argv)
    if args.profile:
        # Profiling only sees this process, so run the cells in it.
        args.jobs = 1
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            exit_code = _run_figures(args)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(25)
            _print_queue_stats()
        return exit_code
    return _run_figures(args)


def _print_queue_stats() -> None:
    """Event-queue statistics of the last in-process scenario run."""
    from repro.experiments import parallel

    stats = parallel.LAST_QUEUE_STATS
    if stats is None:
        return
    wheels = ", ".join(
        f"{name}: {info['members']} members / {info['fired']} fired"
        for name, info in sorted(stats["wheels"].items())
    )
    print(
        f"[event queue] live {stats['live']}, heap {stats['heap_entries']} "
        f"({stats['cancelled_in_heap']} cancelled), "
        f"{stats['compactions']} compactions"
    )
    if wheels:
        print(f"[timer wheels] {wheels}")


def _run_figures(args: argparse.Namespace) -> int:
    figure_ids: list[str] = list(PAPER_FIGURES) if args.figure == "all" else [args.figure]
    if args.values is not None and len(figure_ids) != 1:
        print("--values requires a single --figure", file=sys.stderr)
        return 2
    if args.schedulers is None:
        # The robustness head-to-heads and the join sweep are three-scheduler
        # comparisons by design; the paper figures default to the GT-TSCH vs
        # Orchestra pair.  (Unknown names never reach this point: the
        # --schedulers choices are registry-generated, so argparse rejects
        # them with the full registered list.)
        args.schedulers = (
            list(ROBUSTNESS_SCHEDULERS)
            if args.figure in THREE_SCHEDULER_FIGURES
            else list(DEFAULT_SCHEDULERS)
        )

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    # Simulated slots per scenario cell: warm-up + measurement + drain, with
    # the same rounding the clock applies (used for the slots/sec report).
    clock = SimClock()
    slots_per_cell = (
        clock.seconds_to_slots(args.warmup_s)
        + clock.seconds_to_slots(args.measurement_s)
        + clock.seconds_to_slots(DEFAULT_DRAIN_S)
    )
    for figure_id in figure_ids:
        started = time.perf_counter()
        hits_before = cache.hits if cache is not None else 0
        result = run_one(figure_id, args, cache)
        elapsed = time.perf_counter() - started
        cells = len(result.sweep_values) * len(args.schedulers) * len(args.seeds)
        hits = cache.hits - hits_before if cache is not None else 0
        cache_note = f", cache hits {hits}/{cells}" if cache is not None else ""
        simulated_cells = cells - hits
        throughput_note = ""
        if simulated_cells and elapsed > 0:
            slots_per_s = simulated_cells * slots_per_cell / elapsed
            throughput_note = f", {slots_per_s:,.0f} slots/s"
        print(result.report())
        if figure_id in ("churn", "churn-dynamic"):
            # Robustness ranking: which scheduler degrades least across the
            # whole churn sweep (mean PDR over all crash counts).
            ranking = ", ".join(
                f"{position}. {scheduler} (pdr {mean:.1f}%)"
                for position, (scheduler, mean) in enumerate(
                    result.ranking("pdr_percent"), start=1
                )
            )
            print(f"[figure {figure_id}] robustness ranking: {ranking}")
        print(
            f"[figure {figure_id}] {len(result.sweep_values)} points x "
            f"{len(args.schedulers)} schedulers x {len(args.seeds)} seeds "
            f"in {elapsed:.1f}s (jobs={args.jobs}{cache_note}{throughput_note})"
        )
        if args.export_dir:
            os.makedirs(args.export_dir, exist_ok=True)
            if args.format in ("csv", "both"):
                path = figure_to_csv(
                    result, os.path.join(args.export_dir, f"figure{figure_id}.csv")
                )
                print(f"[figure {figure_id}] wrote {path}")
            if args.format in ("json", "both"):
                path = figure_to_json(
                    result, os.path.join(args.export_dir, f"figure{figure_id}.json")
                )
                print(f"[figure {figure_id}] wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
