"""Command-line entry point for the figure runners.

Examples::

    # Fig. 8, three seeds, one worker per core, results cached on disk
    python -m repro.experiments --figure 8 --seeds 1 2 3 --jobs 0

    # every figure, fresh run, CSV + JSON under ./results
    python -m repro.experiments --figure all --no-cache --export-dir results

    # a quick custom sweep (two load points, GT-TSCH only, short durations)
    python -m repro.experiments --figure 8 --values 60 120 \
        --schedulers GT-TSCH --measurement-s 10 --warmup-s 15
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.experiments.export import figure_to_csv, figure_to_json
from repro.experiments.parallel import ResultCache
from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    FigureResult,
    run_figure8,
    run_figure9,
    run_figure10,
)
from repro.experiments.scenarios import GT_TSCH, MINIMAL, ORCHESTRA

#: Scheduler names the scenarios accept.
KNOWN_SCHEDULERS = (GT_TSCH, ORCHESTRA, MINIMAL)

#: figure id -> (runner, name of its sweep-values keyword, value parser)
FIGURES = {
    "8": (run_figure8, "rates_ppm", float),
    "9": (run_figure9, "dodag_sizes", int),
    "10": (run_figure10, "unicast_lengths", int),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures (Figs. 8-10).",
    )
    parser.add_argument(
        "--figure",
        choices=["8", "9", "10", "all"],
        default="all",
        help="which figure to run (default: all)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1],
        metavar="SEED",
        help="seeds to average each figure point over (default: 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 0 means one per core (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate instead of reusing cached results",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/gt-tsch-repro)",
    )
    parser.add_argument(
        "--measurement-s", type=float, default=60.0, help="measurement window (default: 60)"
    )
    parser.add_argument(
        "--warmup-s", type=float, default=30.0, help="warm-up window (default: 30)"
    )
    parser.add_argument(
        "--values",
        nargs="+",
        default=None,
        metavar="VALUE",
        help="override the swept values of the chosen figure (not valid with --figure all)",
    )
    parser.add_argument(
        "--schedulers",
        nargs="+",
        default=list(DEFAULT_SCHEDULERS),
        metavar="NAME",
        help="schedulers to compare (default: GT-TSCH Orchestra)",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        metavar="DIR",
        help="write figure<N>.csv / figure<N>.json under this directory",
    )
    parser.add_argument(
        "--format",
        choices=["csv", "json", "both"],
        default="both",
        help="export format when --export-dir is given (default: both)",
    )
    return parser


def run_one(
    figure_id: str, args: argparse.Namespace, cache: Optional[ResultCache]
) -> FigureResult:
    runner, values_kw, value_type = FIGURES[figure_id]
    kwargs = {
        "schedulers": args.schedulers,
        "seeds": args.seeds,
        "jobs": args.jobs,
        "cache": cache,
        "measurement_s": args.measurement_s,
        "warmup_s": args.warmup_s,
    }
    if args.values is not None:
        try:
            kwargs[values_kw] = [value_type(value) for value in args.values]
        except ValueError:
            raise SystemExit(
                f"--values for figure {figure_id} must be "
                f"{value_type.__name__}s, got: {' '.join(args.values)}"
            )
    return runner(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    figure_ids: List[str] = list(FIGURES) if args.figure == "all" else [args.figure]
    if args.values is not None and len(figure_ids) != 1:
        print("--values requires a single --figure", file=sys.stderr)
        return 2
    unknown = [name for name in args.schedulers if name not in KNOWN_SCHEDULERS]
    if unknown:
        print(
            f"unknown scheduler(s) {', '.join(unknown)}; "
            f"choose from: {', '.join(KNOWN_SCHEDULERS)}",
            file=sys.stderr,
        )
        return 2

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    for figure_id in figure_ids:
        started = time.perf_counter()
        hits_before = cache.hits if cache is not None else 0
        result = run_one(figure_id, args, cache)
        elapsed = time.perf_counter() - started
        cells = len(result.sweep_values) * len(args.schedulers) * len(args.seeds)
        cache_note = (
            f", cache hits {cache.hits - hits_before}/{cells}"
            if cache is not None
            else ""
        )
        print(result.report())
        print(
            f"[figure {figure_id}] {len(result.sweep_values)} points x "
            f"{len(args.schedulers)} schedulers x {len(args.seeds)} seeds "
            f"in {elapsed:.1f}s (jobs={args.jobs}{cache_note})"
        )
        if args.export_dir:
            os.makedirs(args.export_dir, exist_ok=True)
            if args.format in ("csv", "both"):
                path = figure_to_csv(
                    result, os.path.join(args.export_dir, f"figure{figure_id}.csv")
                )
                print(f"[figure {figure_id}] wrote {path}")
            if args.format in ("json", "both"):
                path = figure_to_json(
                    result, os.path.join(args.export_dir, f"figure{figure_id}.json")
                )
                print(f"[figure {figure_id}] wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
