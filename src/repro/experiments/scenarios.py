"""Scenario definitions for the paper's three experiment families.

All scenarios share the Contiki-NG configuration of Table II
(:class:`ContikiConfig`): 15 ms timeslots, the 8-channel hopping sequence,
2 s EB period, MRHOF, 4 retransmissions, and a GT-TSCH slotframe of 32
timeslots.  A :class:`Scenario` fully describes one simulation run --
topology, workload, scheduler, durations, seed -- and
:func:`repro.experiments.runner.run_scenario` turns it into metrics.

The three factory functions mirror the paper's evaluation section:

* :func:`traffic_load_scenario` -- Fig. 8: two 7-node DODAGs (14 nodes),
  per-node rate swept over 30-165 ppm;
* :func:`dodag_size_scenario` -- Fig. 9: two DODAGs, 6-9 nodes per DODAG,
  120 ppm per node;
* :func:`slotframe_scenario` -- Fig. 10: fixed topology and rate, unicast
  slotframe length swept over 8-20 (GT-TSCH slotframe = 4x, as the paper
  does for fairness).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import GtTschConfig
from repro.core.game import GameWeights
from repro.faults import FaultInjector, FaultPlan
from repro.mac.hopping import DEFAULT_HOPPING_SEQUENCE
from repro.mac.tsch import TschConfig
from repro.net.network import Network
from repro.net.node import NodeConfig
from repro.net.topology import TopologyBuilder, multi_dodag_topology, scale_topology
from repro.net.traffic import PeriodicTrafficGenerator
from repro.phy.dynamic import DynamicMediumPolicy, arm_link_drift
from repro.phy.propagation import UnitDiskLossyEdgeModel
from repro.rpl.engine import RplConfig
from repro.schedulers import registry
from repro.schedulers.orchestra import OrchestraConfig
from repro.sixtop.layer import SixPConfig

#: Canonical scheduler names (constants for the common ones; the registry is
#: the authoritative list -- ``repro.schedulers.registry.available()``).
GT_TSCH = "GT-TSCH"
ORCHESTRA = "Orchestra"
MINIMAL = "6TiSCH-minimal"
MSF = "MSF"
DEBRAS = "DeBrAS"
OTF = "OTF"

#: Default drain phase (seconds) appended after the measurement window.
DEFAULT_DRAIN_S = 5.0


@dataclass
class ContikiConfig:
    """The shared protocol configuration of Table II."""

    slot_duration_s: float = 0.015
    hopping_sequence: tuple = DEFAULT_HOPPING_SEQUENCE
    eb_period_s: float = 2.0
    max_retries: int = 4
    queue_capacity: int = 8
    #: GT-TSCH slotframe length (Table II: 32).
    gt_slotframe_length: int = 32
    #: Orchestra unicast slotframe length.  The paper fixes the GT-TSCH
    #: slotframe to four times the Orchestra unicast slotframe for fairness
    #: (Section VIII, third experiment); the same ratio is applied everywhere.
    orchestra_unicast_length: int = 8
    #: Minimum DIO interval.  Table II lists 300 s for the steady-state phase;
    #: scenarios use a smaller value so the DODAG information (including the
    #: GT-TSCH l_rx option) circulates within the warm-up window, then Trickle
    #: doubling backs the rate off.
    dio_interval_min_s: float = 4.0
    #: GT-TSCH payoff weights (alpha, beta, gamma) and EWMA factor.
    game_weights: GameWeights = field(default_factory=GameWeights)
    queue_ewma_zeta: float = 0.5
    load_balance_period_s: float = 4.0
    num_broadcast_cells: int = 4
    #: Cold-start join (docs/faults.md): non-root nodes boot unsynchronised
    #: and scan for an Enhanced Beacon before anything above the MAC runs.
    cold_start_join: bool = False
    #: Slots per scan-channel dwell while unsynchronised.
    scan_dwell_slots: int = 64
    #: Keepalive silence window in seconds; 0 disables the desync watchdog.
    desync_timeout_s: float = 0.0

    def node_config(self) -> NodeConfig:
        """Bundle the per-node protocol configuration."""
        return NodeConfig(
            tsch=TschConfig(
                slot_duration_s=self.slot_duration_s,
                hopping_sequence=self.hopping_sequence,
                max_retries=self.max_retries,
                queue_capacity=self.queue_capacity,
                eb_period_s=self.eb_period_s,
                scan_dwell_slots=self.scan_dwell_slots,
                desync_timeout_s=self.desync_timeout_s,
            ),
            rpl=RplConfig(dio_interval_min_s=self.dio_interval_min_s),
            sixp=SixPConfig(timeout_s=6.0, max_retries=2),
            cold_start_join=self.cold_start_join,
        )

    def gt_tsch_config(self) -> GtTschConfig:
        return GtTschConfig(
            slotframe_length=self.gt_slotframe_length,
            num_broadcast_cells=self.num_broadcast_cells,
            num_channels=len(self.hopping_sequence),
            weights=self.game_weights,
            queue_ewma_zeta=self.queue_ewma_zeta,
            q_max=self.queue_capacity,
            load_balance_period_s=self.load_balance_period_s,
        )

    def orchestra_config(self) -> OrchestraConfig:
        return OrchestraConfig(
            unicast_slotframe_length=self.orchestra_unicast_length,
            num_channels=len(self.hopping_sequence),
        )


@dataclass
class Scenario:
    """A fully specified simulation run."""

    name: str
    scheduler: str
    topology: TopologyBuilder
    rate_ppm: float
    contiki: ContikiConfig = field(default_factory=ContikiConfig)
    seed: int = 1
    warmup_s: float = 30.0
    measurement_s: float = 60.0
    drain_s: float = DEFAULT_DRAIN_S
    #: Radio model; the default reproduces Cooja's UDGM with a lossy edge.
    propagation: Optional[UnitDiskLossyEdgeModel] = None
    warm_start: bool = True
    #: Deterministic fault plan (crashes, rejoins, link-degradation epochs,
    #: parent losses, late arrivals), armed on the network's event queue at
    #: build time.  Part of the scenario fingerprint like every other knob.
    faults: Optional[FaultPlan] = None
    #: Epoch-varying link quality: a seeded per-link PRR drift schedule
    #: (:class:`~repro.phy.dynamic.DynamicMediumPolicy`), armed at build
    #: time.  Epoch times are absolute, so they must land inside the run
    #: (warm-up + measurement + drain) for the final restore to fire.
    link_drift: Optional[DynamicMediumPolicy] = None

    def build_network(self) -> Network:
        """Instantiate the network for this scenario (not yet run)."""
        propagation = self.propagation or UnitDiskLossyEdgeModel()
        network = Network(
            propagation=propagation,
            seed=self.seed,
            default_node_config=self.contiki.node_config(),
        )
        # One factory instance serves both network construction and the fault
        # injector's rejoin/arrival rebuilds: the single registry resolution
        # is the only place scheduler names are interpreted.
        scheduler_factory = self._scheduler_factory()
        network.build_from_topology(
            self.topology,
            scheduler_factory=scheduler_factory,
            traffic_factory=self._traffic_factory(),
            warm_start=self.warm_start,
        )
        if self.faults is not None and not self.faults.is_empty():
            injector = FaultInjector(
                network, self.faults, scheduler_factory=scheduler_factory
            )
            injector.arm()
            network.fault_injector = injector
        if self.link_drift is not None:
            # Epoch boundaries are plain event-queue callbacks; the medium
            # is frozen by network.start() before the first one can fire.
            network.link_drift_driver = arm_link_drift(network, self.link_drift)
        return network

    # ------------------------------------------------------------------
    def _scheduler_factory(self) -> Callable:
        # Registry resolution replaces the old per-name if/elif chain: a
        # third-party SF registered via ``@register_scheduler`` is accepted
        # here (and everywhere downstream) with no scenario changes.  An
        # unknown name raises ``ValueError`` listing the registered ones.
        return registry.resolve(self.scheduler)(self.contiki)

    def _traffic_factory(self) -> Callable:
        rate = self.rate_ppm
        # Let the schedule bootstrap on a quiet network for the first part of
        # the warm-up, as a real deployment would before sensing starts.
        start_delay = self.warmup_s * 0.5

        def factory(node_id: int, is_root: bool):
            if is_root or rate <= 0:
                return None
            return PeriodicTrafficGenerator(rate_ppm=rate, start_delay_s=start_delay)

        return factory


# ----------------------------------------------------------------------
# the paper's three scenario families
# ----------------------------------------------------------------------
def traffic_load_scenario(
    rate_ppm: float,
    scheduler: str,
    seed: int = 1,
    contiki: Optional[ContikiConfig] = None,
    num_dodags: int = 2,
    nodes_per_dodag: int = 7,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
) -> Scenario:
    """Fig. 8: two 7-node DODAGs, per-node rate swept over 30-165 ppm."""
    topology = multi_dodag_topology(num_dodags=num_dodags, nodes_per_dodag=nodes_per_dodag)
    return Scenario(
        name=f"fig8-load-{int(rate_ppm)}ppm-{scheduler}",
        scheduler=scheduler,
        topology=topology,
        rate_ppm=rate_ppm,
        contiki=contiki or ContikiConfig(),
        seed=seed,
        warmup_s=warmup_s,
        measurement_s=measurement_s,
    )


def dodag_size_scenario(
    nodes_per_dodag: int,
    scheduler: str,
    rate_ppm: float = 120.0,
    seed: int = 1,
    contiki: Optional[ContikiConfig] = None,
    num_dodags: int = 2,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
) -> Scenario:
    """Fig. 9: two DODAGs, 6-9 nodes each (12-18 nodes total), 120 ppm."""
    topology = multi_dodag_topology(num_dodags=num_dodags, nodes_per_dodag=nodes_per_dodag)
    return Scenario(
        name=f"fig9-size-{nodes_per_dodag}nodes-{scheduler}",
        scheduler=scheduler,
        topology=topology,
        rate_ppm=rate_ppm,
        contiki=contiki or ContikiConfig(),
        seed=seed,
        warmup_s=warmup_s,
        measurement_s=measurement_s,
    )


def slotframe_scenario(
    unicast_slotframe_length: int,
    scheduler: str,
    rate_ppm: float = 120.0,
    seed: int = 1,
    num_dodags: int = 2,
    nodes_per_dodag: int = 7,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
) -> Scenario:
    """Fig. 10: unicast slotframe length swept; GT-TSCH slotframe = 4x.

    Orchestra uses ``unicast_slotframe_length`` directly; GT-TSCH uses a
    single slotframe of four times that size, the fairness rule stated in the
    paper's third experiment.
    """
    contiki = ContikiConfig(
        orchestra_unicast_length=unicast_slotframe_length,
        gt_slotframe_length=4 * unicast_slotframe_length,
    )
    topology = multi_dodag_topology(num_dodags=num_dodags, nodes_per_dodag=nodes_per_dodag)
    return Scenario(
        name=f"fig10-slotframe-{unicast_slotframe_length}-{scheduler}",
        scheduler=scheduler,
        topology=topology,
        rate_ppm=rate_ppm,
        contiki=contiki,
        seed=seed,
        warmup_s=warmup_s,
        measurement_s=measurement_s,
    )


# ----------------------------------------------------------------------
# the churn / fault-injection family (robustness head-to-head)
# ----------------------------------------------------------------------
def churn_scenario(
    num_crashes: int,
    scheduler: str,
    rate_ppm: float = 120.0,
    seed: int = 1,
    contiki: Optional[ContikiConfig] = None,
    num_dodags: int = 2,
    nodes_per_dodag: int = 7,
    measurement_s: float = 60.0,
    warmup_s: float = 30.0,
    plan_seed: int = 1,
    num_arrivals: int = 0,
    link_drift: Optional[DynamicMediumPolicy] = None,
    cold_start: bool = False,
) -> Scenario:
    """Robustness sweep: ``num_crashes`` node crashes under the Fig. 8 topology.

    Each crashed node reboots a quarter of the measurement window later and
    warm-rejoins the DODAG; a link-degradation epoch and a parent-loss
    injection exercise the remaining fault classes.  ``plan_seed`` is kept
    separate from the simulation ``seed`` so a multi-seed sweep replays the
    *same* fault plan against different stochastic networks -- the CIs then
    measure the network's response to one fixed fault scenario.

    The dynamic-network extensions are strictly opt-in (defaults leave the
    legacy plan bit-identical): ``num_arrivals`` nodes are absent from slot
    0 and power on inside the second half of the window; ``link_drift``
    layers a seeded per-link PRR drift schedule on top of the plan's
    network-wide degradation epoch; ``cold_start`` boots every non-root
    node unsynchronised (EB scan first, ``warm_start`` off).
    """
    topology = multi_dodag_topology(num_dodags=num_dodags, nodes_per_dodag=nodes_per_dodag)
    # Roots sit at d * nodes_per_dodag and must never crash; everything else
    # is a crash candidate.
    candidates = [
        dodag * nodes_per_dodag + index
        for dodag in range(num_dodags)
        for index in range(1, nodes_per_dodag)
    ]
    plan = FaultPlan.churn(
        candidates,
        seed=plan_seed,
        num_crashes=num_crashes,
        crash_window=(
            warmup_s + 0.15 * measurement_s,
            warmup_s + 0.45 * measurement_s,
        ),
        detect_after_s=2.0,
        rejoin_after_s=0.25 * measurement_s,
        degrade_at_s=warmup_s + 0.50 * measurement_s,
        degrade_scale=0.7,
        degrade_duration_s=0.15 * measurement_s,
        parent_loss_at_s=warmup_s + 0.75 * measurement_s,
        num_arrivals=num_arrivals,
        arrival_window=(
            warmup_s + 0.55 * measurement_s,
            warmup_s + 0.70 * measurement_s,
        ),
    )
    suffix = ""
    if num_arrivals:
        suffix += f"-{num_arrivals}arrive"
    if link_drift is not None:
        suffix += "-drift"
    if cold_start:
        suffix += "-cold"
        contiki = replace(contiki or ContikiConfig(), cold_start_join=True)
    return Scenario(
        name=f"churn-{num_crashes}crash{suffix}-{scheduler}",
        scheduler=scheduler,
        topology=topology,
        rate_ppm=rate_ppm,
        contiki=contiki or ContikiConfig(),
        seed=seed,
        warmup_s=warmup_s,
        measurement_s=measurement_s,
        warm_start=not cold_start,
        faults=plan,
        link_drift=link_drift,
    )


# ----------------------------------------------------------------------
# the cold-start join family (dynamic-network robustness)
# ----------------------------------------------------------------------
def join_scenario(
    nodes_per_dodag: int,
    scheduler: str,
    rate_ppm: float = 60.0,
    seed: int = 1,
    contiki: Optional[ContikiConfig] = None,
    num_dodags: int = 2,
    measurement_s: float = 90.0,
    warmup_s: float = 5.0,
    desync_timeout_s: float = 0.0,
    link_drift: Optional[DynamicMediumPolicy] = None,
) -> Scenario:
    """Cold-start join sweep: every non-root node boots unsynchronised.

    Nothing is warm-started: the roots anchor the ASN and advertise EBs and
    DIOs; every other node scans for a beacon, synchronises, acquires an
    RPL parent, and only then sources traffic.  The headline outputs are
    ``time_to_join_s`` and ``time_to_first_packet_s`` (collector-censored
    at the window close for nodes that never make it), swept over the
    DODAG size -- deeper DODAGs join strictly later because a child can
    only hear beacons once its ancestors advertise.

    The warm-up is kept short on purpose: join clocks are boot-relative
    (they are not reset when the measurement window opens), but the first
    packets must land inside the window to close the first-packet episodes.
    """
    contiki = replace(
        contiki or ContikiConfig(),
        cold_start_join=True,
        desync_timeout_s=desync_timeout_s,
    )
    topology = multi_dodag_topology(num_dodags=num_dodags, nodes_per_dodag=nodes_per_dodag)
    return Scenario(
        name=f"join-{nodes_per_dodag}nodes-{scheduler}",
        scheduler=scheduler,
        topology=topology,
        rate_ppm=rate_ppm,
        contiki=contiki,
        seed=seed,
        warmup_s=warmup_s,
        measurement_s=measurement_s,
        warm_start=False,
        link_drift=link_drift,
    )


# ----------------------------------------------------------------------
# the scaling family (beyond the paper's evaluation sizes)
# ----------------------------------------------------------------------
#: Per-node application rate of the scaling family (packets per minute).
#: Large telemetry deployments report on the order of once every tens of
#: seconds per node; 2 ppm keeps the *network-wide* load growing linearly
#: with N while each node's duty stays realistic.
SCALE_RATE_PPM = 2.0
#: EB / load-balancing periods for converged large networks.  Table II's 2 s
#: EB period suits an 18-node testbed; at hundreds of nodes it would put
#: more beacons than timeslots on the air, so the scaling family uses the
#: slower advertisement cadence of a converged deployment.
SCALE_EB_PERIOD_S = 32.0
SCALE_LOAD_BALANCE_PERIOD_S = 32.0
#: DODAG size of the scaling family (the paper's DODAGs are 6-9 nodes;
#: scale comes from adding DODAGs, not from inflating one).
SCALE_NODES_PER_DODAG = 10


def scale_scenario(
    num_nodes: int,
    scheduler: str,
    rate_ppm: float = SCALE_RATE_PPM,
    seed: int = 1,
    contiki: Optional[ContikiConfig] = None,
    nodes_per_dodag: int = SCALE_NODES_PER_DODAG,
    measurement_s: float = 40.0,
    warmup_s: float = 20.0,
) -> Scenario:
    """Scaling sweep: ``num_nodes`` total (100-500+) across many small DODAGs.

    Opens the workload the paper stops short of: the same protocol stack and
    Table II parameters, but with the number of paper-sized DODAGs scaled
    until the site holds hundreds of motes.  Defaults model a *converged*
    large deployment (sparse telemetry traffic, slow EB cadence), the regime
    the participant-dispatch kernel is benchmarked in.
    """
    topology = scale_topology(num_nodes=num_nodes, nodes_per_dodag=nodes_per_dodag)
    if contiki is None:
        contiki = ContikiConfig(
            eb_period_s=SCALE_EB_PERIOD_S,
            load_balance_period_s=SCALE_LOAD_BALANCE_PERIOD_S,
        )
    return Scenario(
        name=f"scale-{num_nodes}nodes-{scheduler}",
        scheduler=scheduler,
        topology=topology,
        rate_ppm=rate_ppm,
        contiki=contiki,
        seed=seed,
        warmup_s=warmup_s,
        measurement_s=measurement_s,
    )
