"""GT-TSCH reproduction: game-theoretic distributed TSCH scheduling.

This package is a from-scratch Python reproduction of *GT-TSCH:
Game-Theoretic Distributed TSCH Scheduler for Low-Power IoT Networks*
(ICDCS 2023).  It contains:

* a slot-accurate discrete-event simulator of a 6TiSCH protocol stack
  (TSCH MAC, RPL, 6top, radio medium) replacing the paper's Contiki-NG /
  Cooja / Zolertia Firefly testbed;
* the GT-TSCH scheduling function (:mod:`repro.core`) -- channel allocation,
  slotframe construction, load balancing and the non-cooperative game with
  its closed-form Nash equilibrium;
* the Orchestra baseline and a 6TiSCH-minimal reference scheduler
  (:mod:`repro.schedulers`);
* the experiment harness reproducing the paper's Figures 8-10
  (:mod:`repro.experiments`).

Quick start::

    from repro.experiments import traffic_load_scenario, run_scenario

    scenario = traffic_load_scenario(rate_ppm=120, scheduler="GT-TSCH", seed=1)
    metrics = run_scenario(scenario)
    print(metrics.pdr_percent, metrics.end_to_end_delay_ms)
"""

#: Package version; also folded into the experiment result-cache fingerprint
#: so cached metrics never cross a release boundary.  Keep in sync with
#: pyproject.toml.
__version__ = "0.2.0"

from repro.core.config import GtTschConfig
from repro.core.game import GameWeights, PlayerState, optimal_tx_cells, payoff
from repro.core.scheduler import GtTschScheduler
from repro.experiments.runner import run_figure10, run_figure8, run_figure9, run_scenario
from repro.experiments.scenarios import (
    ContikiConfig,
    Scenario,
    dodag_size_scenario,
    slotframe_scenario,
    traffic_load_scenario,
)
from repro.metrics.collector import NetworkMetrics
from repro.net.network import Network
from repro.net.node import Node, NodeConfig
from repro.schedulers.minimal import MinimalScheduler
from repro.schedulers.orchestra import OrchestraConfig, OrchestraScheduler

__all__ = [
    "GameWeights",
    "PlayerState",
    "payoff",
    "optimal_tx_cells",
    "GtTschConfig",
    "GtTschScheduler",
    "OrchestraScheduler",
    "OrchestraConfig",
    "MinimalScheduler",
    "Network",
    "Node",
    "NodeConfig",
    "NetworkMetrics",
    "ContikiConfig",
    "Scenario",
    "traffic_load_scenario",
    "dodag_size_scenario",
    "slotframe_scenario",
    "run_scenario",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "__version__",
]
