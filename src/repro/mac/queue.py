"""Bounded MAC transmission queue.

Zolertia Firefly motes have 32 KB of RAM, which bounds the number of packets a
Contiki-NG node can buffer (``QUEUEBUF_CONF_NUM``).  The paper models this as
the maximum queue length ``QMax``; packets arriving at a full queue are
dropped and counted as *queue loss*, one of the six evaluation metrics
(Figs. 8e, 9e, 10e).  The queue also feeds the GT-TSCH game through the
instantaneous queue length ``q_i(t)`` that enters the EWMA queue metric of
Eq. (6).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from typing import Optional

from repro.kernel.state import PTYPE_INDEX, LocalBacking, NodeStateStore, bind_backing
from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType


class TxQueue:
    """FIFO transmission queue with a hard capacity.

    Control frames (EB/DIO/DAO/6P) can optionally be prioritised over data
    frames, mirroring Contiki-NG's behaviour of keeping the network alive
    under congestion; this does not change the data-plane metrics because
    control traffic is tiny compared to the swept data rates.
    """

    __slots__ = (
        "capacity",
        "prioritize_control",
        "_queue",
        "_backing",
        "_row",
        "drops",
        "data_drops",
        "max_occupancy",
    )

    def __init__(self, capacity: int = 8, prioritize_control: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.prioritize_control = prioritize_control
        self._queue: deque[Packet] = deque()
        #: Queued packets per :class:`PacketType` and the queue occupancy are
        #: maintained in the struct-of-arrays backing row (see
        #: :mod:`repro.kernel.state`): periodic protocol probes (the EB timer
        #: in particular) ask "is one of mine queued?" every tick, which the
        #: count row answers in O(1), and the dispatch kernel scans backlog
        #: over the ``queue_len`` column without touching queue objects.
        self._backing = LocalBacking()
        self._row = 0
        #: Number of packets dropped because the queue was full.
        self.drops = 0
        #: Number of *data* packets dropped because the queue was full.
        self.data_drops = 0
        #: High-water mark, useful for tests and diagnostics.
        self.max_occupancy = 0

    def bind(self, store: NodeStateStore, row: int) -> None:
        """Move the occupancy/per-type counts onto ``store[row]``."""
        bind_backing(self, store, row, ("queue_len", "ptype_counts"))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._queue)

    def add(self, packet: Packet) -> bool:
        """Enqueue ``packet``.

        Returns ``True`` on success and ``False`` when the packet was dropped
        because the queue is full (queue loss).  When control prioritisation
        is enabled and a control frame arrives at a full queue, the youngest
        queued *data* packet is evicted instead (counted as queue loss), so
        congestion cannot starve schedule and topology maintenance -- the same
        policy Contiki-NG applies to keep the network alive under overload.
        """
        if self.is_full:
            evicted = None
            if self.prioritize_control and packet.is_control:
                for queued in reversed(self._queue):
                    if not queued.is_control:
                        evicted = queued
                        break
            if evicted is None:
                self.drops += 1
                if packet.ptype is PacketType.DATA:
                    self.data_drops += 1
                return False
            self._queue.remove(evicted)
            self._backing.ptype_counts[self._row][PTYPE_INDEX[evicted.ptype]] -= 1
            self.drops += 1
            self.data_drops += 1
        if self.prioritize_control and packet.is_control:
            # Insert control packets before the first data packet so schedule
            # maintenance is not starved by a deep data backlog.
            for index, queued in enumerate(self._queue):
                if not queued.is_control:
                    rotated = list(self._queue)
                    rotated.insert(index, packet)
                    self._queue = deque(rotated)
                    break
            else:
                self._queue.append(packet)
        else:
            self._queue.append(packet)
        self._backing.ptype_counts[self._row][PTYPE_INDEX[packet.ptype]] += 1
        self._backing.queue_len[self._row] = len(self._queue)
        self.max_occupancy = max(self.max_occupancy, len(self._queue))
        return True

    def peek_for(self, neighbor: Optional[int], broadcast: bool = False) -> Optional[Packet]:
        """First packet addressed to ``neighbor`` (or any broadcast frame).

        ``neighbor=None`` matches any unicast packet, which is what shared
        "any neighbor" cells (Orchestra's common cell) use.
        """
        for packet in self._queue:
            if broadcast:
                if packet.link_destination == BROADCAST_ADDRESS:
                    return packet
            else:
                if packet.link_destination == BROADCAST_ADDRESS:
                    continue
                if neighbor is None or packet.link_destination == neighbor:
                    return packet
        return None

    def has_packet_for(self, neighbor: Optional[int], broadcast: bool = False) -> bool:
        return self.peek_for(neighbor, broadcast=broadcast) is not None

    def contains_ptype(self, ptype: PacketType) -> bool:
        """Whether any queued packet has the given type (O(1) count lookup)."""
        return bool(self._backing.ptype_counts[self._row][PTYPE_INDEX[ptype]])

    def remove(self, packet: Packet) -> bool:
        """Remove a specific packet instance (after delivery or drop)."""
        try:
            self._queue.remove(packet)
        except ValueError:
            return False
        self._backing.ptype_counts[self._row][PTYPE_INDEX[packet.ptype]] -= 1
        self._backing.queue_len[self._row] = len(self._queue)
        return True

    def pending_for(self, neighbor: Optional[int]) -> int:
        """Number of queued unicast packets addressed to ``neighbor``."""
        return sum(
            1
            for packet in self._queue
            if packet.link_destination != BROADCAST_ADDRESS
            and (neighbor is None or packet.link_destination == neighbor)
        )

    def pending_broadcast(self) -> int:
        """Number of queued broadcast frames."""
        return sum(1 for packet in self._queue if packet.link_destination == BROADCAST_ADDRESS)

    def data_packets(self) -> list[Packet]:
        """Queued application-data packets (used by the queue metric)."""
        return [packet for packet in self._queue if packet.ptype is PacketType.DATA]

    def retarget(self, old_neighbor: int, new_neighbor: int) -> int:
        """Re-address queued unicast packets after a parent switch.

        Returns the number of packets re-addressed.  Without this, packets
        already queued towards the old parent would be stranded until the
        retry limit drops them.
        """
        changed = 0
        for packet in self._queue:
            if packet.link_destination == old_neighbor:
                packet.link_destination = new_neighbor
                changed += 1
        return changed

    def __iter__(self) -> Iterable[Packet]:
        return iter(list(self._queue))

    def clear(self) -> None:
        self._queue.clear()
        counts = self._backing.ptype_counts[self._row]
        for index in range(len(counts)):
            counts[index] = 0
        self._backing.queue_len[self._row] = 0
