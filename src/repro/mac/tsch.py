"""The per-node TSCH engine.

This is the software equivalent of Contiki-NG's ``tsch.c`` slot operation: at
every ASN the engine inspects its installed slotframes, picks the active cell
following the same precedence rules (transmit before receive, dedicated before
shared, lower slotframe handle first), applies CSMA/CA back-off in shared
cells, and -- once the medium has arbitrated the slot -- handles ACKs,
retransmissions, queue management and ETX bookkeeping.

The engine is deliberately scheduler-agnostic: scheduling functions (GT-TSCH,
Orchestra, 6TiSCH minimal) only install and remove cells; everything below the
schedule is identical for every scheduler, which makes the paper's comparisons
apples-to-apples.

One simplification relative to real TSCH is documented in DESIGN.md: nodes
are assumed to share the ASN from the start (perfect time synchronisation).
The paper's metrics are all measured after the network has formed, so
association dynamics do not influence them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.mac.csma import CsmaBackoff
from repro.mac.duty_cycle import DutyCycleMeter
from repro.mac.hopping import DEFAULT_HOPPING_SEQUENCE, ChannelHopping
from repro.mac.queue import TxQueue
from repro.mac.slotframe import Slotframe
from repro.net.packet import BROADCAST_ADDRESS, Packet
from repro.phy.linkstats import EtxEstimator
from repro.phy.medium import TransmissionIntent, TransmissionResult


@dataclass
class TschConfig:
    """MAC-level configuration (defaults follow Table II of the paper)."""

    slot_duration_s: float = 0.015
    hopping_sequence: Sequence[int] = DEFAULT_HOPPING_SEQUENCE
    #: Maximum number of link-layer retransmissions after the first attempt.
    max_retries: int = 4
    #: MAC queue capacity (QMax); Contiki-NG's default QUEUEBUF_CONF_NUM is 8.
    queue_capacity: int = 8
    #: Enhanced Beacon period in seconds.
    eb_period_s: float = 2.0
    #: CSMA/CA back-off exponents for shared cells.
    min_backoff_exponent: int = 1
    max_backoff_exponent: int = 5
    #: EWMA weight of the ETX estimator (fraction kept from the old estimate).
    etx_alpha: float = 0.9
    #: ETX assumed for links with no transmission history yet.
    initial_etx: float = 2.0


@dataclass
class SlotPlan:
    """The engine's decision for one timeslot."""

    action: str  # "tx", "rx" or "sleep"
    cell: Optional[Cell] = None
    packet: Optional[Packet] = None
    channel: Optional[int] = None

    @property
    def is_tx(self) -> bool:
        return self.action == "tx"

    @property
    def is_rx(self) -> bool:
        return self.action == "rx"


@dataclass
class MacStats:
    """Link-layer counters exposed to the metrics layer."""

    unicast_tx_packets: int = 0
    unicast_tx_attempts: int = 0
    unicast_acked: int = 0
    mac_drops: int = 0
    broadcast_sent: int = 0
    frames_received: int = 0
    collisions_observed: int = 0


class TschEngine:
    """Slot-by-slot TSCH MAC machine for one node."""

    def __init__(self, node_id: int, config: TschConfig, rng) -> None:
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.hopping = ChannelHopping(config.hopping_sequence)
        self.queue = TxQueue(capacity=config.queue_capacity)
        self.csma = CsmaBackoff(
            rng, min_be=config.min_backoff_exponent, max_be=config.max_backoff_exponent
        )
        self.duty_cycle = DutyCycleMeter()
        self.etx = EtxEstimator(alpha=config.etx_alpha, initial_etx=config.initial_etx)
        self.stats = MacStats()
        self.slotframes: Dict[int, Slotframe] = {}
        #: Neighbors towards which *data* transmissions on shared cells are
        #: temporarily suppressed.  A scheduling function sets this while it
        #: awaits a 6P response from that neighbor: the response arrives on
        #: the same shared cells, so the node must spend them listening rather
        #: than pushing data (control frames are still allowed through).
        self.quiet_shared_neighbors: set = set()
        #: Number of over-the-air attempts already spent on each queued packet.
        self._attempts: Dict[int, int] = {}
        #: Upper-layer callback invoked with (packet, asn) for every decoded frame.
        self.rx_callback: Optional[Callable[[Packet, int], None]] = None
        #: Upper-layer callback invoked with (packet, success, asn) when a
        #: unicast packet leaves the MAC (delivered or dropped after retries).
        self.tx_done_callback: Optional[Callable[[Packet, bool, int], None]] = None

    # ------------------------------------------------------------------
    # slotframe management (used by scheduling functions)
    # ------------------------------------------------------------------
    def add_slotframe(self, handle: int, length: int) -> Slotframe:
        """Create (or return the existing) slotframe with the given handle."""
        if handle in self.slotframes:
            existing = self.slotframes[handle]
            if existing.length != length:
                raise ValueError(
                    f"slotframe {handle} already exists with length {existing.length}"
                )
            return existing
        slotframe = Slotframe(handle, length)
        self.slotframes[handle] = slotframe
        return slotframe

    def get_slotframe(self, handle: int) -> Optional[Slotframe]:
        return self.slotframes.get(handle)

    def remove_slotframe(self, handle: int) -> None:
        self.slotframes.pop(handle, None)

    def clear_schedule(self) -> None:
        """Remove every slotframe (used when re-initialising a scheduler)."""
        self.slotframes.clear()

    # ------------------------------------------------------------------
    # queue interface (used by the node / upper layers)
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        """Add a packet to the MAC queue; returns False on queue loss."""
        packet.enqueued_at = now
        accepted = self.queue.add(packet)
        if accepted:
            self._attempts.setdefault(packet.packet_id, 0)
        return accepted

    def queue_length(self) -> int:
        """Current number of queued packets (the game's ``q_i(t)``)."""
        return len(self.queue)

    def data_queue_length(self) -> int:
        """Number of queued application-data packets."""
        return len(self.queue.data_packets())

    # ------------------------------------------------------------------
    # slot planning
    # ------------------------------------------------------------------
    def plan_slot(self, asn: int) -> SlotPlan:
        """Decide what this node does at ``asn``.

        Precedence (matching Contiki-NG):

        1. a transmission, if any active cell with the TX option has a
           matching pending packet (and, for shared cells, the CSMA back-off
           window has expired);
        2. otherwise a reception, if any active cell has the RX option;
        3. otherwise sleep.

        Ties between cells are broken by GT-TSCH purpose priority, then by
        slotframe handle.
        """
        active: List[Cell] = []
        for handle in sorted(self.slotframes):
            active.extend(self.slotframes[handle].cells_at(asn))
        if not active:
            return SlotPlan(action="sleep")

        active.sort(key=lambda c: (c.purpose.priority, c.slotframe_handle, c.slot_offset))

        tx_choice: Optional[Tuple[Cell, Packet]] = None
        for cell in active:
            if not cell.is_tx:
                continue
            packet = self._packet_for_cell(cell)
            if packet is None:
                continue
            if cell.is_shared and not packet.is_broadcast:
                if (
                    packet.link_destination in self.quiet_shared_neighbors
                    and not packet.is_control
                ):
                    # Awaiting a 6P response from this neighbor: keep the
                    # shared cells free (and our radio listening) for it.
                    continue
                if not self.csma.can_transmit(packet.link_destination):
                    # An eligible shared cell passes by unused: count down.
                    self.csma.on_shared_cell_skipped(packet.link_destination)
                    continue
            tx_choice = (cell, packet)
            break

        if tx_choice is not None:
            cell, packet = tx_choice
            channel = self.hopping.channel_for(asn, cell.channel_offset)
            return SlotPlan(action="tx", cell=cell, packet=packet, channel=channel)

        for cell in active:
            if cell.is_rx:
                channel = self.hopping.channel_for(asn, cell.channel_offset)
                return SlotPlan(action="rx", cell=cell, channel=channel)

        return SlotPlan(action="sleep")

    def _packet_for_cell(self, cell: Cell) -> Optional[Packet]:
        """Pick the queued packet (if any) that this TX cell may carry."""
        if cell.is_broadcast:
            packet = self.queue.peek_for(None, broadcast=True)
            if packet is not None:
                return packet
            # Orchestra's common shared cell also carries unicast control
            # traffic (DAOs) when no broadcast frame is pending.
            if cell.is_shared and cell.neighbor is None:
                return self.queue.peek_for(None)
            return None
        return self.queue.peek_for(cell.neighbor)

    def build_intent(self, plan: SlotPlan) -> TransmissionIntent:
        """Turn a TX slot plan into a medium-level transmission intent."""
        if not plan.is_tx or plan.packet is None or plan.channel is None:
            raise ValueError("build_intent requires a TX plan")
        return TransmissionIntent(
            sender=self.node_id,
            packet=plan.packet,
            channel=plan.channel,
            expects_ack=not plan.packet.is_broadcast,
        )

    # ------------------------------------------------------------------
    # outcome handling
    # ------------------------------------------------------------------
    def on_transmission_result(
        self, plan: SlotPlan, result: TransmissionResult, asn: int, now: float
    ) -> None:
        """Process the medium's verdict for a transmission made this slot."""
        packet = plan.packet
        cell = plan.cell
        if packet is None or cell is None:
            return

        if packet.is_broadcast:
            # Broadcast frames are fire-and-forget: one attempt, no ACK.
            self.queue.remove(packet)
            self._attempts.pop(packet.packet_id, None)
            self.stats.broadcast_sent += 1
            return

        destination = packet.link_destination
        attempts = self._attempts.get(packet.packet_id, 0) + 1
        self._attempts[packet.packet_id] = attempts
        self.stats.unicast_tx_attempts += 1
        if result.collided:
            self.stats.collisions_observed += 1

        if result.acked:
            self.queue.remove(packet)
            self._attempts.pop(packet.packet_id, None)
            self.stats.unicast_tx_packets += 1
            self.stats.unicast_acked += 1
            self.etx.record_tx(destination, True, attempts=attempts, now=now)
            if cell.is_shared:
                self.csma.on_transmission_success(destination)
            if self.tx_done_callback is not None:
                self.tx_done_callback(packet, True, asn)
            return

        # Transmission failed (no ACK): back off on shared cells, retry until
        # the retransmission budget (Table II: 4) is exhausted.
        packet.retransmissions += 1
        if cell.is_shared:
            self.csma.on_transmission_failure(destination)
        if attempts >= 1 + self.config.max_retries:
            self.queue.remove(packet)
            self._attempts.pop(packet.packet_id, None)
            self.stats.unicast_tx_packets += 1
            self.stats.mac_drops += 1
            self.etx.record_tx(destination, False, attempts=attempts, now=now)
            if self.tx_done_callback is not None:
                self.tx_done_callback(packet, False, asn)

    def on_frame_received(self, packet: Packet, asn: int, now: float) -> None:
        """Handle a frame decoded by this node's radio."""
        self.stats.frames_received += 1
        self.etx.record_rx(packet.link_source, now=now)
        if self.rx_callback is not None:
            self.rx_callback(packet, asn)

    # ------------------------------------------------------------------
    # duty-cycle accounting (driven by the network loop)
    # ------------------------------------------------------------------
    def account_slot(self, plan: SlotPlan, frame_received: bool = False) -> None:
        """Record this slot's radio activity for the duty-cycle metric."""
        if plan.is_tx:
            self.duty_cycle.record_tx()
        elif plan.is_rx:
            self.duty_cycle.record_rx(frame_received)
        else:
            self.duty_cycle.record_sleep()

    # ------------------------------------------------------------------
    # schedule introspection helpers (used by scheduling functions)
    # ------------------------------------------------------------------
    def count_cells(
        self,
        options: Optional[CellOption] = None,
        neighbor: Optional[int] = None,
        purpose: Optional[CellPurpose] = None,
    ) -> int:
        """Total matching cells across all slotframes."""
        return sum(
            sf.count_cells(options=options, neighbor=neighbor, purpose=purpose)
            for sf in self.slotframes.values()
        )

    def all_cells(self) -> List[Cell]:
        cells: List[Cell] = []
        for handle in sorted(self.slotframes):
            cells.extend(self.slotframes[handle].all_cells())
        return cells
