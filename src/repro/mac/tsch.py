"""The per-node TSCH engine.

This is the software equivalent of Contiki-NG's ``tsch.c`` slot operation: at
every ASN the engine inspects its installed slotframes, picks the active cell
following the same precedence rules (transmit before receive, dedicated before
shared, lower slotframe handle first), applies CSMA/CA back-off in shared
cells, and -- once the medium has arbitrated the slot -- handles ACKs,
retransmissions, queue management and ETX bookkeeping.

The engine is deliberately scheduler-agnostic: scheduling functions (GT-TSCH,
Orchestra, 6TiSCH minimal) only install and remove cells; everything below the
schedule is identical for every scheduler, which makes the paper's comparisons
apples-to-apples.

One simplification relative to real TSCH is documented in DESIGN.md: nodes
are assumed to share the ASN from the start (perfect time synchronisation).
The paper's metrics are all measured after the network has formed, so
association dynamics do not influence them.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.mac.csma import CsmaBackoff
from repro.mac.duty_cycle import DutyCycleMeter
from repro.mac.hopping import DEFAULT_HOPPING_SEQUENCE, ChannelHopping
from repro.kernel.state import LocalBacking, NodeStateStore, bind_backing
from repro.mac.queue import TxQueue
from repro.mac.slotframe import Slotframe
from repro.net.packet import BROADCAST_ADDRESS, Packet
from repro.phy.linkstats import EtxEstimator
from repro.phy.medium import TransmissionIntent, TransmissionResult

if TYPE_CHECKING:
    import random  # reprolint: disable=RL001


@dataclass
class TschConfig:
    """MAC-level configuration (defaults follow Table II of the paper)."""

    slot_duration_s: float = 0.015
    hopping_sequence: Sequence[int] = DEFAULT_HOPPING_SEQUENCE
    #: Maximum number of link-layer retransmissions after the first attempt.
    max_retries: int = 4
    #: MAC queue capacity (QMax); Contiki-NG's default QUEUEBUF_CONF_NUM is 8.
    queue_capacity: int = 8
    #: Enhanced Beacon period in seconds.
    eb_period_s: float = 2.0
    #: CSMA/CA back-off exponents for shared cells.
    min_backoff_exponent: int = 1
    max_backoff_exponent: int = 5
    #: EWMA weight of the ETX estimator (fraction kept from the old estimate).
    etx_alpha: float = 0.9
    #: ETX assumed for links with no transmission history yet.
    initial_etx: float = 2.0
    #: Cold-start EB scan: slots spent listening on one channel before the
    #: scanner hops to the next (an unsynchronised node cannot follow the
    #: hopping sequence, so it parks on each channel in turn).
    scan_dwell_slots: int = 64
    #: Desync-on-silence keepalive window in seconds: a cold-start node that
    #: decodes *nothing* for this long after synchronising drops back to the
    #: EB scan.  0 disables the keepalive (the default -- converged-network
    #: scenarios never desynchronise).
    desync_timeout_s: float = 0.0


class SlotPlan:
    """The engine's decision for one timeslot.

    Hand-rolled ``__slots__`` class (not a dataclass): one is allocated per
    transmitting slot on the kernel's hot path.
    """

    __slots__ = ("action", "cell", "packet", "channel")

    def __init__(
        self,
        action: str,  # "tx", "rx" or "sleep"
        cell: Optional[Cell] = None,
        packet: Optional[Packet] = None,
        channel: Optional[int] = None,
    ) -> None:
        self.action = action
        self.cell = cell
        self.packet = packet
        self.channel = channel

    @property
    def is_tx(self) -> bool:
        return self.action == "tx"

    @property
    def is_rx(self) -> bool:
        return self.action == "rx"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SlotPlan({self.action}, cell={self.cell!r}, channel={self.channel})"


#: Shared immutable "do nothing" plan.  Most (node, slot) pairs in a sweep are
#: idle, so :meth:`TschEngine.plan_slot` returns this singleton instead of
#: allocating a fresh ``SlotPlan`` per idle slot.  Treat it as read-only.
SLEEP_PLAN = SlotPlan(action="sleep")

#: Shared empty active-cell list (read-only) returned for idle residues.
_NO_CELLS: list["Cell"] = []


def _intersect_progressions(a: tuple, b: tuple) -> Optional[tuple]:
    """CRT intersection of two arithmetic progressions ``(offset, period)``.

    Returns the ``(offset, period)`` of ASNs lying on both progressions, or
    ``None`` when they never coincide.
    """
    offset_a, period_a = a
    offset_b, period_b = b
    gcd = math.gcd(period_a, period_b)
    if (offset_b - offset_a) % gcd:
        return None
    lcm = period_a // gcd * period_b
    step = period_a // gcd
    modulus = period_b // gcd
    # Solve offset_a + period_a * t ≡ offset_b (mod period_b).
    t = ((offset_b - offset_a) // gcd * pow(step, -1, modulus)) % modulus
    return ((offset_a + period_a * t) % lcm, lcm)


def _count_progression(offset: int, period: int, start: int, end: int) -> int:
    """Number of ASNs in [``start``, ``end``) congruent to ``offset`` mod ``period``."""
    first = start + (offset - start) % period
    if first >= end:
        return 0
    return (end - 1 - first) // period + 1


def next_offset_occurrence(asn: int, length: int, offsets: Sequence[int]) -> Optional[int]:
    """Smallest ASN >= ``asn`` whose residue modulo ``length`` is in ``offsets``.

    ``offsets`` must be sorted.  Returns ``None`` when empty.
    """
    if not offsets:
        return None
    residue = asn % length
    index = bisect_left(offsets, residue)
    if index < len(offsets):
        return asn + (offsets[index] - residue)
    return asn + (offsets[0] + length - residue)


class ScheduleProfile:
    """Derived, read-only facts about one node's installed schedule.

    Built lazily from the slotframes and invalidated through the engine's
    :attr:`~TschEngine.schedule_version`; the network's slot-skipping kernel
    uses it to answer, without planning the slot:

    * which ASNs the node has *any* cell at (:attr:`frame_offsets` feeds the
      network-wide active-offset index),
    * at which ASNs a node holding queued packets could possibly transmit
      (:meth:`next_tx_asn`), and
    * how many of a run of guaranteed transmission-free slots the node spends
      idle-listening rather than sleeping (:meth:`count_idle_listen`) -- the
      node listens whenever any active cell carries the RX option, exactly the
      fall-through decision of :meth:`TschEngine.plan_slot`.
    """

    __slots__ = (
        "version",
        "has_cells",
        "has_rx",
        "frame_offsets",
        "_frames",
        "_single",
        "_tx_match",
        "_rx_incexc",
        "_prune_frames",
    )

    #: Above this many RX progressions the 2^k inclusion-exclusion expansion
    #: stops paying off and window counting falls back to the merged walk.
    MAX_INCEXC_PROGRESSIONS = 6

    def __init__(self, slotframes: Sequence[Slotframe], version: int) -> None:
        self.version = version
        #: ``(length, sorted offsets with any cell)`` per slotframe.
        self.frame_offsets: list[tuple] = []
        #: Per slotframe: (length, rx offsets, rx prefix counts, TX offsets).
        self._frames: list[tuple] = []
        #: Per slotframe: unicast-match TX cell census for the kernel's
        #: shared-cell contention pruning -- ``(length, anycast offset ->
        #: (count, all shared), neighbor -> offset -> (count, all shared))``,
        #: following exactly :meth:`TschEngine._packet_for_cell`'s match rule
        #: for a queue holding only unicast frames.
        self._prune_frames: list[tuple] = []
        for sf in slotframes:
            used: list[int] = []
            rx_offsets: list[int] = []
            #: Offsets whose cells can carry a link-layer broadcast frame.
            broadcast_tx: list[int] = []
            #: Offsets whose cells can carry a unicast frame to *any* neighbor
            #: (shared neighbor-less cells, e.g. Orchestra's common cell).
            anycast_tx: list[int] = []
            #: neighbor id -> offsets of cells dedicated to that neighbor.
            neighbor_tx: dict[int, list[int]] = {}
            anycast_census: dict[int, tuple] = {}
            neighbor_census: dict[int, dict[int, tuple]] = {}
            for offset in range(sf.length):
                bucket = sf.cells_at_offset(offset)
                if not bucket:
                    continue
                used.append(offset)
                if any(cell.is_rx for cell in bucket):
                    rx_offsets.append(offset)
                for cell in bucket:
                    if not cell.is_tx:
                        continue
                    # Mirror _packet_for_cell: which queued packet kinds could
                    # this cell carry?
                    census: Optional[dict[int, tuple]] = None
                    if cell.is_broadcast:
                        if offset not in broadcast_tx:
                            broadcast_tx.append(offset)
                        if cell.is_shared and cell.neighbor is None:
                            if offset not in anycast_tx:
                                anycast_tx.append(offset)
                            census = anycast_census
                    elif cell.neighbor is None:
                        if offset not in anycast_tx:
                            anycast_tx.append(offset)
                        census = anycast_census
                    else:
                        bucket_offsets = neighbor_tx.setdefault(cell.neighbor, [])
                        if offset not in bucket_offsets:
                            bucket_offsets.append(offset)
                        census = neighbor_census.setdefault(cell.neighbor, {})
                    if census is not None:
                        count, all_shared = census.get(offset, (0, True))
                        census[offset] = (count + 1, all_shared and cell.is_shared)
            self._prune_frames.append((sf.length, anycast_census, neighbor_census))
            rx_set = set(rx_offsets)
            prefix = [0] * (sf.length + 1)
            for offset in range(sf.length):
                prefix[offset + 1] = prefix[offset] + (1 if offset in rx_set else 0)
            self.frame_offsets.append((sf.length, used))
            self._frames.append(
                (sf.length, rx_offsets, prefix, broadcast_tx, anycast_tx, neighbor_tx)
            )
        #: Per frame: (length, broadcast offsets, anycast offsets, offset ->
        #: dedicated neighbors) as set-based lookups for :meth:`matches_tx_at`.
        self._tx_match = []
        for length, _, _, broadcast_tx, anycast_tx, neighbor_tx in self._frames:
            neighbors_at: dict[int, set] = {}
            for neighbor, offsets in neighbor_tx.items():
                for offset in offsets:
                    neighbors_at.setdefault(offset, set()).add(neighbor)
            self._tx_match.append(
                (length, frozenset(broadcast_tx), frozenset(anycast_tx), neighbors_at)
            )
        self.has_cells = any(offsets for _, offsets in self.frame_offsets)
        self.has_rx = any(frame[1] for frame in self._frames)
        self._single = len(self._frames) == 1
        self._rx_incexc = None if self._single else self._build_rx_incexc()

    def _build_rx_incexc(self) -> Optional[list[tuple]]:
        """Inclusion-exclusion terms for counting multi-slotframe RX slots.

        The node's RX occurrences are a union of arithmetic progressions
        (one per RX offset per slotframe).  For a handful of progressions the
        union size over any window is a signed sum over their pairwise /
        higher CRT intersections, each itself a progression -- giving an O(1)
        :meth:`count_idle_listen` independent of the window length.  Returns
        ``None`` when there are too many progressions (fall back to the
        walk).
        """
        progressions: list[tuple] = []
        seen = set()
        for frame in self._frames:
            length, rx_offsets = frame[0], frame[1]
            for offset in rx_offsets:
                key = (offset % length, length)
                if key not in seen:
                    seen.add(key)
                    progressions.append(key)
        if not progressions or len(progressions) > self.MAX_INCEXC_PROGRESSIONS:
            return None
        # merged[mask] = the intersection progression of the chosen subset
        # (or None when empty); standard subset DP over the lowest set bit.
        count = len(progressions)
        merged: list[Optional[tuple]] = [None] * (1 << count)
        terms: list[tuple] = []
        for mask in range(1, 1 << count):
            low = (mask & -mask).bit_length() - 1
            rest = mask & (mask - 1)
            if rest == 0:
                merged[mask] = progressions[low]
            elif merged[rest] is not None:
                merged[mask] = _intersect_progressions(merged[rest], progressions[low])
            if merged[mask] is not None:
                sign = 1 if bin(mask).count("1") % 2 else -1
                terms.append((sign, merged[mask][0], merged[mask][1]))
        return terms

    def next_tx_asn(
        self,
        asn: int,
        destinations: Optional[set] = None,
        has_broadcast: bool = True,
        has_unicast: bool = True,
    ) -> Optional[int]:
        """Earliest ASN >= ``asn`` at which a queued packet could be sent.

        ``destinations`` is the set of unicast link destinations currently
        queued (``None`` means "unknown; assume any"), and the two flags say
        whether broadcast / unicast frames are pending at all.  A cell counts
        when :meth:`TschEngine._packet_for_cell` could match one of those
        packets to it; CSMA back-off state is deliberately ignored, which only
        makes the answer conservative (earlier), never wrong.
        """
        best: Optional[int] = None
        for length, _, _, broadcast_tx, anycast_tx, neighbor_tx in self._frames:
            if has_broadcast and broadcast_tx:
                occurrence = next_offset_occurrence(asn, length, broadcast_tx)
                if occurrence is not None and (best is None or occurrence < best):
                    best = occurrence
            if has_unicast:
                if anycast_tx:
                    occurrence = next_offset_occurrence(asn, length, anycast_tx)
                    if occurrence is not None and (best is None or occurrence < best):
                        best = occurrence
                if neighbor_tx:
                    if destinations is None:
                        candidates = neighbor_tx.values()
                    else:
                        candidates = [
                            neighbor_tx[d]
                            for d in sorted(destinations)
                            if d in neighbor_tx
                        ]
                    for offsets in candidates:
                        occurrence = next_offset_occurrence(asn, length, offsets)
                        if occurrence is not None and (best is None or occurrence < best):
                            best = occurrence
        return best

    def matches_tx_at(
        self,
        asn: int,
        destinations: set,
        has_broadcast: bool,
        has_unicast: bool,
    ) -> bool:
        """Whether any TX cell active at ``asn`` could carry a queued packet.

        The match rule is exactly :meth:`TschEngine._packet_for_cell`'s: a
        broadcast cell carries a broadcast frame (or, when shared and
        neighbor-less, any unicast frame), a dedicated cell carries frames to
        its neighbor, a neighbor-less TX cell carries any unicast frame.
        ``False`` proves the slot's plan cannot involve the queue or CSMA
        state, so the engine may serve it from the interned idle plans.
        """
        for length, broadcast_set, anycast_set, neighbors_at in self._tx_match:
            residue = asn % length
            if has_broadcast and residue in broadcast_set:
                return True
            if has_unicast:
                if residue in anycast_set:
                    return True
                neighbors = neighbors_at.get(residue)
                if neighbors is not None and not destinations.isdisjoint(neighbors):
                    return True
        return False

    def shared_contention_progressions(self, destination: int) -> Optional[list[tuple]]:
        """TX opportunities of a unicast-only, single-destination backlog.

        Returns ``[(offset, length, cells)]`` arithmetic progressions -- one
        per slot offset with at least one matching TX cell, with ``cells``
        the number of matching cells the planning scan visits there -- or
        ``None`` when pruning is unsound because some matching cell is not
        shared (a dedicated or anycast cell without the SHARED option
        transmits regardless of CSMA state, so the back-off window does not
        gate the node's next transmission).

        Only valid for the queue signature the kernel checked: no broadcast
        frame pending and every queued unicast addressed to ``destination``
        -- exactly then does every matching cell resolve its packet (and its
        CSMA state) to that one destination.
        """
        progressions: list[tuple] = []
        for length, anycast_census, neighbor_census in self._prune_frames:
            merged: dict[int, int] = {}
            for offset, (count, all_shared) in anycast_census.items():
                if not all_shared:
                    return None
                merged[offset] = merged.get(offset, 0) + count
            dedicated = neighbor_census.get(destination)
            if dedicated:
                for offset, (count, all_shared) in dedicated.items():
                    if not all_shared:
                        return None
                    merged[offset] = merged.get(offset, 0) + count
            for offset, count in merged.items():
                progressions.append((offset, length, count))
        return progressions

    @staticmethod
    def _count_residues(prefix: list[int], length: int, start_asn: int, end_asn: int) -> int:
        """Count ASNs in [start_asn, end_asn) whose residue is marked in ``prefix``."""
        span = end_asn - start_asn
        full, rem = divmod(span, length)
        count = full * prefix[length]
        start = start_asn % length
        if start + rem <= length:
            count += prefix[start + rem] - prefix[start]
        else:
            count += (prefix[length] - prefix[start]) + prefix[start + rem - length]
        return count

    def count_idle_listen(self, start_asn: int, end_asn: int) -> int:
        """Number of ASNs in [start_asn, end_asn) where this node idle-listens.

        Only valid over windows the kernel has proven transmission-free: the
        node listens exactly when any of its active cells has the RX option.
        """
        if not self.has_rx:
            return 0
        if self._single:
            length, _, prefix = self._frames[0][:3]
            return self._count_residues(prefix, length, start_asn, end_asn)
        if self._rx_incexc is not None:
            # Union of few arithmetic progressions: signed sum over their CRT
            # intersections, O(1) in the window length.
            total = 0
            for sign, offset, period in self._rx_incexc:
                total += sign * _count_progression(offset, period, start_asn, end_asn)
            return total
        # Many progressions: walk the merged arithmetic progressions of RX
        # occurrences, deduplicating ASNs covered by several frames.  Costs
        # O(listen slots), independent of the window length.
        heads: list[list[int]] = []
        for frame in self._frames:
            length, rx_offsets = frame[0], frame[1]
            for offset in rx_offsets:
                occurrence = start_asn + (offset - start_asn) % length
                if occurrence < end_asn:
                    heads.append([occurrence, length])
        count = 0
        previous = -1
        while heads:
            best_index = 0
            best = heads[0][0]
            for index in range(1, len(heads)):
                if heads[index][0] < best:
                    best = heads[index][0]
                    best_index = index
            if best != previous:
                count += 1
                previous = best
            head = heads[best_index]
            head[0] += head[1]
            if head[0] >= end_asn:
                heads.pop(best_index)
        return count


class _QuietSet(set):
    """``quiet_shared_neighbors`` with mutation observation.

    The kernel's deferred CSMA settlement assumes the quiet set is constant
    over the deferred window (a quiet destination skips shared cells without
    counting the back-off down), so every membership change must settle and
    invalidate the deferral; schedulers mutate the set directly, hence the
    observing subclass.
    """

    def __init__(self, engine: "TschEngine") -> None:
        super().__init__()
        self._engine = engine

    def add(self, item: int) -> None:
        if item not in self:
            super().add(item)
            self._engine._on_quiet_mutated()
        else:
            super().add(item)

    def discard(self, item: int) -> None:
        if item in self:
            super().discard(item)
            self._engine._on_quiet_mutated()

    def remove(self, item: int) -> None:
        super().remove(item)
        self._engine._on_quiet_mutated()

    def clear(self) -> None:
        changed = bool(self)
        super().clear()
        if changed:
            self._engine._on_quiet_mutated()

    def pop(self) -> int:
        item = super().pop()
        self._engine._on_quiet_mutated()
        return item

    def _bulk(self, mutate: Callable[[], None]) -> None:
        before = len(self)
        mutate()
        if len(self) != before:
            self._engine._on_quiet_mutated()

    def update(self, *others: Iterable[int]) -> None:
        self._bulk(lambda: super(_QuietSet, self).update(*others))

    def difference_update(self, *others: Iterable[int]) -> None:
        self._bulk(lambda: super(_QuietSet, self).difference_update(*others))

    def intersection_update(self, *others: Iterable[int]) -> None:
        self._bulk(lambda: super(_QuietSet, self).intersection_update(*others))

    def symmetric_difference_update(self, other: Iterable[int]) -> None:
        # A symmetric difference can change membership while preserving the
        # size, so it always counts as a mutation.
        set.symmetric_difference_update(self, other)
        self._engine._on_quiet_mutated()

    def __ior__(self, other: Iterable[int]) -> "_QuietSet":
        self.update(other)
        return self

    def __isub__(self, other: Iterable[int]) -> "_QuietSet":
        self.difference_update(other)
        return self

    def __iand__(self, other: Iterable[int]) -> "_QuietSet":
        self.intersection_update(other)
        return self

    def __ixor__(self, other: Iterable[int]) -> "_QuietSet":
        self.symmetric_difference_update(other)
        return self


@dataclass
class MacStats:
    """Link-layer counters exposed to the metrics layer."""

    unicast_tx_packets: int = 0
    unicast_tx_attempts: int = 0
    unicast_acked: int = 0
    mac_drops: int = 0
    broadcast_sent: int = 0
    frames_received: int = 0
    collisions_observed: int = 0


class TschEngine:
    """Slot-by-slot TSCH MAC machine for one node."""

    def __init__(self, node_id: int, config: TschConfig, rng: random.Random) -> None:
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.hopping = ChannelHopping(config.hopping_sequence)
        self.queue = TxQueue(capacity=config.queue_capacity)
        self.csma = CsmaBackoff(
            rng, min_be=config.min_backoff_exponent, max_be=config.max_backoff_exponent
        )
        self.duty_cycle = DutyCycleMeter()
        self.etx = EtxEstimator(alpha=config.etx_alpha, initial_etx=config.initial_etx)
        self.stats = MacStats()
        self.slotframes: dict[int, Slotframe] = {}
        #: Monotonic counter bumped by every schedule mutation (cell add or
        #: remove in any slotframe, slotframe add or remove); pushed by the
        #: slotframes' ``on_change`` hooks, so reading it is O(1).
        self._version = 0
        #: Invoked after every schedule mutation; the network hooks this to
        #: invalidate its active-offset index.
        self.on_schedule_change: Optional[Callable[[], None]] = None
        #: Invoked after every MAC-queue mutation (packet accepted, removed,
        #: or re-addressed); the network hooks this to maintain its backlog
        #: index (the set of nodes that could possibly transmit), so the
        #: slot-skipping kernel never scans idle nodes for queued packets.
        self.on_queue_change: Optional[Callable[[], None]] = None
        #: Monotonic counter covering every MAC-queue mutation; paired with
        #: :attr:`schedule_version` it guards the kernel's cached per-node
        #: "next possible transmission" horizon.
        self.queue_version = 0
        #: Memoised :meth:`queue_signature` and the queue version it was
        #: computed at.
        self._signature: tuple[bool, bool, set] = (False, False, set())
        self._signature_version = -1
        #: ASN up to which this node's duty-cycle accounting is complete.
        #: Owned by the network's dispatch kernel: slots in
        #: ``[duty_accounted_asn, clock.asn)`` not yet recorded on the meter
        #: are slots the node provably spent sleeping or idle-listening per
        #: its (constant-over-the-window) schedule, credited lazily in bulk
        #: by :meth:`settle_duty_cycle`.  Stored in the struct-of-arrays
        #: backing row (see :meth:`bind_state`) so the network's bulk
        #: settlement reads the watermark column directly.
        self._backing = LocalBacking()
        self._row = 0
        self.duty_accounted_asn = 0
        # Consolidate the sub-views onto this engine's own backing row, so a
        # standalone engine (no network) behaves exactly like a bound one:
        # the fused accounting paths below write the meter columns through
        # ``self._backing`` unconditionally.
        bind_backing(self.queue, self._backing, 0, ("queue_len", "ptype_counts"))
        bind_backing(self.duty_cycle, self._backing, 0, DutyCycleMeter._COLUMNS)
        bind_backing(self.etx, self._backing, 0, ("etx_version",))
        #: Slotframes sorted by handle (the planning precedence order).
        self._frames: Optional[list[Slotframe]] = None
        #: Memoised sorted active-cell lists keyed by slot-offset residue(s).
        #: ``cache_enabled=False`` switches :meth:`plan_slot` to the reference
        #: per-slot gather-and-sort (the naive kernel's ground truth; results
        #: are identical either way, only the cost differs).
        self.cache_enabled = True
        self._active_cache: dict[object, list[Cell]] = {}
        self._active_cache_version = -1
        #: Interned RX slot plans keyed by (cell identity, physical channel):
        #: a listening plan is fully determined by those two, so the engine
        #: reuses one immutable SlotPlan per combination.
        self._rx_plan_cache: dict[tuple[int, int], SlotPlan] = {}
        #: For single-slotframe nodes with an empty queue, the whole plan is a
        #: pure function of (slot-offset residue, hopping phase); this caches
        #: it so the common listen/sleep decision is one dict lookup.
        self._idle_plan_cache: dict[tuple[int, int], SlotPlan] = {}
        #: Per-residue idle listen decision (channel *offset* of the winning
        #: RX cell, or None for sleep), keyed by the slotframe residue(s).
        #: The network's audience pass uses it to decide a non-backlogged
        #: node's radio state without building a SlotPlan at all.
        self._idle_rx_cache: dict[object, Optional[int]] = {}
        self._idle_rx_version = -1
        self._hop_period = len(self.hopping.sequence)
        self._profile: Optional[ScheduleProfile] = None
        #: Neighbors towards which *data* transmissions on shared cells are
        #: temporarily suppressed.  A scheduling function sets this while it
        #: awaits a 6P response from that neighbor: the response arrives on
        #: the same shared cells, so the node must spend them listening rather
        #: than pushing data (control frames are still allowed through).
        #: Mutations are observed (see :class:`_QuietSet`): they invalidate
        #: the kernel's deferred CSMA settlement.
        self.quiet_shared_neighbors: set = _QuietSet(self)
        #: Armed bulk-settlement record of the slot-skipping kernel:
        #: ``(start_asn, destination, window, progressions, tx_asn)``.  While
        #: armed, the node's backlog is provably gated behind shared-cell
        #: CSMA back-off: every pass over a matching shared cell in
        #: ``[start_asn, tx_asn)`` counts the window down without any other
        #: effect, so those slots need not be planned -- the pass-bys are
        #: credited in one integer step by :meth:`settle_csma` before the
        #: node is next planned or its queue/schedule/quiet state changes.
        self._csma_deferral: Optional[tuple] = None
        #: Number of over-the-air attempts already spent on each queued packet.
        self._attempts: dict[int, int] = {}
        #: Cold-start join state: while True the node is *unsynchronised* --
        #: it has no schedule, draws no RNG, and spends every slot listening
        #: on the scan channel (a pure function of the ASN) waiting for an
        #: Enhanced Beacon.  Checked before every cache in
        #: :meth:`plan_slot`, and by :meth:`settle_duty_cycle`, whose bulk
        #: credit for a scanning window is all idle-listen instead of the
        #: schedule-derived listen/sleep split.
        self._scanning = False
        #: Interned scan plans, one per physical channel (the scan plan is a
        #: pure function of the scan channel).
        self._scan_plan_cache: dict[int, SlotPlan] = {}
        #: Upper-layer callback invoked with (packet, asn) for every decoded frame.
        self.rx_callback: Optional[Callable[[Packet, int], None]] = None
        #: Upper-layer callback invoked with (packet, success, asn) when a
        #: unicast packet leaves the MAC (delivered or dropped after retries).
        self.tx_done_callback: Optional[Callable[[Packet, bool, int], None]] = None

    # ------------------------------------------------------------------
    # struct-of-arrays view plumbing
    # ------------------------------------------------------------------
    @property
    def duty_accounted_asn(self) -> int:
        return int(self._backing.duty_accounted_asn[self._row])

    @duty_accounted_asn.setter
    def duty_accounted_asn(self, value: int) -> None:
        self._backing.duty_accounted_asn[self._row] = value

    def bind_state(self, store: NodeStateStore, row: int) -> None:
        """Move this engine's hot state onto ``store[row]``.

        Binds the engine's own deferred-accounting watermark plus its
        queue's, meter's and ETX estimator's columns; values accumulated on
        the standalone backings are preserved.  Called once per node by
        :meth:`repro.net.network.Network.add_node`.
        """
        bind_backing(self, store, row, ("duty_accounted_asn",))
        self.queue.bind(store, row)
        self.duty_cycle.bind(store, row)
        self.etx.bind(store, row)

    # ------------------------------------------------------------------
    # slotframe management (used by scheduling functions)
    # ------------------------------------------------------------------
    def add_slotframe(self, handle: int, length: int) -> Slotframe:
        """Create (or return the existing) slotframe with the given handle."""
        if handle in self.slotframes:
            existing = self.slotframes[handle]
            if existing.length != length:
                raise ValueError(
                    f"slotframe {handle} already exists with length {existing.length}"
                )
            return existing
        slotframe = Slotframe(handle, length)
        slotframe.on_change = self._on_schedule_mutated
        self.slotframes[handle] = slotframe
        self._frames = None
        self._on_schedule_mutated()
        return slotframe

    def get_slotframe(self, handle: int) -> Optional[Slotframe]:
        return self.slotframes.get(handle)

    def remove_slotframe(self, handle: int) -> None:
        removed = self.slotframes.pop(handle, None)
        if removed is not None:
            removed.on_change = None
            self._frames = None
            self._on_schedule_mutated()

    def clear_schedule(self) -> None:
        """Remove every slotframe (used when re-initialising a scheduler)."""
        for slotframe in self.slotframes.values():
            slotframe.on_change = None
        self.slotframes.clear()
        self._frames = None
        self._on_schedule_mutated()

    # ------------------------------------------------------------------
    # schedule caching (used by plan_slot and the slot-skipping kernel)
    # ------------------------------------------------------------------
    def _on_schedule_mutated(self) -> None:
        """Record a schedule mutation and propagate it upwards."""
        self._version += 1
        if self._rx_plan_cache:
            self._rx_plan_cache.clear()
        if self._idle_plan_cache:
            self._idle_plan_cache.clear()
        if self.on_schedule_change is not None:
            self.on_schedule_change()

    @property
    def schedule_version(self) -> int:
        """Monotonic counter covering every schedule mutation.

        Any cell installed or removed in any slotframe, and any slotframe
        added or removed, strictly increases this value; derived caches (the
        engine's own, and the network-wide active-offset index) compare it to
        decide whether they are stale.
        """
        return self._version

    def _sorted_frames(self) -> list[Slotframe]:
        frames = self._frames
        if frames is None:
            frames = [self.slotframes[handle] for handle in sorted(self.slotframes)]
            self._frames = frames
        return frames

    def _active_cells(self, asn: int) -> list[Cell]:
        """Sorted active cells at ``asn`` (memoised per offset residue).

        The result is exactly what the planning loop historically built per
        slot: cells of every slotframe at this ASN, ordered by GT-TSCH purpose
        priority, then slotframe handle, then slot offset.  Treat as
        read-only.
        """
        if not self.cache_enabled:
            active: list[Cell] = []
            for handle in sorted(self.slotframes):
                # list() preserves the original cells_at contract (a fresh
                # list per call), keeping the reference loop cost-faithful.
                active.extend(list(self.slotframes[handle].cells_at(asn)))
            active.sort(
                key=lambda c: (c.purpose.priority, c.slotframe_handle, c.slot_offset)
            )
            return active
        version = self._version
        if version != self._active_cache_version:
            self._active_cache.clear()
            self._active_cache_version = version
        frames = self._sorted_frames()
        if len(frames) == 1:
            frame = frames[0]
            key: object = asn % frame.length
            bucket = frame.cells_at(asn)
            if not bucket:
                return bucket
        else:
            # Key by the combination of non-empty buckets, not the raw residue
            # tuple: with coprime slotframe lengths the residues cycle with
            # the lcm of the lengths (thousands of slots), while the distinct
            # non-empty combinations number a handful.
            key_parts: list[tuple] = []
            buckets: list[list[Cell]] = []
            for frame in frames:
                residue = asn % frame.length
                bucket = frame.cells_at(residue)
                if bucket:
                    key_parts.append((frame.handle, residue))
                    buckets.append(bucket)
            if not buckets:
                return _NO_CELLS
            key = key_parts[0] if len(key_parts) == 1 else tuple(key_parts)
        cached = self._active_cache.get(key)
        if cached is None:
            if len(frames) == 1:
                cached = list(bucket)
            else:
                cached = [cell for bucket in buckets for cell in bucket]
            cached.sort(
                key=lambda c: (c.purpose.priority, c.slotframe_handle, c.slot_offset)
            )
            self._active_cache[key] = cached
        return cached

    def idle_listen_channel_offset(self, asn: int) -> Optional[int]:
        """Channel offset this node idle-listens on at ``asn`` (None = sleep).

        Only valid for a node whose slot provably cannot involve its queue or
        CSMA state (empty queue in particular): the decision then reduces to
        "first RX cell in planning order, if any", which is memoised per
        slot-offset residue.  Exactly :meth:`plan_slot`'s fall-through
        listen/sleep choice, without allocating or interning a plan.
        """
        version = self._version
        if version != self._idle_rx_version:
            self._idle_rx_cache.clear()
            self._idle_rx_version = version
        frames = self._frames
        if frames is None:
            frames = self._sorted_frames()
        if len(frames) == 1:
            key: object = asn % frames[0].length
        else:
            key = tuple(asn % frame.length for frame in frames)
        cache = self._idle_rx_cache
        if key in cache:
            return cache[key]
        offset: Optional[int] = None
        for cell in self._active_cells(asn):
            if cell.is_rx:
                offset = cell.channel_offset
                break
        cache[key] = offset
        return offset

    def schedule_profile(self) -> ScheduleProfile:
        """Current :class:`ScheduleProfile` (rebuilt when the schedule changes)."""
        version = self.schedule_version
        profile = self._profile
        if profile is None or profile.version != version:
            profile = ScheduleProfile(self._sorted_frames(), version)
            self._profile = profile
        return profile

    def cached_profile(self) -> Optional[ScheduleProfile]:
        """The last built :class:`ScheduleProfile`, possibly stale, or None.

        Right after a schedule mutation this still describes the
        *pre-mutation* schedule, which is exactly what the network needs to
        settle the deferred duty-cycle window that accumulated under it.
        """
        return self._profile

    def settle_duty_cycle(self, asn: int, profile: Optional[ScheduleProfile] = None) -> None:
        """Credit the deferred window ``[duty_accounted_asn, asn)`` in bulk.

        The kernel guarantees every slot in the window was spent according to
        ``profile`` (the engine's current one when not given): idle-listening
        where the profile has an active RX cell, sleeping everywhere else.
        Integer bulk credits make the meter bit-identical to per-slot
        recording.  Callers that just mutated the schedule must pass the
        pre-mutation profile (see :meth:`cached_profile`).
        """
        backing = self._backing
        row = self._row
        accounted = backing.duty_accounted_asn[row]
        if accounted >= asn:
            return
        if self._scanning:
            # Every scan slot is an idle listen (the reference loop records
            # record_rx(False) for each); slots in which the scanner decoded
            # a frame are credited eagerly through account_rx_frame_slot /
            # account_slot and never reach this window.
            window = asn - accounted
            backing.rx_slots[row] += window
            backing.idle_listen_slots[row] += window
            backing.total_slots[row] += window
            backing.duty_accounted_asn[row] = asn
            return
        if profile is None:
            # Inlined schedule_profile() version check (hot: one settle per
            # visited node per stepped slot).
            profile = self._profile
            if profile is None or profile.version != self._version:
                profile = self.schedule_profile()
        window = asn - accounted
        if not profile.has_rx:
            idle = 0
        elif profile._single:
            # Inlined single-slotframe count (the audience pass settles every
            # visited node per stepped slot, so this path is hot).
            length, _, prefix = profile._frames[0][:3]
            full, rem = divmod(window, length)
            idle = full * prefix[length]
            start = accounted % length
            if start + rem <= length:
                idle += prefix[start + rem] - prefix[start]
            else:
                idle += (prefix[length] - prefix[start]) + prefix[start + rem - length]
        else:
            idle = profile.count_idle_listen(accounted, asn)
        # The sub-views share this engine's backing (see __init__), so the
        # meter columns are written directly -- the fused form of the
        # meter's record_rx/record_sleep credits.
        if idle:
            backing.rx_slots[row] += idle
            backing.idle_listen_slots[row] += idle
        backing.sleep_slots[row] += window - idle
        backing.total_slots[row] += window
        backing.duty_accounted_asn[row] = asn

    def account_tx_slot(self, asn: int) -> None:
        """Settle the deferred window and record slot ``asn`` as a TX slot.

        Fused eager-accounting helper for the dispatch kernel's per-slot
        hot path (one call instead of settle + watermark + meter record).
        """
        backing = self._backing
        row = self._row
        if backing.duty_accounted_asn[row] < asn:
            self.settle_duty_cycle(asn)
        backing.duty_accounted_asn[row] = asn + 1
        backing.tx_slots[row] += 1
        backing.total_slots[row] += 1

    def account_rx_frame_slot(self, asn: int) -> None:
        """Settle the deferred window and record slot ``asn`` as a busy RX slot."""
        backing = self._backing
        row = self._row
        if backing.duty_accounted_asn[row] < asn:
            self.settle_duty_cycle(asn)
        backing.duty_accounted_asn[row] = asn + 1
        backing.rx_slots[row] += 1
        backing.total_slots[row] += 1

    # ------------------------------------------------------------------
    # cold-start EB scan (unsynchronised join)
    # ------------------------------------------------------------------
    @property
    def scanning(self) -> bool:
        """Whether this node is in the unsynchronised EB-scan state."""
        return self._scanning

    def scan_channel(self, asn: int) -> int:
        """Physical channel the scanner parks on at ``asn``.

        A pure function of the ASN (no RNG, no state): the scanner dwells
        ``scan_dwell_slots`` slots per channel and walks the hopping
        sequence, so it eventually coincides with any periodic beacon's
        hopping phase.  Both slot loops compute the identical channel.
        """
        dwell = self.config.scan_dwell_slots
        return int(self.hopping.sequence[(asn // dwell) % self._hop_period])

    def scan_plan(self, asn: int) -> SlotPlan:
        """The scanning node's plan for ``asn``: listen on the scan channel."""
        channel = self.scan_channel(asn)
        plan = self._scan_plan_cache.get(channel)
        if plan is None:
            plan = SlotPlan(action="rx", cell=None, channel=channel)
            self._scan_plan_cache[channel] = plan
        return plan

    def begin_scan(self, asn: int) -> None:
        """Enter the EB scan at ``asn`` (idempotent).

        The deferred duty window accumulated under the previous state is
        settled first (callers that just tore a schedule down have already
        settled through the mutation barrier, making this a no-op), then
        every subsequent slot is accounted as a scan idle-listen.
        """
        if self._scanning:
            return
        self.settle_duty_cycle(asn)
        self._scanning = True

    def end_scan(self, asn: int) -> None:
        """Leave the EB scan at ``asn`` (first EB decoded -- idempotent).

        Settles the scan window ``[duty_accounted_asn, asn)`` as idle-listen
        before flipping the flag: the sync slot ``asn`` itself is credited by
        the caller's normal busy-RX accounting (both loops account it as a
        received frame), and any schedule the node installs next starts its
        deferred window at ``asn`` exactly.
        """
        if not self._scanning:
            return
        self.settle_duty_cycle(asn)
        self._scanning = False

    # ------------------------------------------------------------------
    # deferred shared-cell contention (used by the slot-skipping kernel)
    # ------------------------------------------------------------------
    def plan_csma_deferral(self, asn: int) -> Optional[int]:
        """Arm (or report) a bulk CSMA settlement; returns the true TX ASN.

        When every transmission opportunity of the current backlog is a
        *shared* cell towards one destination whose back-off window is still
        open, the node provably skips the next ``window`` matching cell
        passes -- each a pure integer countdown -- and transmits at the first
        pass with the window expired.  That ASN is returned (the kernel heaps
        it as the node's horizon) and the settlement record is armed so the
        skipped passes are credited exactly once.  ``None`` means the node is
        not prunable (broadcast pending, several destinations, a non-shared
        matching cell, quiet suppression, or no open window) and the kernel
        must fall back to the conservative CSMA-blind horizon.
        """
        deferral = self._csma_deferral
        if deferral is not None:
            if deferral[4] >= asn:
                # Still armed (nothing invalidated it): the horizon holds.
                return deferral[4]
            # A deferral should never outlive its TX slot (the kernel steps
            # it); settle defensively and rebuild from live state below.
            self.settle_csma(asn)
        has_broadcast, has_unicast, destinations = self.queue_signature()
        if has_broadcast or not has_unicast or len(destinations) != 1:
            return None
        (destination,) = destinations
        if destination in self.quiet_shared_neighbors:
            return None
        window = self.csma.window(destination)
        if window <= 0:
            return None
        progressions = self.schedule_profile().shared_contention_progressions(destination)
        if not progressions:
            # None: a non-shared matching cell makes pruning unsound;
            # empty: no matching cell at all (no horizon either way).
            return None
        if len(progressions) == 1:
            # Single progression (e.g. 6TiSCH minimal's lone shared cell):
            # each occurrence consumes ``count`` window units, so the
            # transmission lands exactly ``window // count`` occurrences
            # after the next one -- the closed form of the walk below.
            offset, length, count = progressions[0]
            first = asn + (offset - asn) % length
            tx_asn = first + (window // count) * length
            self._csma_deferral = (asn, destination, window, progressions, tx_asn)
            return tx_asn
        # Walk the merged occurrence slots until the window runs out.  The
        # planning scan counts one pass per matching cell, and the first
        # matching cell reached with the window at zero transmits -- possibly
        # in the same slot that consumed the window's last unit.
        remaining = window
        cursor = asn
        while True:
            best: Optional[int] = None
            cells = 0
            for offset, length, count in progressions:
                occurrence = cursor + (offset - cursor) % length
                if best is None or occurrence < best:
                    best = occurrence
                    cells = count
                elif occurrence == best:
                    cells += count
            if cells > remaining:
                tx_asn = best
                break
            remaining -= cells
            cursor = best + 1
        self._csma_deferral = (asn, destination, window, progressions, tx_asn)
        return tx_asn

    def settle_csma(self, asn: int) -> None:
        """Credit the armed deferral's skipped cell passes up to ``asn``.

        Called before anything that could observe or perturb the back-off
        state: planning this node's slot (the current slot's pass is then
        counted live by the scan), or a queue/schedule/quiet mutation (the
        countdown model was derived under the pre-mutation state, which held
        for every strictly earlier slot).  Clears the record and re-dirties
        the kernel's horizon through the queue hook.
        """
        deferral = self._csma_deferral
        if deferral is None:
            return
        self._csma_deferral = None
        start, destination, _, progressions, tx_asn = deferral
        end = asn if asn < tx_asn else tx_asn
        if end > start:
            skipped = 0
            for offset, length, count in progressions:
                skipped += count * _count_progression(offset, length, start, end)
            if skipped:
                self.csma.settle_skips(destination, skipped)
        self.mark_queue_mutated()

    def _advance_csma_deferral(self, credit_until: int, new_start: int) -> None:
        """Re-anchor the armed deferral without tearing it down.

        Credits the contention passes in ``[start, credit_until)`` and moves
        the record's anchor to ``new_start``, keeping it armed.  The deferred
        TX slot is invariant under live counting (each occurrence consumes
        one window unit either way), so the heaped horizon and its version
        stamps remain valid and no recomputation cascades.
        """
        start, destination, window, progressions, tx_asn = self._csma_deferral
        if credit_until > start:
            skipped = 0
            for offset, length, count in progressions:
                skipped += count * _count_progression(offset, length, start, credit_until)
            if skipped:
                self.csma.settle_skips(destination, skipped)
                window -= skipped
        self._csma_deferral = (new_start, destination, window, progressions, tx_asn)

    def absorb_deferred_pass(self, asn: int) -> None:
        """Credit the armed deferral through ``asn``; the caller skips planning.

        Only valid while ``asn`` precedes the deferred TX slot: every
        matching cell at ``asn`` is then provably a losing shared-cell pass
        (a pure window decrement), and the plan's outcome is exactly the
        idle listen/sleep fall-through -- so the dispatch loop may treat the
        node as a pure listener without running the TX scan at all.
        """
        self._advance_csma_deferral(asn + 1, asn + 1)

    def _on_quiet_mutated(self) -> None:
        """Quiet-set membership changed; the contention model is stale.

        Propagated through the queue-mutation hook: the network settles the
        armed deferral (quiet skips do not count the window down, so the
        credit must stop at the mutation instant) and recomputes the horizon.
        """
        self.mark_queue_mutated()

    # ------------------------------------------------------------------
    # queue interface (used by the node / upper layers)
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        """Add a packet to the MAC queue; returns False on queue loss."""
        packet.enqueued_at = now
        accepted = self.queue.add(packet)
        if accepted:
            self._attempts.setdefault(packet.packet_id, 0)
            self.mark_queue_mutated()
        return accepted

    def mark_queue_mutated(self) -> None:
        """Record a queue mutation and propagate it to the network kernel.

        Called internally after enqueue/dequeue; the node also calls it after
        re-addressing queued packets on a parent switch (the packet set is
        unchanged but the destinations the kernel's horizon cache was computed
        from are not).
        """
        self.queue_version += 1
        if self.on_queue_change is not None:
            self.on_queue_change()

    def _dequeue(self, packet: Packet) -> None:
        """Remove ``packet`` after delivery or drop, notifying the backlog index."""
        self.queue.remove(packet)
        self._attempts.pop(packet.packet_id, None)
        self.mark_queue_mutated()

    def flush_queue(self, destination: Optional[int] = None) -> list[Packet]:
        """Drop every queued packet -- or only those link-addressed to
        ``destination`` -- returning the flushed packets in queue order.

        The fault-injection flush policy: a crashing node loses its whole
        queue with the device, and a survivor flushes traffic addressed to
        a dead neighbor instead of burning retries on it.  Loss accounting
        is the caller's responsibility (the MAC does not know *why* it is
        flushing); retry state is forgotten here so a packet id reused
        after a reboot starts from a clean attempt count.  The single
        mutation notification keeps the kernel's CSMA settlement and
        backlog index exact.
        """
        flushed = [
            packet
            for packet in self.queue
            if destination is None or packet.link_destination == destination
        ]
        for packet in flushed:
            self.queue.remove(packet)
            self._attempts.pop(packet.packet_id, None)
        if flushed:
            self.mark_queue_mutated()
        return flushed

    def queue_length(self) -> int:
        """Current number of queued packets (the game's ``q_i(t)``)."""
        return len(self.queue)

    def queue_signature(self) -> tuple[bool, bool, set]:
        """``(has_broadcast, has_unicast, unicast destinations)`` of the queue.

        Memoised per :attr:`queue_version`; the slot planner and the network
        kernel use it to decide which TX cells could carry the current
        backlog without walking the queue on every slot.
        """
        if self._signature_version != self.queue_version:
            has_broadcast = False
            destinations: set = set()
            # Iterate the backing deque directly: TxQueue.__iter__ snapshots
            # into a list (callers may mutate mid-iteration), which this
            # read-only signature scan does not need.
            for packet in self.queue._queue:
                destination = packet.link_destination
                if destination == BROADCAST_ADDRESS:
                    has_broadcast = True
                else:
                    destinations.add(destination)
            self._signature = (has_broadcast, bool(destinations), destinations)
            self._signature_version = self.queue_version
        return self._signature

    def data_queue_length(self) -> int:
        """Number of queued application-data packets."""
        return len(self.queue.data_packets())

    # ------------------------------------------------------------------
    # slot planning
    # ------------------------------------------------------------------
    def plan_slot(self, asn: int) -> SlotPlan:
        """Decide what this node does at ``asn``.

        Precedence (matching Contiki-NG):

        1. a transmission, if any active cell with the TX option has a
           matching pending packet (and, for shared cells, the CSMA back-off
           window has expired);
        2. otherwise a reception, if any active cell has the RX option;
        3. otherwise sleep.

        Ties between cells are broken by GT-TSCH purpose priority, then by
        slotframe handle.
        """
        if self._scanning:
            # Unsynchronised: no schedule, no queue scan, no caches -- park
            # on the scan channel.  Checked first on BOTH the cached and the
            # reference path so the two loops agree slot for slot.
            return self.scan_plan(asn)
        deferral = self._csma_deferral
        if deferral is not None:
            # The kernel deferred this node's shared-cell countdown; credit
            # the passes strictly before this slot so the scan below sees
            # exactly the back-off state the per-slot loop would have.  A
            # plan before the deferred TX slot keeps the record armed (the
            # countdown model still holds); the TX slot itself retires it.
            if asn < deferral[4]:
                self._advance_csma_deferral(asn, asn + 1)
            else:
                self.settle_csma(asn)
        if self.cache_enabled:
            if len(self.queue):
                has_broadcast, has_unicast, destinations = self.queue_signature()
                if self.schedule_profile().matches_tx_at(
                    asn, destinations, has_broadcast, has_unicast
                ):
                    return self._plan_slot_impl(asn)
            # No queued packet can match any TX cell at this ASN (trivially so
            # for an empty queue), so the decision cannot involve the queue or
            # CSMA state: it is a pure function of the active cells and the
            # hopping phase.
            frames = self._frames
            if frames is None:
                frames = self._sorted_frames()
            if len(frames) == 1:
                key: tuple = (asn % frames[0].length, asn % self._hop_period)
            else:
                active = self._active_cells(asn)
                if not active:
                    return SLEEP_PLAN
                # The memoised active-cell list is alive (and unique) for the
                # current schedule version, so its identity keys the plan; the
                # cache is dropped on every mutation together with it.
                key = (id(active), asn % self._hop_period)
            plan = self._idle_plan_cache.get(key)
            if plan is None:
                plan = self._plan_slot_impl(asn, scan_tx=False)
                self._idle_plan_cache[key] = plan
            return plan
        return self._plan_slot_impl(asn)

    def _plan_slot_impl(self, asn: int, scan_tx: bool = True) -> SlotPlan:
        active = self._active_cells(asn)
        if not active:
            return SLEEP_PLAN

        tx_choice: Optional[tuple[Cell, Packet]] = None
        # An empty queue cannot feed any TX cell; skip straight to listening
        # (the reference path scans every cell, as the seed loop did).
        # ``scan_tx=False`` extends that shortcut to queues proven unmatchable
        # at this ASN -- the scan would find no packet and touch nothing.
        cells_to_scan = (
            active if (scan_tx and (len(self.queue) or not self.cache_enabled)) else ()
        )
        for cell in cells_to_scan:
            if not cell.is_tx:
                continue
            packet = self._packet_for_cell(cell)
            if packet is None:
                continue
            if cell.is_shared and not packet.is_broadcast:
                if (
                    packet.link_destination in self.quiet_shared_neighbors
                    and not packet.is_control
                ):
                    # Awaiting a 6P response from this neighbor: keep the
                    # shared cells free (and our radio listening) for it.
                    continue
                if not self.csma.can_transmit(packet.link_destination):
                    # An eligible shared cell passes by unused: count down.
                    self.csma.on_shared_cell_skipped(packet.link_destination)
                    continue
            tx_choice = (cell, packet)
            break

        if tx_choice is not None:
            cell, packet = tx_choice
            channel = self.hopping.channel_for(asn, cell.channel_offset)
            return SlotPlan(action="tx", cell=cell, packet=packet, channel=channel)

        for cell in active:
            if cell.is_rx:
                channel = self.hopping.channel_for(asn, cell.channel_offset)
                if not self.cache_enabled:
                    return SlotPlan(action="rx", cell=cell, channel=channel)
                key = (id(cell), channel)
                plan = self._rx_plan_cache.get(key)
                if plan is None:
                    plan = SlotPlan(action="rx", cell=cell, channel=channel)
                    self._rx_plan_cache[key] = plan
                return plan

        return SLEEP_PLAN

    def _packet_for_cell(self, cell: Cell) -> Optional[Packet]:
        """Pick the queued packet (if any) that this TX cell may carry."""
        if cell.is_broadcast:
            packet = self.queue.peek_for(None, broadcast=True)
            if packet is not None:
                return packet
            # Orchestra's common shared cell also carries unicast control
            # traffic (DAOs) when no broadcast frame is pending.
            if cell.is_shared and cell.neighbor is None:
                return self.queue.peek_for(None)
            return None
        return self.queue.peek_for(cell.neighbor)

    def build_intent(self, plan: SlotPlan) -> TransmissionIntent:
        """Turn a TX slot plan into a medium-level transmission intent."""
        if not plan.is_tx or plan.packet is None or plan.channel is None:
            raise ValueError("build_intent requires a TX plan")
        return TransmissionIntent(
            sender=self.node_id,
            packet=plan.packet,
            channel=plan.channel,
            expects_ack=not plan.packet.is_broadcast,
        )

    # ------------------------------------------------------------------
    # outcome handling
    # ------------------------------------------------------------------
    def on_transmission_result(
        self, plan: SlotPlan, result: TransmissionResult, asn: int, now: float
    ) -> None:
        """Process the medium's verdict for a transmission made this slot."""
        packet = plan.packet
        cell = plan.cell
        if packet is None or cell is None:
            return

        if packet.is_broadcast:
            # Broadcast frames are fire-and-forget: one attempt, no ACK.
            self._dequeue(packet)
            self.stats.broadcast_sent += 1
            return

        destination = packet.link_destination
        attempts = self._attempts.get(packet.packet_id, 0) + 1
        self._attempts[packet.packet_id] = attempts
        self.stats.unicast_tx_attempts += 1
        if result.collided:
            self.stats.collisions_observed += 1

        if result.acked:
            self._dequeue(packet)
            self.stats.unicast_tx_packets += 1
            self.stats.unicast_acked += 1
            self.etx.record_tx(destination, True, attempts=attempts, now=now)
            if cell.is_shared:
                self.csma.on_transmission_success(destination)
            if self.tx_done_callback is not None:
                self.tx_done_callback(packet, True, asn)
            return

        # Transmission failed (no ACK): back off on shared cells, retry until
        # the retransmission budget (Table II: 4) is exhausted.
        packet.retransmissions += 1
        if cell.is_shared:
            self.csma.on_transmission_failure(destination)
        if attempts >= 1 + self.config.max_retries:
            self._dequeue(packet)
            self.stats.unicast_tx_packets += 1
            self.stats.mac_drops += 1
            self.etx.record_tx(destination, False, attempts=attempts, now=now)
            if self.tx_done_callback is not None:
                self.tx_done_callback(packet, False, asn)

    def on_frame_received(self, packet: Packet, asn: int, now: float) -> None:
        """Handle a frame decoded by this node's radio."""
        self.stats.frames_received += 1
        self.etx.record_rx(packet.link_source, now)
        if self.rx_callback is not None:
            self.rx_callback(packet, asn)

    # ------------------------------------------------------------------
    # duty-cycle accounting (driven by the network loop)
    # ------------------------------------------------------------------
    def account_slot(self, plan: SlotPlan, frame_received: bool = False) -> None:
        """Record this slot's radio activity for the duty-cycle metric."""
        if plan.is_tx:
            self.duty_cycle.record_tx()
        elif plan.is_rx:
            self.duty_cycle.record_rx(frame_received)
        else:
            self.duty_cycle.record_sleep()

    # ------------------------------------------------------------------
    # schedule introspection helpers (used by scheduling functions)
    # ------------------------------------------------------------------
    def count_cells(
        self,
        options: Optional[CellOption] = None,
        neighbor: Optional[int] = None,
        purpose: Optional[CellPurpose] = None,
    ) -> int:
        """Total matching cells across all slotframes."""
        return sum(
            sf.count_cells(options=options, neighbor=neighbor, purpose=purpose)
            for sf in self.slotframes.values()
        )

    def all_cells(self) -> list[Cell]:
        cells: list[Cell] = []
        for handle in sorted(self.slotframes):
            cells.extend(self.slotframes[handle].all_cells())
        return cells
