"""TSCH cells: the unit of scheduling in the CDU matrix.

A cell is a (timeslot offset, channel offset) coordinate in the Channel
Distribution Usage matrix (Fig. 1 of the paper) plus the options describing
how the node uses that coordinate: transmit, receive, shared (contention
based) or broadcast.  GT-TSCH additionally labels each cell with its purpose
-- one of the five timeslot types of Section IV -- which drives the slotframe
creation rules and the priority order between cell types.
"""

from __future__ import annotations

from enum import Enum, Flag, auto
from typing import Optional


class CellOption(Flag):
    """Link options of a TSCH cell (IEEE 802.15.4e / RFC 8480 terminology)."""

    NONE = 0
    TX = auto()
    RX = auto()
    #: Contention-based cell: transmissions use CSMA/CA back-off and several
    #: senders may legitimately target the same cell.
    SHARED = auto()
    #: Cell used for link-layer broadcast frames (EBs, DIOs); no ACK.
    BROADCAST = auto()
    #: Cell is part of every slotframe iteration regardless of pending traffic
    #: (the node keeps its radio on even with nothing to send) -- used for
    #: dedicated RX cells.
    ALWAYS_ON = auto()


class CellPurpose(Enum):
    """GT-TSCH's five timeslot types, in descending priority order (§IV)."""

    BROADCAST = "broadcast"
    UNICAST_6P = "unicast_6p"
    UNICAST_DATA = "unicast_data"
    SHARED = "shared"
    SLEEP = "sleep"

    @property
    def priority(self) -> int:
        """Smaller value = higher priority when several cells share a slot."""
        order = {
            CellPurpose.BROADCAST: 0,
            CellPurpose.UNICAST_6P: 1,
            CellPurpose.UNICAST_DATA: 2,
            CellPurpose.SHARED: 3,
            CellPurpose.SLEEP: 4,
        }
        return order[self]


class Cell:
    """One scheduled cell in a slotframe.

    Attributes
    ----------
    slot_offset / channel_offset:
        Coordinates in the CDU matrix.  The channel offset is translated to a
        physical channel through the hopping sequence at transmission time.
    options:
        Combination of :class:`CellOption` flags.
    neighbor:
        Link-layer neighbor this cell is dedicated to (``None`` for broadcast
        or "any neighbor" cells, as in Orchestra's common shared cell).
    purpose:
        GT-TSCH timeslot type; other schedulers may leave the default.
    owner_is_transmitter:
        Convenience flag used by schedulers when mirroring a negotiated cell
        on both link ends.
    """

    __slots__ = (
        "slot_offset",
        "channel_offset",
        "options",
        "neighbor",
        "purpose",
        "slotframe_handle",
        "owner_is_transmitter",
        "label",
        "is_tx",
        "is_rx",
        "is_shared",
        "is_broadcast",
    )

    def __init__(
        self,
        slot_offset: int,
        channel_offset: int,
        options: CellOption,
        neighbor: Optional[int] = None,
        purpose: CellPurpose = CellPurpose.UNICAST_DATA,
        slotframe_handle: int = 0,
        owner_is_transmitter: bool = True,
        label: str = "",
    ) -> None:
        if slot_offset < 0:
            raise ValueError("slot_offset must be non-negative")
        if channel_offset < 0:
            raise ValueError("channel_offset must be non-negative")
        if options == CellOption.NONE:
            raise ValueError("a cell must have at least one option")
        self.slot_offset = slot_offset
        self.channel_offset = channel_offset
        self.options = options
        self.neighbor = neighbor
        self.purpose = purpose
        self.slotframe_handle = slotframe_handle
        self.owner_is_transmitter = owner_is_transmitter
        #: Free-form tag for debugging / tests (e.g. "eb", "orchestra-rbs-rx").
        self.label = label
        # Cells are immutable once installed, so the option tests the TSCH
        # engine performs on every planned slot are resolved here once instead
        # of going through Flag arithmetic per query.
        self.is_tx = bool(options & CellOption.TX)
        self.is_rx = bool(options & CellOption.RX)
        self.is_shared = bool(options & CellOption.SHARED)
        self.is_broadcast = bool(options & CellOption.BROADCAST)

    def _key(self) -> tuple:
        return (
            self.slot_offset,
            self.channel_offset,
            self.options,
            self.neighbor,
            self.purpose,
            self.slotframe_handle,
            self.owner_is_transmitter,
            self.label,
        )

    def __eq__(self, other: object) -> bool:
        # Value equality over the constructor fields, matching the dataclass
        # semantics this class had before the __slots__ conversion: slotframe
        # removal (`list.remove`) relies on it.
        if other.__class__ is not Cell:
            return NotImplemented
        return self._key() == other._key()

    __hash__ = None  # type: ignore[assignment]  # mutable value semantics

    def matches(self, slot_offset: int, channel_offset: Optional[int] = None) -> bool:
        """True when the cell sits at the given CDU coordinates."""
        if self.slot_offset != slot_offset:
            return False
        return channel_offset is None or self.channel_offset == channel_offset

    def coordinate(self) -> tuple:
        """(slot offset, channel offset) pair, e.g. for CDU-matrix rendering."""
        return (self.slot_offset, self.channel_offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        opts = []
        for option in (CellOption.TX, CellOption.RX, CellOption.SHARED, CellOption.BROADCAST):
            if self.options & option:
                opts.append(option.name)
        target = "*" if self.neighbor is None else str(self.neighbor)
        return (
            f"Cell(({self.slot_offset},{self.channel_offset}) {'|'.join(opts)} "
            f"nbr={target} {self.purpose.value})"
        )
