"""TSCH cells: the unit of scheduling in the CDU matrix.

A cell is a (timeslot offset, channel offset) coordinate in the Channel
Distribution Usage matrix (Fig. 1 of the paper) plus the options describing
how the node uses that coordinate: transmit, receive, shared (contention
based) or broadcast.  GT-TSCH additionally labels each cell with its purpose
-- one of the five timeslot types of Section IV -- which drives the slotframe
creation rules and the priority order between cell types.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, Flag, auto
from typing import Optional


class CellOption(Flag):
    """Link options of a TSCH cell (IEEE 802.15.4e / RFC 8480 terminology)."""

    NONE = 0
    TX = auto()
    RX = auto()
    #: Contention-based cell: transmissions use CSMA/CA back-off and several
    #: senders may legitimately target the same cell.
    SHARED = auto()
    #: Cell used for link-layer broadcast frames (EBs, DIOs); no ACK.
    BROADCAST = auto()
    #: Cell is part of every slotframe iteration regardless of pending traffic
    #: (the node keeps its radio on even with nothing to send) -- used for
    #: dedicated RX cells.
    ALWAYS_ON = auto()


class CellPurpose(Enum):
    """GT-TSCH's five timeslot types, in descending priority order (§IV)."""

    BROADCAST = "broadcast"
    UNICAST_6P = "unicast_6p"
    UNICAST_DATA = "unicast_data"
    SHARED = "shared"
    SLEEP = "sleep"

    @property
    def priority(self) -> int:
        """Smaller value = higher priority when several cells share a slot."""
        order = {
            CellPurpose.BROADCAST: 0,
            CellPurpose.UNICAST_6P: 1,
            CellPurpose.UNICAST_DATA: 2,
            CellPurpose.SHARED: 3,
            CellPurpose.SLEEP: 4,
        }
        return order[self]


@dataclass
class Cell:
    """One scheduled cell in a slotframe.

    Attributes
    ----------
    slot_offset / channel_offset:
        Coordinates in the CDU matrix.  The channel offset is translated to a
        physical channel through the hopping sequence at transmission time.
    options:
        Combination of :class:`CellOption` flags.
    neighbor:
        Link-layer neighbor this cell is dedicated to (``None`` for broadcast
        or "any neighbor" cells, as in Orchestra's common shared cell).
    purpose:
        GT-TSCH timeslot type; other schedulers may leave the default.
    owner_is_transmitter:
        Convenience flag used by schedulers when mirroring a negotiated cell
        on both link ends.
    """

    slot_offset: int
    channel_offset: int
    options: CellOption
    neighbor: Optional[int] = None
    purpose: CellPurpose = CellPurpose.UNICAST_DATA
    slotframe_handle: int = 0
    owner_is_transmitter: bool = True
    #: Free-form tag for debugging / tests (e.g. "eb", "orchestra-rbs-rx").
    label: str = ""

    def __post_init__(self) -> None:
        if self.slot_offset < 0:
            raise ValueError("slot_offset must be non-negative")
        if self.channel_offset < 0:
            raise ValueError("channel_offset must be non-negative")
        if self.options == CellOption.NONE:
            raise ValueError("a cell must have at least one option")
        # Cells are immutable once installed, so the option tests the TSCH
        # engine performs on every planned slot are resolved here once instead
        # of going through Flag arithmetic per query.
        self.is_tx = bool(self.options & CellOption.TX)
        self.is_rx = bool(self.options & CellOption.RX)
        self.is_shared = bool(self.options & CellOption.SHARED)
        self.is_broadcast = bool(self.options & CellOption.BROADCAST)

    def matches(self, slot_offset: int, channel_offset: Optional[int] = None) -> bool:
        """True when the cell sits at the given CDU coordinates."""
        if self.slot_offset != slot_offset:
            return False
        return channel_offset is None or self.channel_offset == channel_offset

    def coordinate(self) -> tuple:
        """(slot offset, channel offset) pair, e.g. for CDU-matrix rendering."""
        return (self.slot_offset, self.channel_offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        opts = []
        for option in (CellOption.TX, CellOption.RX, CellOption.SHARED, CellOption.BROADCAST):
            if self.options & option:
                opts.append(option.name)
        target = "*" if self.neighbor is None else str(self.neighbor)
        return (
            f"Cell(({self.slot_offset},{self.channel_offset}) {'|'.join(opts)} "
            f"nbr={target} {self.purpose.value})"
        )
