"""TSCH channel hopping.

TSCH translates a cell's *channel offset* into a *physical channel* at every
slotframe iteration::

    channel = hopping_sequence[(ASN + channel_offset) % len(hopping_sequence)]

so that a given cell visits every channel of the sequence over time, which
averages out narrow-band interference.  The paper's configuration (Table II)
uses the 8-entry sequence ``17, 23, 15, 25, 19, 11, 13, 21`` -- a subset of
the 16 channels of IEEE 802.15.4 in the 2.4 GHz band -- and that is the
default here.
"""

from __future__ import annotations

from collections.abc import Sequence


#: Hopping sequence from Table II of the paper (Contiki-NG's TSCH_HOPPING_SEQUENCE_8_8).
DEFAULT_HOPPING_SEQUENCE: tuple[int, ...] = (17, 23, 15, 25, 19, 11, 13, 21)

#: The full 16-channel sequence of IEEE 802.15.4 channel page 0 (2.4 GHz).
FULL_HOPPING_SEQUENCE: tuple[int, ...] = (
    16, 17, 23, 18, 26, 15, 25, 22, 19, 11, 12, 13, 24, 14, 20, 21,
)


class ChannelHopping:
    """Maps (ASN, channel offset) pairs to physical channels."""

    def __init__(self, sequence: Sequence[int] = DEFAULT_HOPPING_SEQUENCE) -> None:
        if not sequence:
            raise ValueError("hopping sequence must not be empty")
        if len(set(sequence)) != len(sequence):
            raise ValueError("hopping sequence must not contain duplicate channels")
        self.sequence: tuple[int, ...] = tuple(sequence)

    @property
    def num_channels(self) -> int:
        """Number of distinct channel offsets available to the scheduler."""
        return len(self.sequence)

    def channel_for(self, asn: int, channel_offset: int) -> int:
        """Physical channel used at ``asn`` by a cell with ``channel_offset``."""
        if asn < 0:
            raise ValueError("asn must be non-negative")
        if channel_offset < 0:
            raise ValueError("channel_offset must be non-negative")
        return self.sequence[(asn + channel_offset) % len(self.sequence)]

    def offsets(self) -> range:
        """The range of valid channel offsets."""
        return range(len(self.sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ChannelHopping(sequence={self.sequence})"
