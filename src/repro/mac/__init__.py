"""IEEE 802.15.4e TSCH MAC layer.

The modules in this package reproduce the slot-level behaviour of the
Contiki-NG TSCH implementation used by the paper:

* :mod:`repro.mac.cell` / :mod:`repro.mac.slotframe` -- the schedule data
  structures (cells addressed by slot offset / channel offset, grouped into
  slotframes).
* :mod:`repro.mac.hopping` -- the channel-hopping function mapping
  (ASN, channel offset) to a physical channel.
* :mod:`repro.mac.queue` -- the bounded transmission queue whose overflows
  are the "queue loss" metric of the paper.
* :mod:`repro.mac.csma` -- CSMA/CA back-off state used in shared cells.
* :mod:`repro.mac.duty_cycle` -- radio-on accounting (the paper's radio duty
  cycle metric).
* :mod:`repro.mac.tsch` -- the per-node TSCH engine: cell selection, frame
  transmission/reception, ACKs, retransmissions, EB generation.
"""

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.mac.csma import CsmaBackoff
from repro.mac.duty_cycle import DutyCycleMeter
from repro.mac.hopping import DEFAULT_HOPPING_SEQUENCE, ChannelHopping
from repro.mac.queue import TxQueue
from repro.mac.slotframe import Slotframe
from repro.mac.tsch import TschConfig, TschEngine

__all__ = [
    "Cell",
    "CellOption",
    "CellPurpose",
    "Slotframe",
    "ChannelHopping",
    "DEFAULT_HOPPING_SEQUENCE",
    "TxQueue",
    "CsmaBackoff",
    "DutyCycleMeter",
    "TschConfig",
    "TschEngine",
]
