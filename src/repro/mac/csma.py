"""CSMA/CA back-off for shared TSCH cells.

Dedicated TSCH cells are contention-free, but *shared* cells (GT-TSCH's
Shared timeslots, Orchestra's common cell, and Orchestra's receiver-based
unicast cells) can be targeted by several senders at once.  IEEE 802.15.4e
resolves the resulting collisions with a TSCH-specific CSMA/CA: after a failed
transmission in a shared cell the sender draws a back-off from a binary
exponential window counted in *shared-cell opportunities* (not in time), and
skips that many eligible shared cells before retrying.

This module keeps one back-off state per destination, mirroring the
``tsch-queue`` back-off implementation of Contiki-NG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    import random  # reprolint: disable=RL001


@dataclass
class _BackoffState:
    exponent: int
    window: int = 0


class CsmaBackoff:
    """Per-neighbor TSCH CSMA/CA back-off state machine."""

    def __init__(self, rng: random.Random, min_be: int = 1, max_be: int = 5) -> None:
        """
        Parameters
        ----------
        rng:
            ``random.Random`` stream used for window draws.
        min_be / max_be:
            Minimum and maximum back-off exponents (IEEE 802.15.4e defaults
            are macMinBe=1, macMaxBe=7; Contiki-NG uses 1 and 5 for TSCH).
        """
        if min_be < 0 or max_be < min_be:
            raise ValueError("back-off exponents must satisfy 0 <= min_be <= max_be")
        self.rng = rng
        self.min_be = min_be
        self.max_be = max_be
        self._states: dict[Optional[int], _BackoffState] = {}

    def _state(self, neighbor: Optional[int]) -> _BackoffState:
        if neighbor not in self._states:
            self._states[neighbor] = _BackoffState(exponent=self.min_be)
        return self._states[neighbor]

    def can_transmit(self, neighbor: Optional[int]) -> bool:
        """Whether a transmission to ``neighbor`` may use the current shared cell."""
        return self._state(neighbor).window == 0

    def on_shared_cell_skipped(self, neighbor: Optional[int]) -> None:
        """Count down the back-off window when an eligible shared cell passes by."""
        state = self._state(neighbor)
        if state.window > 0:
            state.window -= 1

    def settle_skips(self, neighbor: Optional[int], count: int) -> None:
        """Apply ``count`` eligible shared-cell pass-bys in one integer step.

        Exactly equivalent to ``count`` calls to
        :meth:`on_shared_cell_skipped`; the slot-skipping kernel uses it to
        credit a deferred run of contention slots the node provably lost
        (window still positive at each of them) without visiting the slots.
        """
        if count <= 0:
            return
        state = self._state(neighbor)
        if state.window > 0:
            state.window = max(0, state.window - count)

    def on_transmission_success(self, neighbor: Optional[int]) -> None:
        """Reset the back-off after an acknowledged transmission."""
        state = self._state(neighbor)
        state.exponent = self.min_be
        state.window = 0

    def on_transmission_failure(self, neighbor: Optional[int]) -> int:
        """Grow the contention window after a failed shared-cell transmission.

        Returns the freshly drawn window (number of eligible shared cells to
        skip before the next attempt).
        """
        state = self._state(neighbor)
        state.exponent = min(state.exponent + 1, self.max_be)
        state.window = self.rng.randrange(0, 2 ** state.exponent)
        return state.window

    def window(self, neighbor: Optional[int]) -> int:
        """Current remaining back-off window for ``neighbor``."""
        return self._state(neighbor).window

    def reset(self, neighbor: Optional[int] = None) -> None:
        """Forget back-off state for one neighbor, or for all when ``None``."""
        if neighbor is None:
            self._states.clear()
        else:
            self._states.pop(neighbor, None)
