"""Radio duty-cycle accounting.

The paper reports the *radio duty cycle* -- the fraction of time the radio
transceiver is powered -- as its energy-consumption proxy (Figs. 8d, 9d,
10d), measured by Contiki-NG's Energest module on real motes.  Energest counts
actual radio-on time within each 15 ms timeslot, not whole slots:

* an idle Rx slot only keeps the radio on for the packet-wait guard time
  (TsLongGT, about 2.2 ms) before shutting it down again;
* a slot in which a frame is actually received keeps the radio on for the
  frame (up to 4.3 ms) plus the ACK turnaround;
* a transmitting slot powers the radio for the frame plus the ACK wait.

:class:`DutyCycleMeter` therefore weighs each slot by the fraction of the
slot the radio is realistically powered (the defaults below follow the
IEEE 802.15.4e timeslot template used by Contiki-NG for 15 ms slots); the raw
slot counters are kept as well for tests and diagnostics.

Only integer slot counters are accumulated; the weighted radio-on time is
derived from them on demand.  This keeps the meter exact under the simulation
kernel's deferred bulk settling (crediting ``k`` sleep or idle-listen slots
at once, see :meth:`repro.mac.tsch.TschEngine.settle_duty_cycle`, is
indistinguishable from recording them one by one), where a floating-point
accumulator would drift with the order of additions.
"""

from __future__ import annotations

from repro.kernel.state import LocalBacking, NodeStateStore, bind_backing

#: Fraction of the timeslot the radio is on when transmitting a full frame
#: and waiting for its ACK (about 4.3 ms data + 1 ms turnaround + 2.4 ms ACK
#: window out of 15 ms).
TX_SLOT_FRACTION = 0.5
#: Fraction when receiving a frame and transmitting the ACK.
RX_SLOT_FRACTION = 0.6
#: Fraction for an idle listen: the receiver quits after the guard time
#: (TsLongGT ~2.2 ms of 15 ms).
IDLE_LISTEN_FRACTION = 0.15


class DutyCycleMeter:
    """Per-node Energest-style radio-on accounting at slot granularity.

    The integer slot counters live in the struct-of-arrays node-state store
    (:mod:`repro.kernel.state`) once the owning node joins a network: the
    counter attributes are properties over the backing row, so per-object
    accounting (this class) and the kernel's bulk settlement
    (:meth:`repro.kernel.state.NodeStateStore.settle_idle_rx`) read and write
    the same storage.  A standalone meter starts on a private single-row
    :class:`~repro.kernel.state.LocalBacking`.
    """

    __slots__ = (
        "_backing",
        "_row",
        "tx_fraction",
        "rx_fraction",
        "idle_fraction",
    )

    def __init__(
        self,
        tx_slots: int = 0,
        rx_slots: int = 0,
        idle_listen_slots: int = 0,
        sleep_slots: int = 0,
        total_slots: int = 0,
        tx_fraction: float = TX_SLOT_FRACTION,
        rx_fraction: float = RX_SLOT_FRACTION,
        idle_fraction: float = IDLE_LISTEN_FRACTION,
    ) -> None:
        self._backing = LocalBacking()
        self._row = 0
        self.tx_slots = tx_slots
        self.rx_slots = rx_slots
        self.idle_listen_slots = idle_listen_slots
        self.sleep_slots = sleep_slots
        self.total_slots = total_slots
        self.tx_fraction = tx_fraction
        self.rx_fraction = rx_fraction
        self.idle_fraction = idle_fraction

    # ------------------------------------------------------------------
    # Store view plumbing
    # ------------------------------------------------------------------
    _COLUMNS = ("tx_slots", "rx_slots", "idle_listen_slots", "sleep_slots", "total_slots")

    def bind(self, store: NodeStateStore, row: int) -> None:
        """Move this meter's counters onto ``store[row]`` (values preserved)."""
        bind_backing(self, store, row, self._COLUMNS)

    @property
    def tx_slots(self) -> int:
        return int(self._backing.tx_slots[self._row])

    @tx_slots.setter
    def tx_slots(self, value: int) -> None:
        self._backing.tx_slots[self._row] = value

    @property
    def rx_slots(self) -> int:
        return int(self._backing.rx_slots[self._row])

    @rx_slots.setter
    def rx_slots(self, value: int) -> None:
        self._backing.rx_slots[self._row] = value

    @property
    def idle_listen_slots(self) -> int:
        return int(self._backing.idle_listen_slots[self._row])

    @idle_listen_slots.setter
    def idle_listen_slots(self, value: int) -> None:
        self._backing.idle_listen_slots[self._row] = value

    @property
    def sleep_slots(self) -> int:
        return int(self._backing.sleep_slots[self._row])

    @sleep_slots.setter
    def sleep_slots(self, value: int) -> None:
        self._backing.sleep_slots[self._row] = value

    @property
    def total_slots(self) -> int:
        return int(self._backing.total_slots[self._row])

    @total_slots.setter
    def total_slots(self, value: int) -> None:
        self._backing.total_slots[self._row] = value

    def _key(self) -> tuple:
        return (
            self.tx_slots,
            self.rx_slots,
            self.idle_listen_slots,
            self.sleep_slots,
            self.total_slots,
            self.tx_fraction,
            self.rx_fraction,
            self.idle_fraction,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not DutyCycleMeter:
            return NotImplemented
        return self._key() == other._key()

    __hash__ = None  # type: ignore[assignment]  # mutable value semantics

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DutyCycleMeter(tx={self.tx_slots} rx={self.rx_slots} "
            f"idle={self.idle_listen_slots} sleep={self.sleep_slots} "
            f"total={self.total_slots})"
        )

    def record_tx(self) -> None:
        """The node transmitted (and listened for an ACK) this slot."""
        self.tx_slots += 1
        self.total_slots += 1

    def record_rx(self, frame_received: bool) -> None:
        """The node listened this slot; ``frame_received`` marks a decode."""
        self.rx_slots += 1
        if not frame_received:
            self.idle_listen_slots += 1
        self.total_slots += 1

    def record_sleep(self) -> None:
        """The node kept its radio off this slot."""
        self.sleep_slots += 1
        self.total_slots += 1

    @property
    def radio_on_slot_equivalents(self) -> float:
        """Accumulated radio-on time expressed in slot units (weighted)."""
        return (
            self.tx_slots * self.tx_fraction
            + (self.rx_slots - self.idle_listen_slots) * self.rx_fraction
            + self.idle_listen_slots * self.idle_fraction
        )

    @property
    def radio_on_slots(self) -> int:
        """Number of slots in which the radio was powered at all."""
        return self.tx_slots + self.rx_slots

    @property
    def duty_cycle(self) -> float:
        """Radio-on time as a fraction of elapsed time, in [0, 1]."""
        if self.total_slots == 0:
            return 0.0
        return self.radio_on_slot_equivalents / self.total_slots

    @property
    def duty_cycle_percent(self) -> float:
        """Duty cycle expressed in percent, as plotted in the paper."""
        return 100.0 * self.duty_cycle

    def snapshot(self) -> dict:
        """Plain-dict snapshot for the metrics layer."""
        return {
            "tx_slots": self.tx_slots,
            "rx_slots": self.rx_slots,
            "idle_listen_slots": self.idle_listen_slots,
            "sleep_slots": self.sleep_slots,
            "total_slots": self.total_slots,
            "radio_on_slot_equivalents": self.radio_on_slot_equivalents,
            "duty_cycle": self.duty_cycle,
        }

    def reset(self) -> None:
        """Zero all counters (used when the measurement window starts after warm-up)."""
        self.tx_slots = 0
        self.rx_slots = 0
        self.idle_listen_slots = 0
        self.sleep_slots = 0
        self.total_slots = 0
