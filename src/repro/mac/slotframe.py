"""Slotframes: periodic groups of cells.

A slotframe of length ``m`` repeats every ``m`` timeslots: the cell scheduled
at slot offset ``o`` is active at every ASN with ``asn % m == o``.  A node may
run several slotframes simultaneously (Orchestra runs three); when cells from
different slotframes coincide at the same ASN, the TSCH engine breaks the tie
by slotframe handle then by cell priority, mirroring Contiki-NG behaviour.

Cells are stored in a dense per-offset lookup table, so :meth:`cells_at` is a
single O(1) index with no allocation -- it runs for every node at every
simulated timeslot.  Every mutation bumps :attr:`version`, which the TSCH
engine and the network's slot-skipping kernel use to invalidate their derived
schedule caches (sorted active-cell lists, active-offset indexes).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Optional

from repro.mac.cell import Cell, CellOption, CellPurpose


class Slotframe:
    """A collection of cells repeating with a fixed period."""

    def __init__(self, handle: int, length: int) -> None:
        if length <= 0:
            raise ValueError("slotframe length must be positive")
        self.handle = handle
        self.length = length
        #: Monotonic mutation counter; bumped by every cell add/remove.
        self.version = 0
        #: Invoked after every mutation; the owning TSCH engine hooks this to
        #: invalidate its derived schedule caches without polling.
        self.on_change: Optional[Callable[[], None]] = None
        #: Dense lookup table: ``_table[offset]`` lists the cells installed at
        #: that slot offset (insertion order).
        self._table: list[list[Cell]] = [[] for _ in range(length)]

    def _mutated(self) -> None:
        self.version += 1
        if self.on_change is not None:
            self.on_change()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_cell(self, cell: Cell) -> Cell:
        """Install ``cell`` in this slotframe.

        Raises ``ValueError`` when the slot offset exceeds the slotframe
        length.  Duplicate (slot, channel, neighbor, options) cells are
        ignored and the already-installed cell is returned, which makes
        scheduler code idempotent.
        """
        if cell.slot_offset >= self.length:
            raise ValueError(
                f"slot offset {cell.slot_offset} out of range for slotframe of length {self.length}"
            )
        cell.slotframe_handle = self.handle
        existing = self.find_cell(
            cell.slot_offset, cell.channel_offset, cell.neighbor, cell.options
        )
        if existing is not None:
            return existing
        self._table[cell.slot_offset].append(cell)
        self._mutated()
        return cell

    def remove_cell(self, cell: Cell) -> bool:
        """Remove a previously installed cell.  Returns True when found."""
        if cell.slot_offset >= self.length:
            return False
        bucket = self._table[cell.slot_offset]
        try:
            bucket.remove(cell)
        except ValueError:
            return False
        self._mutated()
        return True

    def remove_cells_with_neighbor(self, neighbor: int) -> int:
        """Remove every cell dedicated to ``neighbor`` (e.g. after a parent switch)."""
        removed = 0
        for offset, bucket in enumerate(self._table):
            if not bucket:
                continue
            keep = [c for c in bucket if c.neighbor != neighbor]
            removed += len(bucket) - len(keep)
            self._table[offset] = keep
        if removed:
            self._mutated()
        return removed

    def clear(self) -> None:
        """Remove every cell."""
        self._table = [[] for _ in range(self.length)]
        self._mutated()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cells_at(self, asn: int) -> list[Cell]:
        """Cells active at the given absolute slot number.

        Returns the internal per-offset bucket (O(1), no copy); callers must
        treat it as read-only.
        """
        return self._table[asn % self.length]

    def cells_at_offset(self, slot_offset: int) -> list[Cell]:
        """Cells installed at a given slot offset (read-only view)."""
        if slot_offset >= self.length:
            return []
        return self._table[slot_offset]

    def find_cell(
        self,
        slot_offset: int,
        channel_offset: Optional[int] = None,
        neighbor: Optional[int] = None,
        options: Optional[CellOption] = None,
    ) -> Optional[Cell]:
        """First installed cell matching the given attributes, if any."""
        if slot_offset >= self.length:
            return None
        for cell in self._table[slot_offset]:
            if channel_offset is not None and cell.channel_offset != channel_offset:
                continue
            if neighbor is not None and cell.neighbor != neighbor:
                continue
            if options is not None and cell.options != options:
                continue
            return cell
        return None

    def all_cells(self) -> Iterator[Cell]:
        """Iterate over every installed cell (slot order, then insertion order)."""
        for bucket in self._table:
            for cell in bucket:
                yield cell

    def cells_with_neighbor(self, neighbor: Optional[int]) -> list[Cell]:
        """All cells dedicated to ``neighbor``."""
        return [cell for cell in self.all_cells() if cell.neighbor == neighbor]

    def used_slot_offsets(self) -> list[int]:
        """Sorted slot offsets that have at least one cell installed."""
        return [offset for offset, bucket in enumerate(self._table) if bucket]

    def free_slot_offsets(self) -> list[int]:
        """Slot offsets with no cell installed (GT-TSCH's sleep timeslots)."""
        return [offset for offset, bucket in enumerate(self._table) if not bucket]

    def count_cells(
        self,
        options: Optional[CellOption] = None,
        neighbor: Optional[int] = None,
        purpose: Optional[CellPurpose] = None,
    ) -> int:
        """Count installed cells matching the given filters."""
        count = 0
        for cell in self.all_cells():
            if options is not None and not (cell.options & options):
                continue
            if neighbor is not None and cell.neighbor != neighbor:
                continue
            if purpose is not None and cell.purpose != purpose:
                continue
            count += 1
        return count

    def occupancy(self) -> float:
        """Fraction of slot offsets with at least one cell installed."""
        return sum(1 for bucket in self._table if bucket) / self.length

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._table)

    def __iter__(self) -> Iterator[Cell]:
        return self.all_cells()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Slotframe(handle={self.handle}, length={self.length}, cells={len(self)})"


def render_cdu_matrix(slotframes: Iterable[Slotframe], num_channels: int) -> list[list[str]]:
    """Render slotframes into a CDU-matrix grid of labels (Fig. 1 style).

    Returns a list of rows indexed by channel offset; each entry is either an
    empty string or a comma-separated list of "(sender,receiver)"-style labels
    built from the cells' neighbor and direction.  Intended for examples,
    documentation and tests -- not used by the protocol machinery.
    """
    length = max(sf.length for sf in slotframes)
    grid = [["" for _ in range(length)] for _ in range(num_channels)]
    for sf in slotframes:
        for cell in sf.all_cells():
            if cell.channel_offset >= num_channels:
                continue
            direction = "Tx" if cell.is_tx else "Rx"
            target = "*" if cell.neighbor is None else str(cell.neighbor)
            tag = f"{direction}->{target}"
            existing = grid[cell.channel_offset][cell.slot_offset]
            grid[cell.channel_offset][cell.slot_offset] = (
                f"{existing},{tag}" if existing else tag
            )
    return grid
