"""Command-line entry point: ``python -m tools.reprolint [paths] [--format]``.

Exit status is 0 when every linted file is clean and 1 otherwise, so the
command can gate merges directly.  ``--format json`` emits a machine-readable
report (violations plus per-rule hit counts) for the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import Optional

from tools.reprolint.config import DEFAULT_CONFIG
from tools.reprolint.engine import Violation, iter_python_files, lint_paths
from tools.reprolint.rules import ALL_RULES, RULE_SUMMARIES


def _rule_counts(violations: Sequence[Violation]) -> dict[str, int]:
    counts = {rule.rule_id: 0 for rule in ALL_RULES}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return counts


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific determinism/kernel-invariant lint pass.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json includes per-rule hit counts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(RULE_SUMMARIES.items()):
            print(f"{rule_id}  {summary}")
        return 0

    files = iter_python_files(args.paths)
    violations: list[Violation] = lint_paths(args.paths, DEFAULT_CONFIG)

    if args.format == "json":
        report = {
            "files_checked": len(files),
            "total": len(violations),
            "counts": _rule_counts(violations),
            "violations": [violation.as_dict() for violation in violations],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for violation in violations:
            print(violation.format())
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        print(f"reprolint: {len(files)} file(s) checked, {status}")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
