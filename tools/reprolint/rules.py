"""The six reprolint rules.

Each rule is a small visitor over the shared AST walk driven by
:class:`tools.reprolint.engine.LintRunner`.  Rules are deliberately
syntactic: they use lightweight, local type inference (annotations, literal
forms, known set-returning helpers) rather than whole-program analysis, so a
clean run is a strong hint -- and every rule supports per-line
``# reprolint: disable=RLxxx`` for the rare justified exception.

Rule summary
------------
RL001  all randomness through :class:`repro.sim.rng.RngRegistry` streams
RL002  no wall-clock reads inside simulation code
RL003  no iteration over unordered ``set``/``frozenset`` in RNG/event modules
RL004  mutations of version-tracked fields must bump the invalidation hook
RL005  ``__slots__`` required on classes in hot (per-slot) modules
RL006  integer duty-cycle/settlement counters never see float arithmetic
"""

from __future__ import annotations

import ast
from typing import Optional

from tools.reprolint.engine import Rule, module_in_packages, module_matches

#: Annotation heads treated as set types by RL003.
_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Set methods that return another set (so chained calls stay set-typed).
_SET_RETURNING_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Binary operators defined on sets whose result is a set.
_SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)

#: Calls that launder float taint back into an int (RL006).
_INT_CLEANSING_CALLS = frozenset({"int", "len"})
_INT_CLEANSING_METHODS = frozenset({"floor", "ceil"})


def _attr_chain_root(node: ast.AST) -> Optional[tuple[str, str]]:
    """Root of an attribute/subscript chain as ``(base_name, first_attr)``.

    ``self._table[slot].remove`` -> ``("self", "_table")``;
    ``bucket.append`` -> ``("bucket", "")``; anything not rooted at a plain
    name returns ``None``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        if isinstance(node, ast.Attribute) and isinstance(parent, ast.Name):
            return (parent.id, node.attr)
        node = parent
    if isinstance(node, ast.Name):
        return (node.id, "")
    return None


class RngUseRule(Rule):
    """RL001: no direct :mod:`random` use outside the RNG registry module."""

    rule_id = "RL001"
    summary = "direct `random` use outside the RngRegistry module"

    def applies_to(self, path: str) -> bool:
        if module_matches(path, (self.config.rng_module,)):
            return False
        return module_in_packages(path, ("repro/",))

    def check_module(self, tree: ast.Module, path: str, report) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        report(
                            node,
                            "direct `import random`; draw from a named "
                            "RngRegistry stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (
                    node.module or ""
                ).startswith("random."):
                    report(
                        node,
                        "import from `random`; draw from a named "
                        "RngRegistry stream instead",
                    )


class WallClockRule(Rule):
    """RL002: simulation output must be a function of the seed alone."""

    rule_id = "RL002"
    summary = "wall-clock read inside simulation code"

    _CLOCK_MODULES = frozenset({"time", "datetime"})

    def applies_to(self, path: str) -> bool:
        if module_matches(path, self.config.wallclock_allowed_modules):
            return False
        return module_in_packages(path, ("repro/",))

    def check_module(self, tree: ast.Module, path: str, report) -> None:
        banned = self.config.wallclock_banned_attrs
        clock_aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in self._CLOCK_MODULES:
                        clock_aliases.add(alias.asname or root)
            elif isinstance(node, ast.ImportFrom):
                module_root = (node.module or "").split(".", 1)[0]
                if module_root not in self._CLOCK_MODULES:
                    continue
                for alias in node.names:
                    if alias.name in banned:
                        report(
                            node,
                            f"wall-clock import `{alias.name}` from "
                            f"`{node.module}`; simulation time comes from "
                            "SimClock",
                        )
                    elif alias.name in {"datetime", "date"}:
                        # `from datetime import datetime` -- flag `.now()` etc.
                        clock_aliases.add(alias.asname or alias.name)
        if not clock_aliases:
            return
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in banned
                and isinstance(node.value, ast.Name)
                and node.value.id in clock_aliases
            ):
                report(
                    node,
                    f"wall-clock read `{node.value.id}.{node.attr}`; "
                    "simulation time comes from SimClock",
                )


class SetIterationRule(Rule):
    """RL003: unordered-set iteration in modules that draw RNG or schedule.

    Iterating a ``set`` of objects feeds id()-dependent order (hence
    address-space layout) into whatever consumes the loop -- the classic
    source of cross-run divergence.  Wrap the iterable in ``sorted()`` or use
    an order-insensitive reduction (``min``/``max``/``sum``/``any``/...).
    """

    rule_id = "RL003"
    summary = "iteration over an unordered set in an RNG/event module"

    def applies_to(self, path: str) -> bool:
        return module_in_packages(path, self.config.set_iteration_packages)

    # -- local set-type inference -----------------------------------------
    def _annotation_is_set(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in _SET_TYPE_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in _SET_TYPE_NAMES
        if isinstance(node, ast.Subscript):
            head = node.value
            if isinstance(head, ast.Name) and head.id in {"Optional", "Union"}:
                slice_node = node.slice
                elements = (
                    slice_node.elts
                    if isinstance(slice_node, ast.Tuple)
                    else [slice_node]
                )
                return any(self._annotation_is_set(el) for el in elements)
            return self._annotation_is_set(head)
        return False

    def _is_set_expr(
        self, node: ast.AST, local_sets: set[str], self_sets: set[str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self_sets
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in self.config.known_set_returning_methods:
                    return True
                if func.attr in _SET_RETURNING_SET_METHODS:
                    return self._is_set_expr(func.value, local_sets, self_sets)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_expr(
                node.left, local_sets, self_sets
            ) or self._is_set_expr(node.right, local_sets, self_sets)
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(
                node.body, local_sets, self_sets
            ) or self._is_set_expr(node.orelse, local_sets, self_sets)
        return False

    def _collect_self_sets(self, class_node: ast.ClassDef) -> set[str]:
        """Attribute names of ``class_node`` instances known to hold sets."""
        self_sets: set[str] = set()
        for stmt in class_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if self._annotation_is_set(stmt.annotation):
                    self_sets.add(stmt.target.id)
        for node in ast.walk(class_node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if self._annotation_is_set(annotation) or (
                    value is not None and self._is_set_expr(value, set(), self_sets)
                ):
                    self_sets.add(target.attr)
        return self_sets

    def _scope_local_sets(self, func: ast.AST, self_sets: set[str]) -> set[str]:
        local_sets: set[str] = set()
        arguments = func.args
        for arg in (
            list(getattr(arguments, "posonlyargs", []))
            + arguments.args
            + arguments.kwonlyargs
        ):
            if self._annotation_is_set(arg.annotation):
                local_sets.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self._is_set_expr(node.value, local_sets, self_sets):
                        local_sets.add(target.id)
                    else:
                        local_sets.discard(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if self._annotation_is_set(node.annotation):
                    local_sets.add(node.target.id)
        return local_sets

    def _check_scope(
        self, func: ast.AST, self_sets: set[str], report
    ) -> None:
        local_sets = self._scope_local_sets(func, self_sets)

        def flag(node: ast.AST, via: str) -> None:
            report(
                node,
                f"iteration over an unordered set ({via}); wrap in sorted() "
                "or use an order-insensitive reduction",
            )

        for node in ast.walk(func):
            if isinstance(node, ast.For):
                if self._is_set_expr(node.iter, local_sets, self_sets):
                    flag(node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if self._is_set_expr(generator.iter, local_sets, self_sets):
                        flag(generator.iter, "comprehension")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in self.config.order_sensitive_consumers:
                    for arg in node.args:
                        if self._is_set_expr(arg, local_sets, self_sets):
                            flag(arg, f"{node.func.id}()")

    def check_module(self, tree: ast.Module, path: str, report) -> None:
        # Methods are checked with their class's set-typed attributes in
        # scope; module-level functions with an empty attribute table.
        seen_functions: set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            self_sets = self._collect_self_sets(node)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    seen_functions.add(id(stmt))
                    self._check_scope(stmt, self_sets, report)
        for stmt in tree.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and id(stmt) not in seen_functions
            ):
                self._check_scope(stmt, set(), report)


class VersionBumpRule(Rule):
    """RL004: tracked-field mutations must bump the class's version hook."""

    rule_id = "RL004"
    summary = "tracked-field mutation without a version bump"

    def check_class(self, node: ast.ClassDef, path: str, report) -> None:
        info = self.config.versioned_classes.get(node.name)
        if info is None:
            return
        tracked = set(info.tracked_fields)
        bumps = set(info.bump_names)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("__") and stmt.name.endswith("__"):
                continue  # construction / dunder protocol, not API mutation
            self._check_method(stmt, tracked, bumps, report)

    def _check_method(
        self, method: ast.AST, tracked: set[str], bumps: set[str], report
    ) -> None:
        # Pass 1: local aliases of tracked containers (or of their items),
        # e.g. ``bucket = self._table[offset]`` then ``bucket.remove(cell)``.
        aliases: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    root = _attr_chain_root(node.value)
                    if root is not None and root[0] == "self" and root[1] in tracked:
                        aliases.add(target.id)

        def is_tracked_target(target: ast.AST) -> bool:
            root = _attr_chain_root(target)
            if root is None:
                return False
            if root[0] == "self" and root[1] in tracked:
                return True
            return root[0] in aliases and isinstance(
                target, (ast.Subscript, ast.Attribute)
            )

        mutations: list[ast.AST] = []
        bumped = False
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if is_tracked_target(target):
                        mutations.append(node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target = node.target
                if is_tracked_target(target):
                    mutations.append(node)
                root = _attr_chain_root(target)
                if root is not None and root[0] == "self" and root[1] in bumps:
                    bumped = True
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if is_tracked_target(target):
                        mutations.append(node)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                receiver_root = _attr_chain_root(func.value)
                if func.attr in self.config.mutating_methods and receiver_root:
                    base, first = receiver_root
                    if (base == "self" and first in tracked) or (
                        base in aliases and first == ""
                    ) or (base in aliases):
                        mutations.append(node)
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in bumps
                ):
                    bumped = True
            # plain assignment to the bump attribute also counts
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    root = _attr_chain_root(target)
                    if root is not None and root[0] == "self" and root[1] in bumps:
                        bumped = True
        if mutations and not bumped:
            report(
                mutations[0],
                f"method `{method.name}` mutates a version-tracked field "
                "without calling the invalidation hook "
                f"({', '.join(sorted(bumps))})",
            )


class SlotsRule(Rule):
    """RL005: classes in hot (per-slot) modules must declare ``__slots__``."""

    rule_id = "RL005"
    summary = "hot-module class without __slots__"

    def applies_to(self, path: str) -> bool:
        return module_matches(path, self.config.slots_modules)

    def check_class(self, node: ast.ClassDef, path: str, report) -> None:
        for base in node.bases:
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name in self.config.slots_exempt_bases:
                return
        for stmt in node.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return
        report(
            node,
            f"class `{node.name}` in a hot module must declare __slots__ "
            "(instances are allocated on the per-slot path)",
        )


class IntCounterRule(Rule):
    """RL006: integer settlement counters must stay integer."""

    rule_id = "RL006"
    summary = "float arithmetic assigned to an integer counter"

    def applies_to(self, path: str) -> bool:
        return module_matches(path, self.config.int_counter_modules)

    def _tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _INT_CLEANSING_CALLS:
                return False
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _INT_CLEANSING_METHODS
            ):
                return False
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            return any(self._tainted(arg) for arg in node.args)
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._tainted(node.left) or self._tainted(node.right)
        return any(self._tainted(child) for child in ast.iter_child_nodes(node))

    def check_module(self, tree: ast.Module, path: str, report) -> None:
        counters = self.config.int_counter_attrs
        for node in ast.walk(tree):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target, value = node.target, node.value
            if value is None or not isinstance(target, ast.Attribute):
                continue
            if target.attr in counters and self._tainted(value):
                report(
                    node,
                    f"float arithmetic assigned to integer counter "
                    f"`{target.attr}`; use integer ops (//, int()) so "
                    "settlement stays exact",
                )


ALL_RULES = (
    RngUseRule,
    WallClockRule,
    SetIterationRule,
    VersionBumpRule,
    SlotsRule,
    IntCounterRule,
)

#: rule id -> one-line summary, for ``--format json`` count tables.
RULE_SUMMARIES: dict[str, str] = {
    rule.rule_id: rule.summary for rule in ALL_RULES
}
