"""reprolint driver: file discovery, the shared AST walk, suppressions.

One ``ast.parse`` per file feeds every rule: the :class:`LintRunner` performs
a single recursive walk and hands each rule the module, class and function
nodes it subscribes to, so adding a rule never adds another tree traversal.

Suppression follows the familiar per-line comment convention::

    for node in self._dirty:  # reprolint: disable=RL003

A bare ``# reprolint: disable`` (no rule list) silences every rule on that
line.  Suppressions apply to the line the violation is *reported* on.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from tools.reprolint.config import DEFAULT_CONFIG, LintConfig

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit, pointing at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def normalise(path: str) -> str:
    """Forward-slash form of ``path`` for suffix matching."""
    return path.replace("\\", "/")


def module_matches(path: str, suffixes: Iterable[str]) -> bool:
    """Whether ``path`` ends with any of the configured module suffixes."""
    norm = normalise(path)
    return any(norm.endswith(suffix) for suffix in suffixes)


def module_in_packages(path: str, packages: Iterable[str]) -> bool:
    """Whether ``path`` lies under any of the configured package prefixes."""
    norm = normalise(path)
    return any(f"/{prefix}" in norm or norm.startswith(prefix) for prefix in packages)


def parse_suppressions(source: str) -> dict[int, Optional[set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = every rule)."""
    suppressions: dict[int, Optional[set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "reprolint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            ids = {item.strip() for item in rules.split(",") if item.strip()}
            existing = suppressions.get(lineno)
            if existing is None and lineno in suppressions:
                continue  # an unconditional disable already covers the line
            suppressions[lineno] = ids | (existing or set())
    return suppressions


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`rule_id` / :attr:`summary` and override any of the
    hooks.  The runner guarantees exactly one call to :meth:`check_module`
    per file and one :meth:`check_class` / :meth:`check_function` call per
    (possibly nested) definition, all during a single shared walk.
    """

    rule_id = "RL000"
    summary = ""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def applies_to(self, path: str) -> bool:  # pragma: no cover - overridden
        return True

    def check_module(self, tree: ast.Module, path: str, report) -> None:
        pass

    def check_class(self, node: ast.ClassDef, path: str, report) -> None:
        pass

    def check_function(self, node: ast.AST, path: str, report) -> None:
        """``node`` is a FunctionDef or AsyncFunctionDef."""


class LintRunner:
    """Runs every applicable rule over one parsed module in a single walk."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def run(self, source: str, path: str) -> list[Violation]:
        tree = ast.parse(source, filename=path)
        suppressions = parse_suppressions(source)
        violations: list[Violation] = []

        def report(rule: Rule, node: ast.AST, message: str) -> None:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            suppressed = suppressions.get(line, False)
            if suppressed is None:
                return  # bare disable: every rule silenced on this line
            if suppressed is not False and rule.rule_id in suppressed:
                return
            violations.append(Violation(path, line, col, rule.rule_id, message))

        active = [rule for rule in self.rules if rule.applies_to(path)]
        if not active:
            return []
        for rule in active:
            rule.check_module(tree, path, lambda n, m, r=rule: report(r, n, m))

        # One shared recursive walk dispatching class and function scopes.
        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    for rule in active:
                        rule.check_class(child, path, lambda n, m, r=rule: report(r, n, m))
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for rule in active:
                        rule.check_function(
                            child, path, lambda n, m, r=rule: report(r, n, m)
                        )
                walk(child)

        walk(tree)
        violations.sort(key=lambda v: (v.line, v.col, v.rule))
        return violations


def _build_rules(config: LintConfig) -> list[Rule]:
    from tools.reprolint import rules as rules_module

    return [factory(config) for factory in rules_module.ALL_RULES]


def lint_source(
    source: str, path: str, config: LintConfig = DEFAULT_CONFIG
) -> list[Violation]:
    """Lint one in-memory module; ``path`` selects which rules apply."""
    return LintRunner(_build_rules(config)).run(source, path)


def iter_python_files(paths: Sequence[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
    return found


def lint_paths(
    paths: Sequence[str], config: LintConfig = DEFAULT_CONFIG
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` and return all violations."""
    runner = LintRunner(_build_rules(config))
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            violations.append(
                Violation(str(file_path), 1, 0, "RL000", f"unreadable file: {error}")
            )
            continue
        try:
            violations.extend(runner.run(source, str(file_path)))
        except SyntaxError as error:
            violations.append(
                Violation(
                    str(file_path),
                    error.lineno or 1,
                    error.offset or 0,
                    "RL000",
                    f"syntax error: {error.msg}",
                )
            )
    return violations
