"""Rule configuration for reprolint.

The determinism contract of this repository (see ``docs/determinism.md``) is
enforced by six rules, most of which are parameterised by repo-specific
tables: which module owns the RNG registry, which classes carry version
counters and which of their fields are tracked, which modules hold per-slot
hot classes, and which integer counters must never see float arithmetic.

Keeping the tables here -- as plain data, separate from the rule visitors --
means the shipped defaults describe *this* repository while tests (and future
subsystems) can lint synthetic trees with their own tables.

All module references are path suffixes with forward slashes
(``"repro/sim/rng.py"``); a linted file matches when its normalised path ends
with the suffix.  This keeps the tables independent of the checkout location
and of ``src/`` layout vs installed-package layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VersionedClass:
    """RL004 table entry: a class whose mutations must bump a version hook.

    Attributes
    ----------
    tracked_fields:
        Instance attributes (container fields) whose mutation invalidates
        derived caches.  Mutation means re-assignment, item assignment or
        deletion, or calling a mutating container method on the field (or on
        a local alias of it / of one of its items).
    bump_names:
        Names that count as "the bump": a method of ``self`` that is called
        (``self._mutated()``) or an attribute of ``self`` that is assigned or
        augmented (``self.version += 1``).
    """

    tracked_fields: tuple[str, ...]
    bump_names: tuple[str, ...]


def _default_versioned_classes() -> dict[str, VersionedClass]:
    return {
        # Every cell add/remove must bump Slotframe.version (via _mutated),
        # which pushes on_change up to the TSCH engine and the network kernel.
        "Slotframe": VersionedClass(tracked_fields=("_table",), bump_names=("_mutated",)),
        # ETX estimate changes must bump the estimator's version counters or
        # RPL's rank memo serves stale candidate ranks.
        "EtxEstimator": VersionedClass(
            tracked_fields=("_etx",), bump_names=("version", "neighbor_versions")
        ),
        # Slotframe membership changes must propagate a schedule mutation.
        "TschEngine": VersionedClass(
            tracked_fields=("slotframes",), bump_names=("_on_schedule_mutated",)
        ),
        # Neighbor/children table membership is a parent-selection input; the
        # rank memo proves receptions input-free via _memo_inputs.
        "RplEngine": VersionedClass(
            tracked_fields=("neighbors", "children"), bump_names=("_memo_inputs",)
        ),
        # Column growth reallocates the struct-of-arrays buffers; cached raw
        # column references (numpy frombuffer views) are invalid across a
        # layout_version bump, so every capacity change must advertise one.
        "NodeStateStore": VersionedClass(
            tracked_fields=("_capacity",), bump_names=("layout_version",)
        ),
    }


@dataclass(frozen=True)
class LintConfig:
    """All knobs of the six reprolint rules, defaulted for this repository."""

    # -- RL001: all randomness through RngRegistry named streams -----------
    #: The only module allowed to import :mod:`random`.
    rng_module: str = "repro/sim/rng.py"

    # -- RL002: no wall-clock reads in simulation code ---------------------
    #: Modules allowed to read the host clock (CLI timing around runs).
    wallclock_allowed_modules: tuple[str, ...] = ("repro/experiments/__main__.py",)
    #: Banned attribute reads per module alias.
    wallclock_banned_attrs: frozenset[str] = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
            "clock",
            "sleep",
            "now",
            "utcnow",
            "today",
        }
    )

    # -- RL003: no unordered-set iteration in RNG/event-scheduling modules -
    #: Package prefixes whose modules draw RNG or schedule events.
    set_iteration_packages: tuple[str, ...] = (
        "repro/net/",
        "repro/mac/",
        "repro/phy/",
        "repro/sim/",
        "repro/faults/",
        "repro/kernel/",
        "repro/schedulers/",
    )
    #: Zero-argument methods known (cross-module) to return a set/frozenset.
    known_set_returning_methods: frozenset[str] = frozenset(
        {"known_neighbors", "audience_of"}
    )
    #: Call consumers whose result does not depend on iteration order.
    order_insensitive_consumers: frozenset[str] = frozenset(
        {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
    )
    #: Call consumers that materialise iteration order (flagged like ``for``).
    order_sensitive_consumers: frozenset[str] = frozenset(
        {"list", "tuple", "iter", "enumerate", "reversed"}
    )

    # -- RL004: invalidation discipline on versioned classes ---------------
    versioned_classes: dict[str, VersionedClass] = field(
        default_factory=_default_versioned_classes
    )
    #: Container methods that mutate their receiver in place.
    mutating_methods: frozenset[str] = frozenset(
        {
            "append",
            "extend",
            "insert",
            "remove",
            "pop",
            "popitem",
            "clear",
            "add",
            "discard",
            "update",
            "setdefault",
            "sort",
            "reverse",
            "difference_update",
            "intersection_update",
            "symmetric_difference_update",
        }
    )

    # -- RL005: __slots__ on per-slot hot classes --------------------------
    #: Modules whose classes are allocated/touched on the per-slot hot path.
    slots_modules: tuple[str, ...] = (
        "repro/mac/cell.py",
        "repro/mac/queue.py",
        "repro/mac/duty_cycle.py",
        "repro/net/packet.py",
        "repro/phy/dynamic.py",
        "repro/sim/events.py",
        "repro/kernel/state.py",
        "repro/schedulers/msf.py",
        "repro/schedulers/debras.py",
        "repro/schedulers/otf.py",
    )
    #: Base classes that exempt a class from the __slots__ requirement
    #: (enum members live on the class; exceptions are cold by definition).
    slots_exempt_bases: frozenset[str] = frozenset(
        {"Enum", "IntEnum", "Flag", "IntFlag", "Exception", "BaseException", "Protocol"}
    )

    # -- RL006: integer counters stay integer ------------------------------
    #: Modules whose settle/bulk-accounting paths touch the counters below.
    int_counter_modules: tuple[str, ...] = (
        "repro/mac/duty_cycle.py",
        "repro/mac/tsch.py",
        "repro/mac/csma.py",
        "repro/net/network.py",
        "repro/kernel/state.py",
    )
    #: Attribute names of integer duty-cycle / CSMA settlement counters.
    int_counter_attrs: frozenset[str] = frozenset(
        {
            "tx_slots",
            "rx_slots",
            "idle_listen_slots",
            "sleep_slots",
            "total_slots",
            "duty_accounted_asn",
            "window",
            "exponent",
        }
    )


DEFAULT_CONFIG = LintConfig()
