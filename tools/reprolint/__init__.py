"""reprolint: repo-specific determinism and kernel-invariant lint rules.

Run from a repo checkout::

    python -m tools.reprolint src/
    python -m tools.reprolint src/ --format json

The rules (RL001-RL006) enforce the determinism contract documented in
``docs/determinism.md``: seeded randomness only, no wall-clock reads, no
unordered-set iteration in simulation modules, version-bump invalidation
discipline, ``__slots__`` on hot classes, and integer-only settlement
counters.
"""

from __future__ import annotations

from tools.reprolint.config import DEFAULT_CONFIG, LintConfig, VersionedClass
from tools.reprolint.engine import Violation, lint_paths, lint_source
from tools.reprolint.rules import ALL_RULES, RULE_SUMMARIES

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "LintConfig",
    "RULE_SUMMARIES",
    "VersionedClass",
    "Violation",
    "lint_paths",
    "lint_source",
]
