"""Repository tooling (static analysis, maintenance scripts).

Nothing under this package ships with the ``repro`` distribution; it runs
from a repo checkout (``python -m tools.reprolint src/``) and in CI.
"""
