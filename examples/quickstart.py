#!/usr/bin/env python3
"""Quickstart: run one GT-TSCH scenario and print the paper's six metrics.

This is the smallest end-to-end use of the library: build the Fig. 8 network
(two 7-node DODAGs), load it with 120 packets per minute per node, run the
GT-TSCH scheduling function and the Orchestra baseline, and print the metric
table the paper's evaluation reports.

Run with::

    python examples/quickstart.py [rate_ppm] [jobs]

Both scheduler runs are independent simulations, so they are dispatched
through :func:`repro.experiments.run_scenarios`, which runs them on a process
pool (``jobs``, default one per core) — the numbers are identical to running
them one after the other.
"""

from __future__ import annotations

import os
import sys

from repro.experiments import run_scenarios, traffic_load_scenario
from repro.metrics.report import format_metrics_table


def main() -> None:
    rate_ppm = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 1)

    scenarios = [
        traffic_load_scenario(
            rate_ppm=rate_ppm,
            scheduler=scheduler,
            seed=1,
            warmup_s=40.0,
            measurement_s=60.0,
        )
        for scheduler in ("GT-TSCH", "Orchestra")
    ]
    for scenario in scenarios:
        print(f"Running {scenario.name} ({len(scenario.topology)} nodes)...")
    results = run_scenarios(scenarios, jobs=jobs)

    print()
    print(format_metrics_table(results, title=f"Traffic load: {rate_ppm:.0f} ppm per node"))
    print()
    gt, orchestra = results
    if orchestra.received_per_minute > 0:
        ratio = gt.received_per_minute / orchestra.received_per_minute
        print(f"GT-TSCH delivers {ratio:.1f}x Orchestra's throughput at this load.")


if __name__ == "__main__":
    main()
