#!/usr/bin/env python3
"""Building-automation scenario: one DODAG per floor, as motivated in the paper.

Section VIII argues that in building automation "for each level we have a
DODAG that cannot be seen by IoT nodes placed in other levels", and that the
number of nodes per DODAG (not the total network size) is what stresses a
TSCH scheduler.  This example models a three-floor building with one border
router per floor and eight sensors per floor, ramps the sensing rate through
a working day profile (periodic reporting, then an alarm burst), and compares
GT-TSCH against Orchestra on delivery and latency.

Run with::

    python examples/building_automation.py
"""

from __future__ import annotations

from repro.experiments.scenarios import ContikiConfig, Scenario
from repro.metrics.report import format_metrics_table
from repro.net.topology import multi_dodag_topology

FLOORS = 3
NODES_PER_FLOOR = 8  # one border router + seven sensors per floor


def run(scheduler: str, rate_ppm: float, seed: int = 3):
    scenario = Scenario(
        name=f"building-{scheduler}-{int(rate_ppm)}ppm",
        scheduler=scheduler,
        topology=multi_dodag_topology(
            num_dodags=FLOORS,
            nodes_per_dodag=NODES_PER_FLOOR,
            dodag_separation=600.0,  # floors are RF-isolated from each other
        ),
        rate_ppm=rate_ppm,
        contiki=ContikiConfig(),
        seed=seed,
        warmup_s=40.0,
        measurement_s=60.0,
    )
    network = scenario.build_network()
    return network.run_experiment(
        warmup_s=scenario.warmup_s,
        measurement_s=scenario.measurement_s,
        drain_s=scenario.drain_s,
        scheduler_name=scheduler,
    )


def main() -> None:
    print(
        f"Building with {FLOORS} floors, {NODES_PER_FLOOR} nodes per floor "
        f"({FLOORS * NODES_PER_FLOOR} nodes total, {FLOORS} border routers)\n"
    )
    for label, rate in (("periodic monitoring (30 ppm)", 30.0), ("alarm burst (150 ppm)", 150.0)):
        print(f"--- {label} ---")
        results = [run("GT-TSCH", rate), run("Orchestra", rate)]
        print(format_metrics_table(results))
        gt, orchestra = results
        print(
            f"GT-TSCH PDR {gt.pdr_percent:.1f}% vs Orchestra {orchestra.pdr_percent:.1f}%; "
            f"delay {gt.end_to_end_delay_ms:.0f} ms vs {orchestra.end_to_end_delay_ms:.0f} ms\n"
        )


if __name__ == "__main__":
    main()
