#!/usr/bin/env python3
"""GT-TSCH channel allocation on the paper's 7-node DAG (Figs. 3 and 6).

This example runs Algorithm 1 (Section III) standalone -- no simulator -- on
the three-level DODAG used throughout the paper's figures:

* the root picks its own child-facing channel;
* every child learns its parent-facing channel from the parent and asks for
  its own child-facing channel (ASK-CHANNEL);
* the resulting assignment keeps every channel unique along three-hop routing
  paths and among siblings, which removes the four interference problems of
  Fig. 2.

It then builds the corresponding GT-TSCH slotframe layout for the root and
prints a CDU-matrix view (Fig. 1 style).

Run with::

    python examples/channel_allocation_demo.py
"""

from __future__ import annotations

import random

from repro.core.channel_allocation import (
    allocate_channels_in_tree,
    verify_three_hop_uniqueness,
)
from repro.core.config import GtTschConfig
from repro.core.slotframe_builder import GtSlotframeBuilder
from repro.mac.slotframe import render_cdu_matrix
from repro.mac.tsch import TschConfig, TschEngine

#: The 7-node DAG of Fig. 6: root A(0); B(1), C(2) at rank 1; D(3), E(4)
#: children of B; F(5), G(6) children of C.
PARENT_MAP = {0: None, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2}
NAMES = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "F", 6: "G"}


def main() -> None:
    config = GtTschConfig()
    assignment = allocate_channels_in_tree(
        PARENT_MAP,
        num_channels=config.num_channels,
        broadcast_offset=config.broadcast_channel_offset,
        rng=random.Random(7),
    )

    print("Child-facing channel offsets (Algorithm 1):")
    for node in sorted(assignment):
        parent = PARENT_MAP[node]
        parent_channel = assignment[parent] if parent is not None else "-"
        print(
            f"  node {NAMES[node]}: children transmit to it on offset {assignment[node]}"
            f" (it reaches its own parent on offset {parent_channel})"
        )

    violations = verify_three_hop_uniqueness(PARENT_MAP, assignment)
    print(f"\nThree-hop uniqueness / sibling-distinctness violations: {len(violations)}")
    for violation in violations:
        print(f"  ! {violation}")

    # Build the deterministic part of the root's slotframe and show it as a
    # CDU matrix (Fig. 1 style): broadcast cells plus the shared timeslots of
    # the root's parent-child group.
    engine = TschEngine(0, TschConfig(), random.Random(1))
    builder = GtSlotframeBuilder(config)
    builder.build(engine)
    builder.install_shared_cells_for_children(engine, owner=0, child_channel_offset=assignment[0])
    grid = render_cdu_matrix(engine.slotframes.values(), num_channels=config.num_channels)

    print("\nRoot slotframe as a CDU matrix (rows = channel offsets, columns = timeslots):")
    header = "      " + "".join(f"{slot:>6}" for slot in range(config.slotframe_length))
    print(header)
    for channel_offset in range(config.num_channels - 1, -1, -1):
        row = "".join(f"{cell[:6]:>6}" if cell else f"{'.':>6}" for cell in grid[channel_offset])
        print(f"ch {channel_offset:>2} {row}")
    print("\n(Tx->* / Rx->* denote broadcast and shared cells; unicast-data cells are")
    print(" negotiated at run time through 6P and therefore not part of the static layout.)")


if __name__ == "__main__":
    main()
