#!/usr/bin/env python3
"""Numerical analysis of the GT-TSCH game (Section VII of the paper).

The scheduler's core decision -- how many Tx cells to request from the parent
-- is the Nash equilibrium of a concave N-person game.  This example uses the
pure game module (no simulator) to:

1. evaluate the payoff of a congested and an idle node across their strategy
   sets and locate the optimum of Eq. (15);
2. verify the existence conditions of Theorem 1 (strict concavity) and the
   Rosen diagonal-strict-concavity condition of Theorem 2 numerically;
3. run best-response dynamics from several starting points and show they
   converge to the same (unique) equilibrium;
4. show how the equilibrium request reacts to link quality (ETX) and queue
   occupancy -- the two signals GT-TSCH feeds back into the schedule.

Run with::

    python examples/game_equilibrium_analysis.py
"""

from __future__ import annotations

from repro.core.game import GameWeights, PlayerState, optimal_tx_cells, payoff
from repro.core.nash import (
    best_response_dynamics,
    equilibrium_profile,
    is_nash_equilibrium,
    verify_concavity,
    verify_diagonal_strict_concavity,
)

WEIGHTS = GameWeights(alpha=8.0, beta=1.0, gamma=4.0)


def player(depth: int, etx: float, queue: float, l_min: float = 1.0, l_rx: float = 12.0):
    """A player at the given DODAG depth (rank_normalised = 1/depth)."""
    return PlayerState(
        l_tx_min=l_min,
        l_rx_parent=l_rx,
        rank_normalised=1.0 / depth,
        etx=etx,
        queue_metric=queue,
        q_max=8.0,
    )


def main() -> None:
    congested = player(depth=1, etx=1.1, queue=6.0)
    idle = player(depth=2, etx=1.1, queue=0.5)

    print("Payoff across the strategy set (alpha=8, beta=1, gamma=4):")
    print(f"{'l_tx':>6} {'congested rank-1 node':>24} {'idle rank-2 node':>20}")
    for l_tx in range(0, 13):
        print(
            f"{l_tx:>6} {payoff(l_tx, congested, WEIGHTS):>24.3f} "
            f"{payoff(l_tx, idle, WEIGHTS):>20.3f}"
        )

    print("\nEq. (15) optimum (cells to request in the next 6P ADD):")
    print(f"  congested rank-1 node : {optimal_tx_cells(congested, WEIGHTS):.0f}")
    print(f"  idle rank-2 node      : {optimal_tx_cells(idle, WEIGHTS):.0f}")

    # A small network of players: one rank-1 router and three rank-2 leaves.
    players = [
        player(depth=1, etx=1.1, queue=5.0, l_min=3.0, l_rx=16.0),
        player(depth=2, etx=1.3, queue=2.0, l_min=1.0, l_rx=6.0),
        player(depth=2, etx=2.0, queue=4.0, l_min=1.0, l_rx=6.0),
        player(depth=2, etx=1.0, queue=7.5, l_min=1.0, l_rx=6.0),
    ]

    print("\nTheorem 1 (existence): payoff strictly concave on every strategy set:",
          all(verify_concavity(p, WEIGHTS) for p in players))
    print("Theorem 2 (uniqueness): diagonal strict concavity (Rosen) holds:",
          verify_diagonal_strict_concavity(players, WEIGHTS))

    equilibrium = equilibrium_profile(players, WEIGHTS)
    print("\nClosed-form Nash equilibrium (Eq. (15) per player):")
    print("  ", [round(value, 2) for value in equilibrium])
    print("Verified as a Nash equilibrium (no profitable unilateral deviation):",
          is_nash_equilibrium(equilibrium, players, WEIGHTS))

    for start in ([0.0] * 4, [6.0, 6.0, 6.0, 6.0], [16.0, 1.0, 6.0, 3.0]):
        result = best_response_dynamics(players, WEIGHTS, initial_profile=start)
        print(
            f"Best-response dynamics from {start} converged in "
            f"{result.iterations} round(s) to {[round(v, 2) for v in result.profile]}"
        )

    print("\nEquilibrium request vs link quality and congestion (rank-1 node, l_rx=12):")
    print(f"{'ETX':>6} {'Q=0':>8} {'Q=4':>8} {'Q=8':>8}")
    for etx in (1.0, 1.5, 2.0, 3.0, 4.0):
        row = [optimal_tx_cells(player(1, etx, q, l_min=0.0), WEIGHTS) for q in (0.0, 4.0, 8.0)]
        print(f"{etx:>6.1f} {row[0]:>8.0f} {row[1]:>8.0f} {row[2]:>8.0f}")
    print("\nWorse links suppress the request (energy saving); fuller queues raise it")
    print("(congestion avoidance) -- exactly the trade-off Eq. (8) encodes.")


if __name__ == "__main__":
    main()
