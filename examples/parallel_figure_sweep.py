#!/usr/bin/env python3
"""Multi-seed, multi-core figure sweep with error bars and result caching.

Runs a shortened Fig. 8 sweep (both schedulers) over several seeds, fanned
out over all cores, and prints each point as ``mean +/- 95% CI``.  Results
are memoised on disk, so running this script twice — or widening the sweep —
only simulates the cells that were never run before.

Run with::

    python examples/parallel_figure_sweep.py [jobs]

Equivalent CLI invocation::

    python -m repro.experiments --figure 8 --seeds 1 2 3 --jobs 0 \
        --measurement-s 30 --warmup-s 30
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import ResultCache, run_figure8
from repro.experiments.scenarios import GT_TSCH, ORCHESTRA

RATES_PPM = (30, 120, 165)
SEEDS = (1, 2, 3)


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else (os.cpu_count() or 1)
    cache = ResultCache()

    started = time.perf_counter()
    result = run_figure8(
        rates_ppm=RATES_PPM,
        schedulers=(GT_TSCH, ORCHESTRA),
        seeds=SEEDS,
        jobs=jobs,
        cache=cache,
        measurement_s=30.0,
        warmup_s=30.0,
    )
    elapsed = time.perf_counter() - started

    print(
        f"{len(RATES_PPM)} load points x 2 schedulers x {len(SEEDS)} seeds "
        f"in {elapsed:.1f}s (jobs={jobs}, cache hits={cache.hits})\n"
    )
    print(f"{'load (ppm)':<12}{'scheduler':<14}{'PDR (%)':>20}{'delay (ms)':>24}")
    for scheduler in (GT_TSCH, ORCHESTRA):
        for rate, aggregate in zip(RATES_PPM, result.results[scheduler]):
            pdr = f"{aggregate.mean('pdr_percent'):.1f} +/- {aggregate.ci95('pdr_percent'):.1f}"
            delay = (
                f"{aggregate.mean('end_to_end_delay_ms'):.0f}"
                f" +/- {aggregate.ci95('end_to_end_delay_ms'):.0f}"
            )
            print(f"{rate:<12}{scheduler:<14}{pdr:>20}{delay:>24}")


if __name__ == "__main__":
    main()
