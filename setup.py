"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works on
environments whose setuptools/pip cannot build PEP 660 editable wheels (no
``wheel`` package installed); metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
