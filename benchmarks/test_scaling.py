"""Scaling benchmark: slots/s vs network size under the dispatch kernel.

Runs the :func:`~repro.experiments.scenarios.scale_scenario` family
(paper-sized DODAGs replicated until the site holds 100-500 nodes, converged
sparse-telemetry workload) once with the participant-dispatch kernel
(``fast=True``) and once with the naive per-slot reference loop
(``fast=False``) for every scheduler, verifies the finalized metrics are
bit-identical at every size -- the skip-equivalence proof at scale -- and
records throughput vs N to ``BENCH_scaling.json`` at the repository root.

The headline series is **steady-state slots/s** (measurement + drain phases,
after the one-off topology-formation storms of the warm-up, which cost the
same in every kernel), plus the per-stepped-slot cost, which demonstrates
that dispatch cost tracks the nodes that actually act in a slot rather than
the network size.

A second benchmark (``test_sweep_pool_wall_clock``) times the same scale
sweep through the persistent warm worker pool and through the legacy
fork-per-call engine, asserts the results identical, and records the
wall-clock comparison under the record's ``"sweep"`` key.

Modes
-----
* ``REPRO_BENCH_FULL=1``: N in (100, 200, 500), 20 s warm-up + 40 s
  measurement -- the mode behind the committed full record;
* default / ``REPRO_BENCH_SMOKE=1``: N in (100, 200), shortened windows.
  Unlike the kernel-speed benchmark, smoke is the default here: the full
  mode simulates 500 nodes through the uncached reference loop, which is
  too slow for the tier-1 suite that collects this file.
* ``REPRO_BENCH_NODE_COUNTS="100,300"`` overrides the node-count sweep of
  either mode (same comma-separated convention as ``REPRO_BENCH_SEEDS`` /
  ``REPRO_BENCH_JOBS``).  Overridden sweeps never rewrite the committed
  baseline, even with ``REPRO_BENCH_REBASELINE=1`` -- the record's node
  counts are part of its identity.

A third benchmark (``test_flatness_large_n``) runs the fast kernel alone --
no reference loop, which would take hours at this size -- at N=1000 and
records the per-stepped-slot cost growth relative to N=200 under the
record's ``"flatness"`` key; see the gate notes at its constants.

Record files
------------
Fresh measurements go to ``benchmarks/results/BENCH_scaling.json``
(gitignored; CI uploads it as an artifact).  The committed baseline at the
repository root is only rewritten with ``REPRO_BENCH_REBASELINE=1``.

Regression gate
---------------
With ``REPRO_BENCH_ENFORCE=1`` (set by CI) the test fails when the
steady-state slots/s at the largest smoke N -- expressed as the same-run
speedup over the reference loop, a machine-independent ratio -- regresses
more than 30% below the committed record.  (Raw slots/s does not travel
across machines; the same-run ratio does, which is why the gate normalises
by the reference loop measured in the same process -- the same convention as
the kernel-speed benchmark.)
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import replace

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.experiments.parallel import run_scenarios, shutdown_pool
from repro.experiments.scenarios import (
    DEFAULT_DRAIN_S,
    GT_TSCH,
    MINIMAL,
    ORCHESTRA,
    scale_scenario,
)
from repro.schedulers import registry

#: The committed throughput record (repository root).
BENCH_FILE = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_scaling.json")
#: Where each run's fresh measurements land (gitignored; uploaded by CI).
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_scaling.json")

#: REPRO_BENCH_SMOKE wins over REPRO_BENCH_FULL, so a CI job that pins smoke
#: mode stays smoke even if someone exports REPRO_BENCH_FULL globally.
FULL = bool(os.environ.get("REPRO_BENCH_FULL")) and not bool(
    os.environ.get("REPRO_BENCH_SMOKE")
)
SMOKE = not FULL
ENFORCE = bool(os.environ.get("REPRO_BENCH_ENFORCE"))
REBASELINE = bool(os.environ.get("REPRO_BENCH_REBASELINE"))
MODE = "smoke" if SMOKE else "full"

#: Optional comma-separated override of the node-count sweep, matching the
#: REPRO_BENCH_SEEDS / REPRO_BENCH_JOBS conventions in benchmarks/conftest.
_COUNT_OVERRIDE = tuple(
    int(count)
    for count in os.environ.get("REPRO_BENCH_NODE_COUNTS", "").split(",")
    if count.strip()
)
NODE_COUNTS = _COUNT_OVERRIDE or ((100, 200) if SMOKE else (100, 200, 500))
WARMUP_S = 10.0 if SMOKE else 20.0
MEASUREMENT_S = 15.0 if SMOKE else 40.0
DRAIN_S = DEFAULT_DRAIN_S
# Every registered scheduler: a new plugin enters the sweep (and the
# committed record, additively) without touching this file.  The original
# three rows keep their committed baselines -- adding schedulers never
# rebaselines existing ones.
SCHEDULERS = tuple(registry.available())

#: Steady-state slots/s of the kernel before this change (commit 4d06219) on
#: the same scenarios (best of two runs), dev container.  Kept as the fixed
#: origin of the scaling trajectory; cross-machine comparisons against it
#: are informative only and never asserted.
PRE_PR_STEADY_SLOTS_PER_S = {
    "full": {
        100: {GT_TSCH: 6448, ORCHESTRA: 12420, MINIMAL: 32322},
        200: {GT_TSCH: 2631, ORCHESTRA: 4330, MINIMAL: 10975},
        500: {GT_TSCH: 745, ORCHESTRA: 895, MINIMAL: 1970},
    },
    "smoke": {
        100: {GT_TSCH: 6426, ORCHESTRA: 12260, MINIMAL: 33765},
        200: {GT_TSCH: 2442, ORCHESTRA: 4848, MINIMAL: 12246},
    },
}


#: Timing repetitions per (N, scheduler, kernel); the best run is kept,
#: which filters transient load spikes of shared runners out of the ratios.
TIMING_REPEATS = 2


def _run_phases(num_nodes: int, scheduler: str, fast: bool):
    """Best-of-``TIMING_REPEATS`` phase-timed runs of one scale scenario."""
    best = None
    for _ in range(TIMING_REPEATS):
        run = _run_phases_once(num_nodes, scheduler, fast)
        if best is None or run["elapsed_s"] < best["elapsed_s"]:
            best = run
    return best


def _run_phases_once(num_nodes: int, scheduler: str, fast: bool):
    """Run one scale scenario with per-phase timing (run_experiment's exact
    call sequence, so fast and reference runs stay comparable bit-for-bit)."""
    scenario = scale_scenario(
        num_nodes=num_nodes,
        scheduler=scheduler,
        measurement_s=MEASUREMENT_S,
        warmup_s=WARMUP_S,
    )
    network = scenario.build_network()
    network.fast = fast
    network.start()
    started = time.perf_counter()
    network.run_seconds(WARMUP_S)
    warm_done = time.perf_counter()
    warm_asn = network.clock.asn
    network.metrics.begin_measurement(network.nodes.values(), network.clock.now)
    network.run_seconds(MEASUREMENT_S)
    network.metrics.end_measurement(network.nodes.values(), network.clock.now)
    for node in network.nodes.values():
        node.traffic_enabled = False
        if node.traffic is not None:
            node.traffic.stop()
    network.run_seconds(DRAIN_S)
    metrics = network.metrics.finalize(network.nodes.values(), network.clock.now, scheduler)
    finished = time.perf_counter()
    steady_slots = network.clock.asn - warm_asn
    return {
        "metrics": metrics,
        "slots": network.clock.asn,
        "steady_slots_per_s": steady_slots / (finished - warm_done),
        "total_slots_per_s": network.clock.asn / (finished - started),
        "stepped_slots": network.stepped_slots,
        "elapsed_s": finished - started,
    }


def _load_committed():
    try:
        with open(BENCH_FILE, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def _write_record(record: dict, path: str) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.benchmark(group="scaling")
def test_scaling_slots_per_second():
    committed = _load_committed()
    results = {}
    for scheduler in SCHEDULERS:
        per_n = {}
        for num_nodes in NODE_COUNTS:
            fast = _run_phases(num_nodes, scheduler, fast=True)
            reference = _run_phases(num_nodes, scheduler, fast=False)
            # Free skip-equivalence proof at scale: the dispatch kernel and
            # the naive reference loop must agree bit-for-bit.
            assert dataclasses.asdict(fast["metrics"]) == dataclasses.asdict(
                reference["metrics"]
            ), f"{scheduler} N={num_nodes}: kernel diverged from reference"
            assert fast["slots"] == reference["slots"]
            # Custom REPRO_BENCH_NODE_COUNTS sweeps have no pre-PR origin.
            pre_pr = PRE_PR_STEADY_SLOTS_PER_S[MODE].get(num_nodes, {}).get(scheduler)
            per_n[str(num_nodes)] = {
                "slots": fast["slots"],
                "stepped_slots": fast["stepped_slots"],
                "steady_slots_per_s": round(fast["steady_slots_per_s"], 1),
                "total_slots_per_s": round(fast["total_slots_per_s"], 1),
                "reference_steady_slots_per_s": round(
                    reference["steady_slots_per_s"], 1
                ),
                "us_per_stepped_slot": round(
                    1e6 * fast["elapsed_s"] / max(1, fast["stepped_slots"]), 1
                ),
                "speedup_vs_reference": round(
                    fast["steady_slots_per_s"] / reference["steady_slots_per_s"], 3
                ),
                "speedup_vs_pre_pr_kernel": (
                    round(fast["steady_slots_per_s"] / pre_pr, 3) if pre_pr else None
                ),
            }
        results[scheduler] = per_n

    record = dict(committed) if isinstance(committed, dict) else {}
    record.setdefault("benchmark", "scale-sweep-sparse-telemetry")
    record["pre_pr_kernel"] = {
        "commit": "4d06219",
        "note": (
            "slot-skipping kernel before participant dispatch, same scenarios, "
            "dev container; steady-state slots/s (measurement+drain after "
            "warm-up).  speedup_vs_pre_pr_kernel is same-machine information; "
            "the CI gate uses the same-run speedup_vs_reference ratio instead"
        ),
        "steady_slots_per_s": {
            mode: {n: dict(per) for n, per in entries.items()}
            for mode, entries in PRE_PR_STEADY_SLOTS_PER_S.items()
        },
    }
    record.setdefault("modes", {})
    record["modes"] = dict(record["modes"])
    record["modes"][MODE] = {
        "node_counts": list(NODE_COUNTS),
        "warmup_s": WARMUP_S,
        "measurement_s": MEASUREMENT_S,
        "drain_s": DRAIN_S,
        "schedulers": results,
    }
    _write_record(record, RESULT_FILE)
    if REBASELINE and not _COUNT_OVERRIDE:
        _write_record(record, BENCH_FILE)

    for scheduler, per_n in results.items():
        for count, entry in per_n.items():
            vs_pre_pr = entry["speedup_vs_pre_pr_kernel"]
            print(
                f"[scaling/{MODE}] {scheduler} N={count}: "
                f"{entry['steady_slots_per_s']:,.0f} slots/s steady "
                f"({entry['speedup_vs_reference']:.2f}x vs reference, "
                + (f"{vs_pre_pr:.2f}x vs pre-PR kernel, " if vs_pre_pr else "")
                + f"{entry['us_per_stepped_slot']:.0f} us/stepped slot)"
            )

    # Informational (non-gating): raw steady slots/s vs the committed record.
    # Raw throughput does not travel across machines -- only the same-run
    # ratio is enforced below -- but printing the delta makes raw-throughput
    # regressions visible in the job log.
    committed_raw = (
        committed.get("modes", {}).get(MODE, {}).get("schedulers", {})
        if isinstance(committed, dict)
        else {}
    )
    for scheduler, per_n in results.items():
        for count, entry in per_n.items():
            recorded = committed_raw.get(scheduler, {}).get(count, {}).get(
                "steady_slots_per_s"
            )
            if not recorded:
                continue
            delta = 100.0 * (entry["steady_slots_per_s"] / recorded - 1.0)
            print(
                f"[scaling/{MODE}] {scheduler} N={count}: raw delta vs committed "
                f"{recorded:,.0f} -> {entry['steady_slots_per_s']:,.0f} slots/s "
                f"({delta:+.0f}%, informational only)"
            )

    # The dispatch kernel must beat the reference loop at every size.
    for scheduler, per_n in results.items():
        for count, entry in per_n.items():
            assert entry["speedup_vs_reference"] >= 1.1, (
                f"{scheduler} N={count}: dispatch kernel "
                f"{entry['speedup_vs_reference']:.2f}x vs reference"
            )

    # CI regression gate at the largest N of this mode: the same-run
    # speedup over the reference loop travels across machines; fail when it
    # drops >30% below the committed record.  With the timer wheels and the
    # shared-cell contention pruning on by default, this ratio gates those
    # paths too: a correctness-preserving but slow regression in either
    # shows up directly as a lower kernel-vs-reference speedup.
    if ENFORCE:
        largest = str(NODE_COUNTS[-1])
        baseline = (
            committed.get("modes", {}).get(MODE, {}).get("schedulers", {})
            if isinstance(committed, dict)
            else {}
        )
        for scheduler, per_n in results.items():
            committed_speedup = (
                baseline.get(scheduler, {}).get(largest, {}).get("speedup_vs_reference")
            )
            if not committed_speedup:
                continue
            measured = per_n[largest]["speedup_vs_reference"]
            assert measured >= 0.7 * committed_speedup, (
                f"{scheduler} N={largest}: steady slots/s regressed — "
                f"{measured:.2f}x vs reference, committed "
                f"{committed_speedup:.2f}x"
            )


# ----------------------------------------------------------------------
# large-N flatness: per-stepped-slot cost growth, fast kernel only
# ----------------------------------------------------------------------
#: The flatness pair.  The reference loop is not run at all here -- at
#: N=1000 it would take hours -- so this leg has no bit-identity cross-check
#: (the sweep above provides that at every size it covers).
FLATNESS_SMALL_N = 200
FLATNESS_LARGE_N = 1000
FLATNESS_SCHEDULER = MINIMAL
FLATNESS_REPEATS = 2

#: Gate on us_per_stepped_slot[1000] / us_per_stepped_slot[200].  A truly
#: flat dispatch kernel would hold this near 1.0; the measured value on the
#: dev container is ~5x, and that is a property of the scenario, not of the
#: dispatch bookkeeping: scale_topology's DODAGs are spatially isolated but
#: share schedule residues, so every DODAG is active in the *same* stepped
#: slots and the participant count per stepped slot grows with N.  The
#: per-participant protocol work (DIO processing, frame reception, slot
#: planning) is pure Python and dominates.  The gate therefore pins the
#: growth at "linear in participants, with headroom" -- it exists to catch
#: superlinear regressions (an accidental O(N^2) scan would push the ratio
#: past ~25x), not to certify O(1) dispatch.
FLATNESS_RATIO_MAX = 8.0


@pytest.mark.benchmark(group="scaling")
def test_flatness_large_n():
    """Fast-kernel-only N=1000 leg: per-stepped-slot cost vs N=200."""
    best: dict[int, dict] = {}
    for num_nodes in (FLATNESS_SMALL_N, FLATNESS_LARGE_N):
        for _ in range(FLATNESS_REPEATS):
            run = _run_phases_once(num_nodes, FLATNESS_SCHEDULER, fast=True)
            kept = best.get(num_nodes)
            if kept is None or run["elapsed_s"] < kept["elapsed_s"]:
                best[num_nodes] = run

    def us_per_stepped(run: dict) -> float:
        return 1e6 * run["elapsed_s"] / max(1, run["stepped_slots"])

    small = us_per_stepped(best[FLATNESS_SMALL_N])
    large = us_per_stepped(best[FLATNESS_LARGE_N])
    ratio = large / small
    print(
        f"[scaling/flatness] {FLATNESS_SCHEDULER}: "
        f"N={FLATNESS_SMALL_N} {small:.0f} us/stepped slot, "
        f"N={FLATNESS_LARGE_N} {large:.0f} us/stepped slot "
        f"(ratio {ratio:.2f}x, gate {FLATNESS_RATIO_MAX:.1f}x)"
    )

    # Merge into this run's fresh record when the throughput test already
    # wrote one, else extend the committed baseline.
    try:
        with open(RESULT_FILE, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = _load_committed()
    record = dict(record) if isinstance(record, dict) else {}
    record["flatness"] = {
        "scheduler": FLATNESS_SCHEDULER,
        "mode": MODE,
        "node_counts": [FLATNESS_SMALL_N, FLATNESS_LARGE_N],
        "warmup_s": WARMUP_S,
        "measurement_s": MEASUREMENT_S,
        "stepped_slots": {
            str(n): best[n]["stepped_slots"] for n in sorted(best)
        },
        "us_per_stepped_slot": {
            str(FLATNESS_SMALL_N): round(small, 1),
            str(FLATNESS_LARGE_N): round(large, 1),
        },
        "ratio": round(ratio, 2),
        "ratio_max": FLATNESS_RATIO_MAX,
        "note": (
            "fast kernel only (reference loop infeasible at N=1000); ratio "
            "grows with N because shared schedule residues keep every DODAG "
            "active in the same stepped slots -- see FLATNESS_RATIO_MAX"
        ),
    }
    _write_record(record, RESULT_FILE)
    if REBASELINE:
        _write_record(record, BENCH_FILE)

    assert ratio <= FLATNESS_RATIO_MAX, (
        f"per-stepped-slot cost grew {ratio:.2f}x from N={FLATNESS_SMALL_N} "
        f"to N={FLATNESS_LARGE_N} (gate {FLATNESS_RATIO_MAX:.1f}x) -- "
        "superlinear dispatch regression"
    )


# ----------------------------------------------------------------------
# sweep engine wall-clock: persistent warm pool vs fork-per-call
# ----------------------------------------------------------------------
#: Sweep-bench dimensions (independent of FULL/SMOKE: the point is engine
#: overhead, not simulation depth).
SWEEP_NODE_COUNTS = (100, 200)
SWEEP_SEEDS = (1, 2)
SWEEP_WARMUP_S = 4.0
SWEEP_MEASUREMENT_S = 6.0
SWEEP_JOBS = 2


def _sweep_cells(seeds=SWEEP_SEEDS):
    return [
        replace(
            scale_scenario(
                num_nodes=count,
                scheduler=scheduler,
                measurement_s=SWEEP_MEASUREMENT_S,
                warmup_s=SWEEP_WARMUP_S,
            ),
            seed=seed,
            drain_s=2.0,
        )
        for scheduler in SCHEDULERS
        for count in SWEEP_NODE_COUNTS
        for seed in seeds
    ]


@pytest.mark.benchmark(group="scaling")
def test_sweep_pool_wall_clock():
    """Scale-sweep wall-clock through both pool engines, recorded to the
    scaling record.

    Times the same (scheduler x N x seed) batch through the fork-per-call
    engine (a fresh ``multiprocessing.Pool`` per ``run_scenarios``, the
    pre-persistent-pool behaviour) and through the persistent pool after a
    warm-up batch (workers already spawned, stack imported, frozen-medium
    topologies cached).  Results are asserted bit-identical; the wall-clock
    ratio is recorded, not gated -- it depends on core count (a single-core
    runner shows pool overhead only) and machine load, unlike the kernel's
    same-run speedup ratio.
    """
    cells = _sweep_cells()
    started = time.perf_counter()
    forked = run_scenarios(cells, jobs=SWEEP_JOBS, persistent_pool=False)
    fork_s = time.perf_counter() - started

    run_scenarios(_sweep_cells(seeds=(3,)), jobs=SWEEP_JOBS)  # spawn + warm
    started = time.perf_counter()
    warm = run_scenarios(cells, jobs=SWEEP_JOBS)
    warm_s = time.perf_counter() - started
    shutdown_pool()

    for a, b in zip(forked, warm):
        assert dataclasses.asdict(a) == dataclasses.asdict(b), (
            "persistent pool diverged from the forking engine"
        )

    improvement = 100.0 * (1.0 - warm_s / fork_s)
    print(
        f"[scaling/sweep] {len(cells)} cells x jobs={SWEEP_JOBS}: "
        f"fork-per-call {fork_s:.2f}s, warm persistent pool {warm_s:.2f}s "
        f"({improvement:+.0f}%)"
    )

    # Merge into this run's fresh record when the throughput test already
    # wrote one, else extend the committed baseline.
    try:
        with open(RESULT_FILE, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = _load_committed()
    record = dict(record) if isinstance(record, dict) else {}
    record["sweep"] = {
        "cells": len(cells),
        "jobs": SWEEP_JOBS,
        "cpu_count": os.cpu_count(),
        "node_counts": list(SWEEP_NODE_COUNTS),
        "fork_per_call_s": round(fork_s, 2),
        "warm_pool_s": round(warm_s, 2),
        "improvement_percent": round(improvement, 1),
    }
    _write_record(record, RESULT_FILE)
    if REBASELINE:
        _write_record(record, BENCH_FILE)
