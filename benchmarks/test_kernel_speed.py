"""Kernel-speed benchmark: slot-skipping kernel vs the naive reference loop.

Runs the Fig. 8 lowest-load point (30 packets/minute/node, two 7-node DODAGs)
once with the naive per-slot reference loop (``fast=False``) and once with the
slot-skipping kernel (``fast=True``) for every scheduler, verifies the
finalized metrics are bit-identical, and records both throughputs to
``BENCH_kernel.json`` at the repository root so the performance trajectory is
tracked from this change onward.

Modes
-----
* default (full): the benchmark durations of ``benchmarks/conftest.py``
  (40 s warm-up, 60 s measurement, 5 s drain = 7000 slots per run);
* ``REPRO_BENCH_SMOKE=1``: shortened windows for CI smoke runs.

Record files
------------
Every run writes its fresh measurements to
``benchmarks/results/BENCH_kernel.json`` (gitignored; CI uploads it as an
artifact).  The committed baseline at the repository root is only rewritten
with ``REPRO_BENCH_REBASELINE=1`` — re-baselining is an explicit act, so a
casual test run never dirties the tracked record with machine-local numbers.

Regression gate
---------------
With ``REPRO_BENCH_ENFORCE=1`` (set by CI) the test fails when the kernel's
measured speedup over the naive loop — a same-run, machine-independent ratio
— drops more than 30% below the ratio committed in the repository-root
``BENCH_kernel.json`` for the same mode.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from benchmarks.conftest import BENCH_MEASUREMENT_S, BENCH_WARMUP_S, RESULTS_DIR
from repro.experiments.scenarios import (
    DEFAULT_DRAIN_S,
    GT_TSCH,
    MINIMAL,
    ORCHESTRA,
    traffic_load_scenario,
)

#: The committed throughput record (repository root).
BENCH_FILE = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_kernel.json")
#: Where each run's fresh measurements land (gitignored; uploaded by CI).
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_kernel.json")

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENFORCE = bool(os.environ.get("REPRO_BENCH_ENFORCE"))
REBASELINE = bool(os.environ.get("REPRO_BENCH_REBASELINE"))
MODE = "smoke" if SMOKE else "full"

#: Lowest swept load of Fig. 8 (packets per minute per node).
LOWEST_LOAD_PPM = 30.0
DRAIN_S = DEFAULT_DRAIN_S
WARMUP_S = 10.0 if SMOKE else BENCH_WARMUP_S
MEASUREMENT_S = 15.0 if SMOKE else BENCH_MEASUREMENT_S

SCHEDULERS = (GT_TSCH, ORCHESTRA, MINIMAL)

#: Throughput of the pre-kernel per-slot loop on the same scenario point
#: (commit 3417a4d, full durations, dev container).  Kept as the fixed origin
#: of the trajectory; comparisons against it across machines are informative
#: only and never asserted.
PRE_PR_KERNEL_SLOTS_PER_S = {GT_TSCH: 13051, ORCHESTRA: 14046, MINIMAL: 19643}

#: How much faster today's fast=False reference loop is than the pre-kernel
#: loop, measured back-to-back on the same machine (reference 18852 / 20904 /
#: 29560 slots/s vs the numbers above).  Composing this same-machine ratio
#: with the same-run kernel-vs-naive speedup yields a load-independent
#: estimate of the kernel's gain over the pre-kernel loop.
NAIVE_REFERENCE_VS_PRE_PR = {GT_TSCH: 1.444, ORCHESTRA: 1.488, MINIMAL: 1.505}

#: Conservative floors for the same-run speedup (measured medians on the dev
#: container, full mode: GT-TSCH 2.4x, Orchestra 2.2x, 6TiSCH-minimal 2.8x;
#: smoke mode runs fewer slots and amortises less, so its floors are lower).
#: Kept loose enough to survive noisy shared runners.
SPEEDUP_FLOORS = (
    {GT_TSCH: 1.25, ORCHESTRA: 1.15, MINIMAL: 1.5}
    if SMOKE
    else {GT_TSCH: 1.4, ORCHESTRA: 1.2, MINIMAL: 1.6}
)


#: Timing repetitions per kernel; the best run is kept, which filters the
#: transient load spikes of shared CI runners out of the gated ratios.
TIMING_REPEATS = 2


def _run_point(scheduler: str, fast: bool):
    best_elapsed = None
    metrics = None
    slots = 0
    for _ in range(TIMING_REPEATS):
        scenario = traffic_load_scenario(
            rate_ppm=LOWEST_LOAD_PPM,
            scheduler=scheduler,
            seed=1,
            measurement_s=MEASUREMENT_S,
            warmup_s=WARMUP_S,
        )
        network = scenario.build_network()
        network.fast = fast
        started = time.perf_counter()
        metrics = network.run_experiment(
            warmup_s=WARMUP_S,
            measurement_s=MEASUREMENT_S,
            drain_s=DRAIN_S,
            scheduler_name=scheduler,
        )
        elapsed = time.perf_counter() - started
        slots = network.clock.asn
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return metrics, slots, best_elapsed


def _load_committed():
    try:
        with open(BENCH_FILE, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def _write_record(record: dict, path: str) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.benchmark(group="kernel-speed")
def test_kernel_speed_fig8_lowest_load():
    committed = _load_committed()
    results = {}
    for scheduler in SCHEDULERS:
        naive_metrics, slots, naive_s = _run_point(scheduler, fast=False)
        fast_metrics, fast_slots, fast_s = _run_point(scheduler, fast=True)
        assert fast_slots == slots
        # Free skip-equivalence check: the two kernels must agree bit-for-bit.
        assert dataclasses.asdict(fast_metrics) == dataclasses.asdict(naive_metrics)
        naive_rate = slots / naive_s
        fast_rate = slots / fast_s
        speedup = fast_rate / naive_rate
        results[scheduler] = {
            "slots": slots,
            "naive_slots_per_s": round(naive_rate, 1),
            "fast_slots_per_s": round(fast_rate, 1),
            "speedup_vs_naive": round(speedup, 3),
            "speedup_vs_pre_pr_kernel": round(
                speedup * NAIVE_REFERENCE_VS_PRE_PR[scheduler], 3
            ),
        }

    record = dict(committed) if isinstance(committed, dict) else {}
    record.setdefault("benchmark", "fig8-lowest-load-30ppm")
    record["pre_pr_kernel"] = {
        "commit": "3417a4d",
        "note": (
            "per-slot loop before the slot-skipping kernel; dev container, full "
            "durations.  speedup_vs_pre_pr_kernel composes the same-run "
            "kernel-vs-naive ratio with the same-machine reference-vs-pre-PR "
            "ratio, so it is independent of current machine load"
        ),
        "slots_per_s": {k: v for k, v in PRE_PR_KERNEL_SLOTS_PER_S.items()},
        "reference_vs_pre_pr": dict(NAIVE_REFERENCE_VS_PRE_PR),
    }
    record.setdefault("modes", {})
    record["modes"] = dict(record["modes"])
    record["modes"][MODE] = {
        "warmup_s": WARMUP_S,
        "measurement_s": MEASUREMENT_S,
        "drain_s": DRAIN_S,
        "schedulers": results,
    }
    _write_record(record, RESULT_FILE)
    if REBASELINE:
        _write_record(record, BENCH_FILE)

    for scheduler, entry in results.items():
        print(
            f"[kernel-speed/{MODE}] {scheduler}: naive {entry['naive_slots_per_s']:,.0f} "
            f"-> fast {entry['fast_slots_per_s']:,.0f} slots/s "
            f"({entry['speedup_vs_naive']:.2f}x vs naive, "
            f"{entry['speedup_vs_pre_pr_kernel']:.2f}x vs pre-kernel loop)"
        )

    # The kernel must beat the naive loop on every scheduler, comfortably on
    # the sparse schedules the skip targets.
    for scheduler, floor in SPEEDUP_FLOORS.items():
        assert results[scheduler]["speedup_vs_naive"] >= floor, (
            f"{scheduler}: speedup {results[scheduler]['speedup_vs_naive']:.2f}x "
            f"below floor {floor}x"
        )

    # CI regression gate: the committed record holds the kernel-vs-naive
    # throughput ratio, which is measured in the same run on the same machine
    # and therefore travels across hardware; fail when it drops >30%.
    if ENFORCE:
        baseline = (
            committed.get("modes", {}).get(MODE, {}).get("schedulers", {})
            if isinstance(committed, dict)
            else {}
        )
        for scheduler, entry in results.items():
            committed_speedup = baseline.get(scheduler, {}).get("speedup_vs_naive")
            if not committed_speedup:
                continue
            assert entry["speedup_vs_naive"] >= 0.7 * committed_speedup, (
                f"{scheduler}: kernel speedup {entry['speedup_vs_naive']:.2f}x "
                f"regressed >30% vs committed {committed_speedup:.2f}x"
            )
