"""Figure 10: GT-TSCH vs Orchestra as the unicast slotframe length grows.

Orchestra's unicast slotframe is swept over 8, 12, 16 and 20 timeslots; for
fairness (as in the paper) GT-TSCH uses a single slotframe four times as
long.  Longer slotframes mean fewer transmission opportunities per second, so
both schedulers degrade -- the question the figure answers is how gracefully.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_JOBS, BENCH_MEASUREMENT_S, BENCH_SEEDS, save_report
from repro.experiments.runner import run_figure10
from repro.experiments.scenarios import GT_TSCH, ORCHESTRA

UNICAST_LENGTHS = (8, 12, 16, 20)

#: Longer slotframes converge more slowly (each 6P round covers one slotframe
#: worth of demand), so this figure uses a longer warm-up than Figs. 8-9.
FIG10_WARMUP_S = 60.0


@pytest.mark.benchmark(group="figure-10")
def test_fig10_slotframe_length_sweep(benchmark):
    """Run the full Fig. 10 sweep for both schedulers and check its shape."""

    def run():
        return run_figure10(
            unicast_lengths=UNICAST_LENGTHS,
            schedulers=(GT_TSCH, ORCHESTRA),
            rate_ppm=120.0,
            seeds=BENCH_SEEDS,
            jobs=BENCH_JOBS,
            measurement_s=BENCH_MEASUREMENT_S,
            warmup_s=FIG10_WARMUP_S,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.report()
    print("\n" + report)
    save_report("figure10_slotframe_length.txt", report)

    gt_pdr = result.series(GT_TSCH, "pdr_percent")
    orchestra_pdr = result.series(ORCHESTRA, "pdr_percent")
    gt_throughput = result.series(GT_TSCH, "received_per_minute")
    orchestra_throughput = result.series(ORCHESTRA, "received_per_minute")

    # Fig. 10a: GT-TSCH stays usable (paper: above ~80 %) at every slotframe
    # length, while Orchestra falls below 50 % beyond the shortest setting.
    assert all(pdr > 70.0 for pdr in gt_pdr)
    assert gt_pdr[0] > 95.0
    assert all(o < 60.0 for o in orchestra_pdr[1:])
    assert all(g > o for g, o in zip(gt_pdr, orchestra_pdr))

    # Fig. 10f: GT-TSCH keeps its throughput well above Orchestra's across
    # the sweep (paper: above ~550 ppm vs Orchestra's collapse).
    assert all(g > o for g, o in zip(gt_throughput, orchestra_throughput))
    assert gt_throughput[-1] > 2.0 * orchestra_throughput[-1]
