"""Ablation benchmarks over GT-TSCH design choices the paper fixes.

The paper sets the payoff weights (alpha, beta, gamma) and the EWMA factor
zeta without sweeping them.  These benches quantify how sensitive the
headline PDR is to those choices (DESIGN.md calls this out as an ablation
target) and double as regression checks that the default configuration is at
least as good as the alternatives.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED, save_report
from repro.experiments.ablation import run_ewma_ablation, run_weight_ablation

ABLATION_MEASUREMENT_S = 40.0
ABLATION_WARMUP_S = 40.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_payoff_weights(benchmark):
    """Sweep (alpha, beta, gamma) of Eq. (8) at 120 ppm."""

    def run():
        return run_weight_ablation(
            rate_ppm=120.0,
            seed=BENCH_SEED,
            measurement_s=ABLATION_MEASUREMENT_S,
            warmup_s=ABLATION_WARMUP_S,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["GT-TSCH payoff-weight ablation (120 ppm per node)"]
    for weights, metrics in results.items():
        lines.append(
            f"alpha={weights[0]:<5} beta={weights[1]:<5} gamma={weights[2]:<5} "
            f"pdr={metrics.pdr_percent:6.2f}%  delay={metrics.end_to_end_delay_ms:7.1f} ms  "
            f"duty={metrics.radio_duty_cycle_percent:5.2f}%"
        )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("ablation_payoff_weights.txt", report)

    default = results[(8.0, 1.0, 4.0)]
    assert default.pdr_percent > 90.0
    # Every weight set must still beat Orchestra-under-load territory: the
    # game changes how much headroom is requested, not whether Eq. (1)'s
    # minimum demand is met.
    assert all(metrics.pdr_percent > 60.0 for metrics in results.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_queue_ewma(benchmark):
    """Sweep the EWMA smoothing factor zeta of Eq. (6) at 120 ppm."""

    def run():
        return run_ewma_ablation(
            zetas=(0.0, 0.5, 0.9),
            rate_ppm=120.0,
            seed=BENCH_SEED,
            measurement_s=ABLATION_MEASUREMENT_S,
            warmup_s=ABLATION_WARMUP_S,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["GT-TSCH queue-EWMA ablation (120 ppm per node)"]
    for zeta, metrics in results.items():
        lines.append(
            f"zeta={zeta:<4} pdr={metrics.pdr_percent:6.2f}%  "
            f"delay={metrics.end_to_end_delay_ms:7.1f} ms  "
            f"queue_loss={metrics.queue_loss_per_node:5.2f}"
        )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("ablation_queue_ewma.txt", report)

    assert all(metrics.pdr_percent > 80.0 for metrics in results.values())
