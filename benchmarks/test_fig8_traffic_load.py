"""Figure 8: GT-TSCH vs Orchestra as the per-node traffic load grows.

Reproduces all six panels (PDR, end-to-end delay, packet loss, radio duty
cycle, queue loss, throughput) over the paper's load sweep of 30, 75, 120 and
165 packets per minute per node on two 7-node DODAGs (14 nodes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_JOBS,
    BENCH_MEASUREMENT_S,
    BENCH_SEEDS,
    BENCH_WARMUP_S,
    save_report,
)
from repro.experiments.runner import run_figure8
from repro.experiments.scenarios import GT_TSCH, ORCHESTRA

RATES_PPM = (30, 75, 120, 165)


@pytest.mark.benchmark(group="figure-8")
def test_fig8_traffic_load_sweep(benchmark):
    """Run the full Fig. 8 sweep for both schedulers and check its shape."""

    def run():
        return run_figure8(
            rates_ppm=RATES_PPM,
            schedulers=(GT_TSCH, ORCHESTRA),
            seeds=BENCH_SEEDS,
            jobs=BENCH_JOBS,
            measurement_s=BENCH_MEASUREMENT_S,
            warmup_s=BENCH_WARMUP_S,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.report()
    print("\n" + report)
    save_report("figure8_traffic_load.txt", report)

    gt_pdr = result.series(GT_TSCH, "pdr_percent")
    orchestra_pdr = result.series(ORCHESTRA, "pdr_percent")
    gt_throughput = result.series(GT_TSCH, "received_per_minute")
    orchestra_throughput = result.series(ORCHESTRA, "received_per_minute")
    gt_delay = result.series(GT_TSCH, "end_to_end_delay_ms")
    orchestra_delay = result.series(ORCHESTRA, "end_to_end_delay_ms")
    gt_loss = result.series(GT_TSCH, "packet_loss_per_minute")
    orchestra_loss = result.series(ORCHESTRA, "packet_loss_per_minute")

    # Fig. 8a: GT-TSCH keeps its PDR high at every load; Orchestra collapses
    # under heavy traffic while both are fine at 30 ppm.
    assert all(pdr > 90.0 for pdr in gt_pdr)
    assert orchestra_pdr[0] > 85.0
    assert orchestra_pdr[-1] < 60.0
    assert gt_pdr[-1] > orchestra_pdr[-1] + 30.0

    # Fig. 8b: GT-TSCH has the lower delay at every load point.
    assert all(g < o for g, o in zip(gt_delay, orchestra_delay))

    # Fig. 8c: Orchestra loses far more packets per minute at heavy load.
    assert orchestra_loss[-1] > 10.0 * max(gt_loss[-1], 1.0)

    # Fig. 8f: GT-TSCH's throughput keeps growing with the offered load and
    # roughly doubles Orchestra's at 165 ppm.
    assert gt_throughput == sorted(gt_throughput)
    assert gt_throughput[-1] > 1.5 * orchestra_throughput[-1]
