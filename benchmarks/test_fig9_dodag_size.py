"""Figure 9: GT-TSCH vs Orchestra as the DODAG grows from 6 to 9 nodes.

Two DODAGs (one root each), 120 ppm per node; the network grows from 12 to 18
nodes in total, matching the paper's scalability experiment.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_JOBS,
    BENCH_MEASUREMENT_S,
    BENCH_SEEDS,
    BENCH_WARMUP_S,
    save_report,
)
from repro.experiments.runner import run_figure9
from repro.experiments.scenarios import GT_TSCH, ORCHESTRA

DODAG_SIZES = (6, 7, 8, 9)


@pytest.mark.benchmark(group="figure-9")
def test_fig9_dodag_size_sweep(benchmark):
    """Run the full Fig. 9 sweep for both schedulers and check its shape."""

    def run():
        return run_figure9(
            dodag_sizes=DODAG_SIZES,
            schedulers=(GT_TSCH, ORCHESTRA),
            rate_ppm=120.0,
            seeds=BENCH_SEEDS,
            jobs=BENCH_JOBS,
            measurement_s=BENCH_MEASUREMENT_S,
            warmup_s=BENCH_WARMUP_S,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.report()
    print("\n" + report)
    save_report("figure9_dodag_size.txt", report)

    gt_pdr = result.series(GT_TSCH, "pdr_percent")
    orchestra_pdr = result.series(ORCHESTRA, "pdr_percent")
    gt_throughput = result.series(GT_TSCH, "received_per_minute")
    orchestra_throughput = result.series(ORCHESTRA, "received_per_minute")
    gt_qloss = result.series(GT_TSCH, "queue_loss_per_node")
    orchestra_qloss = result.series(ORCHESTRA, "queue_loss_per_node")

    # Fig. 9a: GT-TSCH sustains a high PDR across every DODAG size while
    # Orchestra cannot serve the growing load.
    assert all(pdr > 90.0 for pdr in gt_pdr)
    assert all(g > o for g, o in zip(gt_pdr, orchestra_pdr))

    # Fig. 9f: GT-TSCH's delivered throughput grows with the network size
    # (more sources, still delivered); Orchestra's stays flat by comparison.
    assert gt_throughput[-1] > gt_throughput[0]
    assert gt_throughput[-1] > 1.5 * orchestra_throughput[-1]

    # Fig. 9e: queue loss per node stays near zero for GT-TSCH and is clearly
    # higher for Orchestra at every size.
    assert all(g <= 5.0 for g in gt_qloss)
    assert all(o > g for g, o in zip(gt_qloss, orchestra_qloss))
