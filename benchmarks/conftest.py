"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure of the paper's evaluation: it
runs the corresponding parameter sweep for both schedulers, prints the same
series the figure plots (via ``FigureResult.report()``) and writes the text
report under ``benchmarks/results/`` so the numbers recorded in
EXPERIMENTS.md can be reproduced with a single ``pytest benchmarks/
--benchmark-only`` invocation.

``pytest-benchmark`` measures the wall-clock cost of each figure; every sweep
is executed exactly once per benchmark run (``rounds=1``) because a figure is
itself hundreds of simulated seconds of network time.
"""

from __future__ import annotations

import os

import pytest

#: Directory where the figure reports are written.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Durations used by the benchmark figures.  They are shorter than the
#: paper's runs (which lasted tens of minutes on real motes) but long enough
#: for the schedules to converge and the metrics to stabilise; EXPERIMENTS.md
#: documents this substitution.
BENCH_WARMUP_S = 40.0
BENCH_MEASUREMENT_S = 60.0
BENCH_SEED = 1

#: Seeds each figure point is averaged over.  The default is the single
#: historical seed (so the recorded series stay comparable across versions);
#: set REPRO_BENCH_SEEDS="1,2,3" to average.  Note the figure assertions
#: were tuned on seed 1: they compare scheduler means, but some thresholds
#: are absolute, so unusual seed sets may shift a series past a threshold
#: without indicating a regression.
BENCH_SEEDS = tuple(
    int(seed)
    for seed in os.environ.get("REPRO_BENCH_SEEDS", "").split(",")
    if seed.strip()
) or (BENCH_SEED,)

#: Worker processes per figure sweep.  Serial by default so the recorded
#: pytest-benchmark timings stay comparable across machines and versions;
#: the sweep cells are independent seeded simulations, so results are
#: identical for any job count.  REPRO_BENCH_JOBS opts in to parallelism
#: (0 means one worker per core, resolved by the engine).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS") or "1")


def save_report(name: str, text: str) -> str:
    """Persist a figure report and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_durations():
    return {"warmup_s": BENCH_WARMUP_S, "measurement_s": BENCH_MEASUREMENT_S}
