"""Tests for the DeBrAS broadcast-aware autonomous scheduler."""

import pytest

from repro.net.topology import star_topology
from repro.schedulers.debras import DebrasConfig, DebrasScheduler, debras_config_from

from tests.conftest import make_registry_network


def make_config(**overrides):
    fields = dict(
        slotframe_length=32,
        num_channels=8,
        num_broadcast_cells=4,
        broadcast_channel_offset=0,
    )
    fields.update(overrides)
    return DebrasConfig(**fields)


@pytest.fixture
def debras_network():
    return make_registry_network("DeBrAS", star_topology(3))


class TestDebrasConfig:
    def test_broadcast_slots_spread_evenly(self):
        assert make_config().broadcast_slots() == (0, 8, 16, 24)
        assert make_config(num_broadcast_cells=1).broadcast_slots() == (0,)

    def test_from_contiki_shares_broadcast_budget(self):
        class Contiki:
            gt_slotframe_length = 32
            hopping_sequence = (15, 20, 25, 26)
            num_broadcast_cells = 4

        config = debras_config_from(Contiki())
        assert config.slotframe_length == 32
        assert config.num_channels == 4
        assert config.num_broadcast_cells == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_config(num_broadcast_cells=0)
        with pytest.raises(ValueError):
            make_config(num_broadcast_cells=32)
        with pytest.raises(ValueError):
            make_config(num_channels=1)


class TestBroadcastAvoidance:
    def test_autonomous_cells_never_land_on_broadcast_slots(self):
        scheduler = DebrasScheduler(make_config())
        broadcast = set(scheduler.config.broadcast_slots())
        for owner in range(200):
            slot, channel = scheduler._autonomous_cell(owner)
            assert slot not in broadcast
            assert 0 <= slot < scheduler.config.slotframe_length
            assert 1 <= channel < scheduler.config.num_channels

    def test_probing_is_deterministic_across_instances(self):
        # Sender and receiver must independently derive identical coordinates.
        a = DebrasScheduler(make_config())
        b = DebrasScheduler(make_config())
        for owner in range(50):
            assert a._autonomous_cell(owner) == b._autonomous_cell(owner)

    def test_colliding_owner_relocates_to_next_free_slot(self):
        # Construct an owner whose raw hash slot is a broadcast slot; the
        # probed slot must be the next non-broadcast one.
        from repro.schedulers.msf import sax_hash

        config = make_config()
        scheduler = DebrasScheduler(config)
        broadcast = set(config.broadcast_slots())
        owner = next(
            i for i in range(1000) if sax_hash(i) % config.slotframe_length in broadcast
        )
        raw = sax_hash(owner) % config.slotframe_length
        slot, _ = scheduler._autonomous_cell(owner)
        expected = raw
        while expected in broadcast:
            expected = (expected + 1) % config.slotframe_length
        assert slot == expected


class TestSlotframeSetup:
    def test_broadcast_cells_and_own_rx_installed(self, debras_network):
        debras_network.start()
        node = debras_network.nodes[1]
        slotframe = node.tsch.get_slotframe(DebrasScheduler.SLOTFRAME_HANDLE)
        broadcast = [c for c in slotframe.all_cells() if c.is_broadcast]
        assert sorted(c.slot_offset for c in broadcast) == [0, 8, 16, 24]
        assert all(c.is_shared and c.is_tx and c.is_rx for c in broadcast)
        rx = [c for c in slotframe.all_cells() if c.label == "debras-autonomous-rx"]
        assert len(rx) == 1
        assert (rx[0].slot_offset, rx[0].channel_offset) == node.scheduler._autonomous_cell(1)

    def test_link_ends_agree_on_cell_coordinates(self, debras_network):
        debras_network.start()
        child = debras_network.nodes[1]
        root = debras_network.nodes[0]
        tx = [
            c
            for c in child.tsch.get_slotframe(0).all_cells()
            if c.label == "debras-autonomous-tx"
        ]
        assert len(tx) == 1 and tx[0].neighbor == 0
        # The child transmits on the ROOT's autonomous cell (receiver-based).
        root_rx = [
            c
            for c in root.tsch.get_slotframe(0).all_cells()
            if c.label == "debras-autonomous-rx"
        ]
        assert (tx[0].slot_offset, tx[0].channel_offset) == (
            root_rx[0].slot_offset,
            root_rx[0].channel_offset,
        )


class TestTopologyTracking:
    def test_parent_switch_moves_tx_cell(self, debras_network):
        debras_network.start()
        node = debras_network.nodes[1]
        node.scheduler.on_parent_changed(0, 3)
        cells = list(node.tsch.get_slotframe(0).all_cells())
        assert not [c for c in cells if c.neighbor == 0 and c.is_tx]
        moved = [c for c in cells if c.neighbor == 3 and c.is_tx]
        assert len(moved) == 1
        assert (moved[0].slot_offset, moved[0].channel_offset) == node.scheduler._autonomous_cell(3)

    def test_child_cells_added_and_removed(self, debras_network):
        debras_network.start()
        root = debras_network.nodes[0]
        root.scheduler.on_child_added(2)
        cells = list(root.tsch.get_slotframe(0).all_cells())
        assert [c for c in cells if c.neighbor == 2 and c.is_tx]
        root.scheduler.on_child_removed(2)
        assert not [
            c for c in root.tsch.get_slotframe(0).all_cells() if c.neighbor == 2
        ]


class TestEndToEnd:
    def test_never_negotiates_over_sixp(self):
        network = make_registry_network("DeBrAS", star_topology(3), rate_ppm=60)
        network.run_seconds(20.0)
        for node in network.nodes.values():
            assert node.sixtop.requests_sent == 0

    def test_light_traffic_delivers(self):
        network = make_registry_network("DeBrAS", star_topology(3), rate_ppm=30)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.pdr_percent > 80.0
