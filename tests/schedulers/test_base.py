"""Tests for the scheduling-function base interface."""

from repro.schedulers.base import SchedulingFunction
from repro.sixtop.messages import SixPCommand, SixPMessage, SixPMessageType, SixPReturnCode



class TestSchedulingFunctionDefaults:
    def test_default_callbacks_are_noops(self):
        sf = SchedulingFunction()
        sf.start()
        sf.on_parent_changed(None, 1)
        sf.on_child_added(2)
        sf.on_child_removed(2)
        sf.on_eb_received(None)
        sf.on_dio_received(None)
        sf.on_packet_enqueued(None)
        sf.on_tx_done(None, True)
        assert sf.eb_fields() == {}
        assert sf.dio_fields() == {}

    def test_default_sixp_handler_rejects(self):
        sf = SchedulingFunction()
        message = SixPMessage(
            message_type=SixPMessageType.REQUEST, command=SixPCommand.ADD, seqnum=0
        )
        code, fields = sf.on_sixp_request(1, message)
        assert code is SixPReturnCode.ERR
        assert fields == {}

    def test_describe_schedule_detached(self):
        assert "detached" in SchedulingFunction().describe_schedule()

    def test_describe_schedule_lists_cells(self, gt_star_network):
        gt_star_network.start()
        text = gt_star_network.nodes[0].scheduler.describe_schedule()
        assert "slotframe 0" in text
        assert "Cell(" in text
