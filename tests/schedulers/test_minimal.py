"""Tests for the 6TiSCH minimal-configuration scheduler."""

import pytest

from repro.net.network import Network
from repro.net.node import NodeConfig
from repro.net.topology import star_topology
from repro.net.traffic import PeriodicTrafficGenerator
from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig


def make_minimal_network(rate_ppm=0.0, seed=5, num_shared_cells=1):
    network = Network(seed=seed, default_node_config=NodeConfig())
    topology = star_topology(3)

    def traffic_factory(node_id, is_root):
        if is_root or rate_ppm <= 0:
            return None
        return PeriodicTrafficGenerator(rate_ppm=rate_ppm)

    network.build_from_topology(
        topology,
        scheduler_factory=lambda node_id, is_root: MinimalScheduler(
            MinimalSchedulerConfig(num_shared_cells=num_shared_cells)
        ),
        traffic_factory=traffic_factory,
    )
    return network


class TestMinimalConfig:
    def test_defaults(self):
        config = MinimalSchedulerConfig()
        assert config.slotframe_length == 7
        assert config.num_shared_cells == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MinimalSchedulerConfig(slotframe_length=0)
        with pytest.raises(ValueError):
            MinimalSchedulerConfig(num_shared_cells=0)
        with pytest.raises(ValueError):
            MinimalSchedulerConfig(slotframe_length=4, num_shared_cells=5)


class TestMinimalSchedule:
    def test_single_shared_cell_installed(self):
        network = make_minimal_network()
        network.start()
        node = network.nodes[1]
        cells = node.tsch.all_cells()
        assert len(cells) == 1
        cell = cells[0]
        assert cell.is_tx and cell.is_rx and cell.is_shared and cell.is_broadcast
        assert cell.slot_offset == 0

    def test_multiple_shared_cells_spread(self):
        network = make_minimal_network(num_shared_cells=3)
        network.start()
        node = network.nodes[2]
        offsets = sorted(cell.slot_offset for cell in node.tsch.all_cells())
        assert len(offsets) == 3
        assert len(set(offsets)) == 3

    def test_light_traffic_flows_through_shared_cell(self):
        network = make_minimal_network(rate_ppm=10)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=30.0, drain_s=3.0)
        assert metrics.generated > 0
        assert metrics.delivered > 0

    def test_saturates_under_heavier_load_than_gt_tsch(self):
        """The minimal schedule has a single contention cell: at 120 ppm per
        node it cannot keep up, which is why real deployments need an SF."""
        network = make_minimal_network(rate_ppm=120)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=30.0, drain_s=3.0)
        assert metrics.pdr_percent < 90.0
