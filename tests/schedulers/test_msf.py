"""Tests for the MSF (RFC 9033) scheduling function."""

import pytest

from repro.net.topology import star_topology
from repro.schedulers.msf import (
    LIM_NUMCELLSUSED_HIGH,
    LIM_NUMCELLSUSED_LOW,
    MAX_NUMCELLS,
    MsfConfig,
    MsfScheduler,
    msf_config_from,
    sax_hash,
)
from repro.sixtop.messages import (
    CellDescriptor,
    SixPCommand,
    SixPMessage,
    SixPMessageType,
    SixPReturnCode,
)

from tests.conftest import make_registry_network


def make_config(**overrides):
    fields = dict(
        slotframe_length=32,
        num_channels=8,
        max_numcells=MAX_NUMCELLS,
        lim_numcells_high=LIM_NUMCELLSUSED_HIGH,
        lim_numcells_low=LIM_NUMCELLSUSED_LOW,
        max_negotiated_tx=8,
        housekeeping_period_s=2.0,
    )
    fields.update(overrides)
    return MsfConfig(**fields)


def add_request(num_cells=1, cell_list=()):
    return SixPMessage(
        message_type=SixPMessageType.REQUEST,
        command=SixPCommand.ADD,
        seqnum=0,
        num_cells=num_cells,
        cell_list=list(cell_list),
    )


def add_response(cell_list, return_code=SixPReturnCode.SUCCESS):
    return SixPMessage(
        message_type=SixPMessageType.RESPONSE,
        command=SixPCommand.ADD,
        seqnum=0,
        num_cells=len(cell_list),
        cell_list=list(cell_list),
        return_code=return_code,
    )


@pytest.fixture
def msf_network():
    return make_registry_network("MSF", star_topology(3))


class TestSaxHash:
    def test_deterministic(self):
        assert sax_hash(42) == sax_hash(42)

    def test_32bit_range(self):
        assert 0 <= sax_hash(123456789) < 2**32

    def test_spreads_values(self):
        assert len({sax_hash(i) % 31 for i in range(50)}) > 5


class TestMsfConfig:
    def test_from_contiki_follows_shared_knobs(self):
        class Contiki:
            gt_slotframe_length = 32
            hopping_sequence = (15, 20, 25, 26)
            load_balance_period_s = 4.0

        config = msf_config_from(Contiki())
        assert config.slotframe_length == 32
        assert config.num_channels == 4
        assert config.housekeeping_period_s == 4.0

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            make_config(lim_numcells_low=12, lim_numcells_high=4)
        with pytest.raises(ValueError):
            make_config(lim_numcells_high=MAX_NUMCELLS + 1)

    def test_needs_room_for_unicast(self):
        with pytest.raises(ValueError):
            make_config(slotframe_length=1)
        with pytest.raises(ValueError):
            make_config(num_channels=1)


class TestSlotframeSetup:
    def test_minimal_shared_cell_and_autonomous_rx(self, msf_network):
        msf_network.start()
        node = msf_network.nodes[1]
        slotframe = node.tsch.get_slotframe(MsfScheduler.SLOTFRAME_HANDLE)
        shared = [c for c in slotframe.all_cells() if c.is_broadcast]
        assert len(shared) == 1
        assert shared[0].slot_offset == 0 and shared[0].is_shared
        own_slot, own_channel = node.scheduler._autonomous_cell(1)
        rx = [c for c in slotframe.all_cells() if c.label == "msf-autonomous-rx"]
        assert [(c.slot_offset, c.channel_offset) for c in rx] == [(own_slot, own_channel)]

    def test_autonomous_coordinates_avoid_slot0_and_channel0(self):
        config = make_config()
        scheduler = MsfScheduler(config)
        for owner in range(100):
            h = sax_hash(owner)
            slot = 1 + h % (config.slotframe_length - 1)
            channel = 1 + (h >> 16) % (config.num_channels - 1)
            assert 1 <= slot < config.slotframe_length
            assert 1 <= channel < config.num_channels
            assert scheduler._autonomous_cell(owner) == (slot, channel)

    def test_parent_change_installs_autonomous_tx_at_parent_coords(self, msf_network):
        msf_network.start()
        node = msf_network.nodes[1]
        slotframe = node.tsch.get_slotframe(MsfScheduler.SLOTFRAME_HANDLE)
        tx = [c for c in slotframe.all_cells() if c.label == "msf-autonomous-tx"]
        assert len(tx) == 1
        assert tx[0].neighbor == 0 and tx[0].is_shared
        assert (tx[0].slot_offset, tx[0].channel_offset) == node.scheduler._autonomous_cell(0)


class TestResponder:
    def test_add_grants_requested_free_offset(self, msf_network):
        msf_network.start()
        root = msf_network.nodes[0].scheduler
        free = root._free_offsets()
        wanted = free[0]
        code, fields = root.on_sixp_request(1, add_request(1, [CellDescriptor(wanted, 0)]))
        assert code is SixPReturnCode.SUCCESS
        assert [d.slot_offset for d in fields["cell_list"]] == [wanted]
        assert root.negotiated_rx_cell_count() == 1
        # The grant also ensured a downward response path to the child.
        slotframe = msf_network.nodes[0].tsch.get_slotframe(0)
        assert [c for c in slotframe.all_cells() if c.label == "msf-autonomous-tx-child"]

    def test_add_without_free_candidates_returns_norres(self, msf_network):
        msf_network.start()
        root = msf_network.nodes[0].scheduler
        taken = next(iter(root._free_offsets()))
        root.on_sixp_request(1, add_request(1, [CellDescriptor(taken, 0)]))
        code, fields = root.on_sixp_request(2, add_request(1, [CellDescriptor(taken, 0)]))
        assert code is SixPReturnCode.ERR_NORES
        assert fields == {}

    def test_delete_removes_granted_cells(self, msf_network):
        msf_network.start()
        root = msf_network.nodes[0].scheduler
        _, fields = root.on_sixp_request(1, add_request(1))
        granted = fields["cell_list"]
        delete = SixPMessage(
            message_type=SixPMessageType.REQUEST,
            command=SixPCommand.DELETE,
            seqnum=1,
            num_cells=1,
            cell_list=list(granted),
        )
        code, fields = root.on_sixp_request(1, delete)
        assert code is SixPReturnCode.SUCCESS
        assert [d.slot_offset for d in fields["cell_list"]] == [
            d.slot_offset for d in granted
        ]
        assert root.negotiated_rx_cell_count() == 0

    def test_unsupported_command_errs(self, msf_network):
        msf_network.start()
        root = msf_network.nodes[0].scheduler
        ask = SixPMessage(
            message_type=SixPMessageType.REQUEST,
            command=SixPCommand.ASK_CHANNEL,
            seqnum=0,
        )
        assert root.on_sixp_request(1, ask) == (SixPReturnCode.ERR, {})


class TestUsageAdaptation:
    def _install_negotiated(self, scheduler, offsets):
        """Install negotiated Tx cells as a successful ADD response would."""
        descriptors = [CellDescriptor(offset, 3) for offset in offsets]
        scheduler._on_add_response(0, add_request(len(offsets)), add_response(descriptors))
        return scheduler

    def test_high_usage_queues_add(self, msf_network):
        msf_network.start()
        child = msf_network.nodes[1].scheduler
        self._install_negotiated(child, [10])
        child._num_cells_elapsed = child.config.max_numcells
        child._num_cells_used = child.config.lim_numcells_high
        before = child.add_requests_sent
        child._housekeeping_tick()
        queued = any(r.command is SixPCommand.ADD for r in child._request_queue)
        assert queued or child.add_requests_sent > before
        # Counters reset after an evaluation (the RFC's sliding window).
        assert child._num_cells_elapsed == 0 and child._num_cells_used == 0

    def test_low_usage_deletes_highest_offset_cell(self, msf_network):
        msf_network.start()
        child = msf_network.nodes[1].scheduler
        self._install_negotiated(child, [10, 20])
        child._num_cells_elapsed = child.config.max_numcells
        child._num_cells_used = child.config.lim_numcells_low
        before = child.delete_requests_sent
        child._housekeeping_tick()
        queued = [r for r in child._request_queue if r.command is SixPCommand.DELETE]
        if queued:
            assert queued[0].cell_list[0].slot_offset == 20
        else:
            assert child.delete_requests_sent > before

    def test_no_evaluation_before_max_numcells_elapsed(self, msf_network):
        msf_network.start()
        child = msf_network.nodes[1].scheduler
        self._install_negotiated(child, [10])
        child._request_queue.clear()
        child._num_cells_elapsed = child.config.max_numcells - 2
        child._num_cells_used = child.config.lim_numcells_high
        child._housekeeping_tick()
        assert not child._request_queue

    def test_last_negotiated_cell_never_deleted(self, msf_network):
        msf_network.start()
        child = msf_network.nodes[1].scheduler
        self._install_negotiated(child, [10])
        child._request_queue.clear()
        child._num_cells_elapsed = child.config.max_numcells
        child._num_cells_used = 0
        before = child.delete_requests_sent
        child._housekeeping_tick()
        assert not [r for r in child._request_queue if r.command is SixPCommand.DELETE]
        assert child.delete_requests_sent == before


class TestTimeoutSelfHealing:
    def test_timed_out_add_rebootstraps_on_next_tick(self, msf_network):
        msf_network.start()
        child = msf_network.nodes[1].scheduler
        assert child._requested_initial  # bootstrap queued on parent change
        # Simulate the 6P layer reporting a timeout (response is None).
        child._request_queue.clear()
        child._on_add_response(0, add_request(1), None)
        assert not child._requested_initial
        child._bootstrap_with_parent()
        assert child._requested_initial


class TestEndToEnd:
    def test_negotiates_dedicated_cells_over_sixp(self):
        network = make_registry_network("MSF", star_topology(3), rate_ppm=60)
        network.run_seconds(20.0)
        negotiated = sum(
            node.scheduler.negotiated_tx_cell_count()
            for node in network.nodes.values()
        )
        assert negotiated >= 1
        assert any(n.sixtop.requests_sent > 0 for n in network.nodes.values())

    def test_light_traffic_delivers(self):
        network = make_registry_network("MSF", star_topology(3), rate_ppm=30)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.pdr_percent > 80.0
