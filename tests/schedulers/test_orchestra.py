"""Tests for the Orchestra baseline scheduler."""

import pytest

from repro.net.topology import star_topology
from repro.schedulers.orchestra import OrchestraConfig, OrchestraScheduler, orchestra_hash

from tests.conftest import make_orchestra_network


class TestOrchestraHash:
    def test_deterministic(self):
        assert orchestra_hash(42) == orchestra_hash(42)

    def test_spreads_values(self):
        assert len({orchestra_hash(i) % 8 for i in range(50)}) > 3

    def test_32bit_range(self):
        assert 0 <= orchestra_hash(123456789) < 2 ** 32


class TestOrchestraConfig:
    def test_defaults(self):
        config = OrchestraConfig()
        assert config.unicast_slotframe_length == 8
        assert not config.sender_based

    def test_validation(self):
        with pytest.raises(ValueError):
            OrchestraConfig(unicast_slotframe_length=1)
        with pytest.raises(ValueError):
            OrchestraConfig(num_channels=1)


class TestSlotframeSetup:
    def test_three_slotframes_installed(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[1]
        assert set(node.tsch.slotframes) == {
            OrchestraScheduler.EB_HANDLE,
            OrchestraScheduler.COMMON_HANDLE,
            OrchestraScheduler.UNICAST_HANDLE,
        }

    def test_slotframe_lengths_follow_config(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[0]
        config = node.scheduler.config
        assert node.tsch.get_slotframe(0).length == config.eb_slotframe_length
        assert node.tsch.get_slotframe(1).length == config.common_slotframe_length
        assert node.tsch.get_slotframe(2).length == config.unicast_slotframe_length

    def test_receiver_based_rx_cell_at_own_hash(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[2]
        unicast = node.tsch.get_slotframe(OrchestraScheduler.UNICAST_HANDLE)
        own_slot = orchestra_hash(2) % node.scheduler.config.unicast_slotframe_length
        rx_cells = [cell for cell in unicast.all_cells() if cell.is_rx and not cell.is_tx]
        assert any(cell.slot_offset == own_slot for cell in rx_cells)

    def test_common_cell_is_shared_broadcast(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[1]
        common = node.tsch.get_slotframe(OrchestraScheduler.COMMON_HANDLE)
        cells = list(common.all_cells())
        assert len(cells) == 1
        cell = cells[0]
        assert cell.is_broadcast and cell.is_shared and cell.is_tx and cell.is_rx


class TestTopologyTracking:
    def test_parent_tx_cell_installed_on_parent_known(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[1]
        unicast = node.tsch.get_slotframe(OrchestraScheduler.UNICAST_HANDLE)
        parent_cells = [cell for cell in unicast.all_cells() if cell.neighbor == 0 and cell.is_tx]
        assert len(parent_cells) == 1
        expected_slot = orchestra_hash(0) % node.scheduler.config.unicast_slotframe_length
        assert parent_cells[0].slot_offset == expected_slot
        assert parent_cells[0].is_shared  # receiver-based cells contend

    def test_all_children_of_one_parent_share_its_cell(self, orchestra_star_network):
        """The root cause of Orchestra's congestion collapse: every child
        derives the same cell from the parent's id."""
        orchestra_star_network.start()
        coordinates = set()
        for node_id in (1, 2, 3):
            node = orchestra_star_network.nodes[node_id]
            unicast = node.tsch.get_slotframe(OrchestraScheduler.UNICAST_HANDLE)
            for cell in unicast.all_cells():
                if cell.neighbor == 0 and cell.is_tx:
                    coordinates.add(cell.coordinate())
        assert len(coordinates) == 1

    def test_parent_switch_moves_tx_cell(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[1]
        node.scheduler.on_parent_changed(0, 3)
        unicast = node.tsch.get_slotframe(OrchestraScheduler.UNICAST_HANDLE)
        assert not [c for c in unicast.all_cells() if c.neighbor == 0 and c.is_tx]
        assert [c for c in unicast.all_cells() if c.neighbor == 3 and c.is_tx]

    def test_eb_rx_cell_follows_time_source(self, orchestra_star_network):
        orchestra_star_network.start()
        node = orchestra_star_network.nodes[1]
        eb_sf = node.tsch.get_slotframe(OrchestraScheduler.EB_HANDLE)
        rx_cells = [cell for cell in eb_sf.all_cells() if cell.is_rx]
        assert len(rx_cells) == 1
        assert rx_cells[0].slot_offset == orchestra_hash(0) % node.scheduler.config.eb_slotframe_length

    def test_child_cells_added_and_removed(self, orchestra_star_network):
        orchestra_star_network.start()
        root = orchestra_star_network.nodes[0]
        root.scheduler.on_child_added(1)
        unicast = root.tsch.get_slotframe(OrchestraScheduler.UNICAST_HANDLE)
        assert [c for c in unicast.all_cells() if c.neighbor == 1]
        root.scheduler.on_child_removed(1)
        assert not [c for c in unicast.all_cells() if c.neighbor == 1]

    def test_sender_based_variant_listens_per_child(self):
        network = make_orchestra_network(
            star_topology(2), orchestra_config=OrchestraConfig(sender_based=True)
        )
        network.start()
        root = network.nodes[0]
        root.scheduler.on_child_added(1)
        unicast = root.tsch.get_slotframe(OrchestraScheduler.UNICAST_HANDLE)
        rx_for_child = [c for c in unicast.all_cells() if c.neighbor == 1 and c.is_rx]
        assert rx_for_child
        assert rx_for_child[0].slot_offset == orchestra_hash(1) % 8


class TestOrchestraEndToEnd:
    def test_light_traffic_delivers(self):
        network = make_orchestra_network(star_topology(3), rate_ppm=30)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.pdr_percent > 80.0

    def test_no_sixp_traffic(self):
        """Orchestra is autonomous: it never negotiates cells over 6P."""
        network = make_orchestra_network(star_topology(3), rate_ppm=60)
        network.run_seconds(20.0)
        for node in network.nodes.values():
            assert node.sixtop.requests_sent == 0
