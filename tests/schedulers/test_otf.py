"""Tests for the OTF bandwidth-estimation scheduler."""

import pytest

from repro.net.packet import Packet, PacketType
from repro.net.topology import star_topology
from repro.schedulers.otf import OtfConfig, OtfScheduler, lane_coordinates, otf_config_from

from tests.conftest import make_registry_network


def make_config(**overrides):
    fields = dict(
        slotframe_length=32,
        num_channels=8,
        num_broadcast_cells=4,
        max_lanes=6,
        hysteresis_lanes=1,
        allocation_period_s=2.0,
    )
    fields.update(overrides)
    return OtfConfig(**fields)


def eb_packet(source, parent, lanes):
    return Packet(
        ptype=PacketType.EB,
        source=source,
        destination=-1,
        payload={"otf_parent": parent, "otf_lanes": lanes},
    )


@pytest.fixture
def otf_network():
    return make_registry_network("OTF", star_topology(3))


class TestOtfConfig:
    def test_from_contiki_follows_shared_knobs(self):
        class Contiki:
            gt_slotframe_length = 32
            hopping_sequence = (15, 20, 25, 26)
            num_broadcast_cells = 4
            load_balance_period_s = 4.0

        config = otf_config_from(Contiki())
        assert config.slotframe_length == 32
        assert config.num_channels == 4
        assert config.num_broadcast_cells == 4
        assert config.allocation_period_s == 4.0

    def test_broadcast_slots_spread_evenly(self):
        assert make_config().broadcast_slots() == (0, 8, 16, 24)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_config(max_lanes=0)
        with pytest.raises(ValueError):
            make_config(hysteresis_lanes=-1)
        with pytest.raises(ValueError):
            make_config(num_broadcast_cells=0)
        with pytest.raises(ValueError):
            make_config(allocation_period_s=0.0)


class TestLaneCoordinates:
    def test_deterministic_and_in_range(self):
        broadcast = frozenset((0, 8, 16, 24))
        for owner in range(50):
            for index in range(6):
                first = lane_coordinates(owner, index, 32, 8, broadcast)
                again = lane_coordinates(owner, index, 32, 8, broadcast)
                assert first == again
                slot, channel = first
                assert 1 <= slot < 32 and slot not in broadcast
                assert 1 <= channel < 8

    def test_distinct_lanes_of_one_owner_spread(self):
        coords = {lane_coordinates(5, index, 32, 8) for index in range(6)}
        assert len(coords) > 1


class TestSlotframeSetup:
    def test_spread_broadcast_cells_installed(self, otf_network):
        otf_network.start()
        node = otf_network.nodes[1]
        slotframe = node.tsch.get_slotframe(OtfScheduler.SLOTFRAME_HANDLE)
        broadcast = [c for c in slotframe.all_cells() if c.is_broadcast]
        assert sorted(c.slot_offset for c in broadcast) == [0, 8, 16, 24]
        assert all(c.is_shared for c in broadcast)

    def test_default_lane_towards_parent_on_start(self, otf_network):
        otf_network.start()
        child = otf_network.nodes[1]
        assert child.scheduler.tx_lane_count() == 1
        lanes = [
            c
            for c in child.tsch.get_slotframe(0).all_cells()
            if c.label == "otf-tx-lane"
        ]
        assert len(lanes) == 1 and lanes[0].neighbor == 0
        expected = lane_coordinates(1, 0, 32, 8, child.scheduler._broadcast_slots)
        assert (lanes[0].slot_offset, lanes[0].channel_offset) == expected


class TestEbReconciliation:
    def test_parent_mirrors_advertised_lane_count(self, otf_network):
        otf_network.start()
        root = otf_network.nodes[0].scheduler
        root.on_eb_received(eb_packet(source=1, parent=0, lanes=3))
        assert root.rx_lane_count(1) == 3
        # Rx lanes sit at the CHILD's lane coordinates (sender-based).
        cells = [
            c
            for c in otf_network.nodes[0].tsch.get_slotframe(0).all_cells()
            if c.label == "otf-rx-lane" and c.neighbor == 1
        ]
        coords = {(c.slot_offset, c.channel_offset) for c in cells}
        expected = {
            lane_coordinates(1, index, 32, 8, root._broadcast_slots)
            for index in range(3)
        }
        assert coords == expected

    def test_shrinks_when_child_advertises_fewer_lanes(self, otf_network):
        otf_network.start()
        root = otf_network.nodes[0].scheduler
        root.on_eb_received(eb_packet(source=1, parent=0, lanes=3))
        root.on_eb_received(eb_packet(source=1, parent=0, lanes=1))
        assert root.rx_lane_count(1) == 1

    def test_ignores_ebs_for_other_parents(self, otf_network):
        otf_network.start()
        root = otf_network.nodes[0].scheduler
        root.on_eb_received(eb_packet(source=1, parent=2, lanes=3))
        assert root.rx_lane_count(1) == 0

    def test_stale_child_lanes_removed_on_reparent(self, otf_network):
        otf_network.start()
        root = otf_network.nodes[0].scheduler
        root.on_eb_received(eb_packet(source=1, parent=0, lanes=2))
        assert root.rx_lane_count(1) == 2
        # The child re-parents elsewhere; its next EB retires our Rx lanes.
        root.on_eb_received(eb_packet(source=1, parent=2, lanes=2))
        assert root.rx_lane_count(1) == 0

    def test_eb_fields_advertise_parent_and_lanes(self, otf_network):
        otf_network.start()
        child = otf_network.nodes[1].scheduler
        fields = child.eb_fields()
        assert fields == {"otf_parent": 0, "otf_lanes": 1}
        root = otf_network.nodes[0].scheduler
        assert root.eb_fields() == {}


class TestAllocationTick:
    def test_generation_pressure_grows_lanes(self, otf_network):
        otf_network.start()
        child = otf_network.nodes[1].scheduler
        assert child.tx_lane_count() == 1
        child._packets_generated = 100
        child._allocation_tick()
        assert child.tx_lane_count() > 1
        assert child.tx_lane_count() <= child.config.max_lanes

    def test_hysteresis_keeps_allocation_on_small_dips(self, otf_network):
        otf_network.start()
        child = otf_network.nodes[1].scheduler
        child._packets_generated = 100
        child._allocation_tick()
        allocated = child.tx_lane_count()
        # Demand drops to one lane: the shrink must overcome the hysteresis
        # margin, so a drop of exactly one lane below current keeps it.
        child._packets_generated = 0
        child._allocation_tick()
        assert child.tx_lane_count() < allocated  # big drop shrinks
        assert child.tx_lane_count() >= 1

    def test_forwarding_demand_counts_child_lanes(self, otf_network):
        otf_network.start()
        child = otf_network.nodes[1].scheduler
        child.on_eb_received(eb_packet(source=2, parent=1, lanes=2))
        child._packets_generated = 0
        child._allocation_tick()
        # 2 child Rx lanes must be forwardable: at least 2 Tx lanes.
        assert child.tx_lane_count() >= 2

    def test_root_never_allocates_tx_lanes(self, otf_network):
        otf_network.start()
        root = otf_network.nodes[0].scheduler
        root._packets_generated = 100
        root._allocation_tick()
        assert root.tx_lane_count() == 0

    def test_counter_only_counts_own_data(self, otf_network):
        otf_network.start()
        child = otf_network.nodes[1].scheduler
        child.on_packet_enqueued(
            Packet(ptype=PacketType.DATA, source=1, destination=0)
        )
        child.on_packet_enqueued(
            Packet(ptype=PacketType.DATA, source=2, destination=0)  # forwarded
        )
        child.on_packet_enqueued(
            Packet(ptype=PacketType.DIO, source=1, destination=-1)  # control
        )
        assert child._packets_generated == 1


class TestEndToEnd:
    def test_light_traffic_delivers(self):
        network = make_registry_network("OTF", star_topology(3), rate_ppm=30)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.pdr_percent > 80.0
