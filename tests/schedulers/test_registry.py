"""Tests for the scheduler-plugin registry (the one source of scheduler names)."""

import ast
import pathlib

import pytest

from repro.experiments.scenarios import ContikiConfig, traffic_load_scenario
from repro.schedulers import registry
from repro.schedulers.registry import register_scheduler

ALL_SCHEDULERS = (
    "6TiSCH-minimal",
    "DeBrAS",
    "GT-TSCH",
    "MSF",
    "OTF",
    "Orchestra",
)


class TestRegistryContents:
    def test_available_lists_every_first_party_scheduler_sorted(self):
        assert tuple(registry.available()) == ALL_SCHEDULERS

    def test_paper_lineup_matches_recorded_default(self):
        # The registry must not silently change the figure line-ups the
        # committed results were produced with.
        assert registry.paper_lineup() == ("GT-TSCH", "Orchestra")

    def test_robustness_lineup_matches_recorded_default(self):
        assert registry.robustness_lineup() == (
            "GT-TSCH",
            "Orchestra",
            "6TiSCH-minimal",
        )


class TestResolve:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_roundtrip_builds_scheduler_with_matching_name(self, name):
        factory = registry.resolve(name)(ContikiConfig())
        scheduler = factory(1, False)
        assert scheduler.name == name

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_every_builder_exposes_a_config_fingerprint(self, name):
        # scenario_fingerprint() folds this into the cache key; a scheduler
        # whose hook raises would poison every cached run.
        scheduler = registry.resolve(name)(ContikiConfig())(1, False)
        fingerprint = scheduler.config_fingerprint()
        assert fingerprint is None or repr(fingerprint)

    def test_factories_build_fresh_instances_per_node(self):
        factory = registry.resolve("MSF")(ContikiConfig())
        assert factory(1, False) is not factory(2, False)

    def test_unknown_name_error_lists_every_registered_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler 'nope'") as err:
            registry.resolve("nope")
        for name in ALL_SCHEDULERS:
            assert name in str(err.value)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        @register_scheduler("test-registry-temp")
        def _build(contiki):
            return lambda node_id, is_root: None

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheduler("test-registry-temp")(_build)
        finally:
            registry._REGISTRY.pop("test-registry-temp", None)

    def test_third_party_plugin_shows_up_everywhere(self):
        @register_scheduler("test-registry-plugin")
        def _build(contiki):
            return lambda node_id, is_root: None

        try:
            assert "test-registry-plugin" in registry.available()
            assert registry.resolve("test-registry-plugin") is _build
            # Not flagged, so the recorded line-ups stay untouched.
            assert "test-registry-plugin" not in registry.paper_lineup()
            assert "test-registry-plugin" not in registry.robustness_lineup()
        finally:
            registry._REGISTRY.pop("test-registry-plugin", None)


class TestScenarioIntegration:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_scenario_factory_resolves_through_registry(self, name):
        scenario = traffic_load_scenario(rate_ppm=60.0, scheduler=name)
        scheduler = scenario._scheduler_factory()(1, False)
        assert scheduler.name == name

    def test_scenario_rejects_unknown_scheduler(self):
        scenario = traffic_load_scenario(rate_ppm=60.0, scheduler="bogus")
        with pytest.raises(ValueError, match="unknown scheduler"):
            scenario._scheduler_factory()


def _module_level_imports(tree: ast.Module):
    """Module names imported at module scope, skipping TYPE_CHECKING blocks."""
    for statement in tree.body:
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                yield alias.name
        elif isinstance(statement, ast.ImportFrom):
            yield statement.module or ""


class TestImportCycleContract:
    """``repro.schedulers`` must stay importable without the heavy layers.

    ``repro/__init__`` pulls the whole public API in, so a runtime
    ``sys.modules`` probe cannot observe the package in isolation; the
    contract is enforced statically instead: no module in the package may
    import ``repro.experiments`` or ``repro.core`` at module scope (builders
    defer such imports to their bodies, configs are duck-typed).
    """

    def test_no_module_level_experiments_or_core_imports(self):
        package_dir = (
            pathlib.Path(__file__).resolve().parents[2]
            / "src"
            / "repro"
            / "schedulers"
        )
        offenders = []
        for module_path in sorted(package_dir.glob("*.py")):
            tree = ast.parse(module_path.read_text(), filename=str(module_path))
            for imported in _module_level_imports(tree):
                if imported.startswith(("repro.experiments", "repro.core")):
                    offenders.append(f"{module_path.name}: {imported}")
        assert not offenders, (
            "schedulers package imports heavy layers at module scope: "
            + ", ".join(offenders)
        )
