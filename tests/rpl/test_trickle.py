"""Tests for the Trickle timer (RFC 6206)."""

import random

import pytest

from repro.rpl.trickle import TrickleTimer
from repro.sim.events import EventQueue


def make_timer(queue, fired, i_min=2.0, doublings=3, redundancy=0, seed=1):
    return TrickleTimer(
        queue,
        random.Random(seed),
        lambda: fired.append(queue.now),
        i_min=i_min,
        doublings=doublings,
        redundancy=redundancy,
    )


class TestTrickleTimer:
    def test_fires_within_second_half_of_first_interval(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=2.0)
        timer.start()
        queue.run_until(2.0)
        assert len(fired) == 1
        assert 1.0 <= fired[0] <= 2.0

    def test_interval_doubles_up_to_i_max(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=1.0, doublings=2)
        timer.start()
        queue.run_until(1.0)
        assert timer.interval == 2.0
        queue.run_until(3.0)
        assert timer.interval == 4.0
        queue.run_until(7.0)
        assert timer.interval == 4.0  # capped at i_min * 2**2

    def test_fires_once_per_interval(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=1.0, doublings=8)
        timer.start()
        queue.run_until(31.0)  # intervals 1+2+4+8+16 = 31
        assert len(fired) == 5

    def test_redundancy_suppresses_transmission(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=2.0, redundancy=2)
        timer.start()
        timer.hear_consistent()
        timer.hear_consistent()
        queue.run_until(2.0)
        assert fired == []
        assert timer.suppressions == 1

    def test_counter_resets_each_interval(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=2.0, redundancy=2)
        timer.start()
        timer.hear_consistent()
        timer.hear_consistent()
        queue.run_until(2.0)  # suppressed
        queue.run_until(6.0)  # next interval, counter reset -> fires
        assert len(fired) == 1

    def test_inconsistency_resets_interval(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=1.0, doublings=4)
        timer.start()
        queue.run_until(7.0)
        grown = timer.interval
        assert grown > 1.0
        timer.hear_inconsistent()
        assert timer.interval == 1.0

    def test_inconsistency_at_minimum_is_noop(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=1.0)
        timer.start()
        timer.hear_inconsistent()
        assert timer.interval == 1.0
        queue.run_until(1.0)
        assert len(fired) == 1

    def test_stop(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired)
        timer.start()
        timer.stop()
        queue.run_until(100.0)
        assert fired == []
        assert not timer.running

    def test_invalid_parameters(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            TrickleTimer(queue, random.Random(1), lambda: None, i_min=0.0)
        with pytest.raises(ValueError):
            TrickleTimer(queue, random.Random(1), lambda: None, doublings=-1)

    def test_transmission_counter(self):
        queue = EventQueue()
        fired = []
        timer = make_timer(queue, fired, i_min=1.0, doublings=1)
        timer.start()
        queue.run_until(10.0)
        assert timer.transmissions == len(fired)
