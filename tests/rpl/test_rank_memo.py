"""Unit tests for the RPL candidate-rank memoisation.

The memo's contract: a reception that changes no evaluation input settles
without re-ranking anything, and an evaluation re-scores exactly the
candidates whose inputs (advertised rank / DODAG id / DODAG version, or the
per-link ETX estimate) were dirtied since they were last scored.  Everything
here drives a bare :class:`RplEngine` + :class:`EtxEstimator` pair, so each
invalidation source is exercised in isolation.
"""

import random

from repro.phy.linkstats import EtxEstimator
from repro.rpl.engine import RplConfig, RplEngine
from repro.rpl.messages import make_dio
from repro.sim.events import EventQueue


def make_engine(memo=True):
    estimator = EtxEstimator()
    engine = RplEngine(
        node_id=99,
        config=RplConfig(rank_memo=memo),
        queue=EventQueue(),
        rng=random.Random(7),
        send_packet=lambda packet: None,
        etx_of=estimator.etx,
        etx_state=estimator,
    )
    return engine, estimator


def deliver_dio(engine, sender, rank, dodag_id=1, version=0, now=1.0):
    engine.process_dio(
        make_dio(sender=sender, dodag_id=dodag_id, rank=rank, version=version, now=now),
        now,
    )


def converge(engine):
    """Repeat an input-free reception until the engine reaches a fixed point."""
    parent = engine.neighbors[engine.preferred_parent]
    for _ in range(3):
        deliver_dio(engine, parent.node_id, parent.rank)


class TestInputFreeReceptionSkips:
    def test_identical_dio_skips_evaluation_entirely(self):
        engine, _ = make_engine()
        deliver_dio(engine, sender=1, rank=256)
        converge(engine)
        evals = engine.parent_evaluations
        recomputes = engine.candidate_recomputes
        skips = engine.evaluations_skipped
        deliver_dio(engine, sender=1, rank=256)
        assert engine.parent_evaluations == evals
        assert engine.candidate_recomputes == recomputes
        assert engine.evaluations_skipped == skips + 1
        # Freshness bookkeeping still happened.
        assert engine.neighbors[1].last_heard == 1.0

    def test_skip_requires_a_fixed_point(self):
        """An evaluation that moved our own rank forces the next reception
        to evaluate again (own state is a selection input); once an
        evaluation changes nothing, skipping resumes."""
        engine, estimator = make_engine()
        deliver_dio(engine, sender=1, rank=256)
        converge(engine)
        # Dirty the parent link: the next reception re-evaluates and
        # refreshes our rank (ETX moved), which is not a fixed point ...
        estimator.record_tx(1, success=False, attempts=5)
        deliver_dio(engine, sender=1, rank=256)
        evals = engine.parent_evaluations
        # ... so the following identical reception evaluates again ...
        deliver_dio(engine, sender=1, rank=256)
        assert engine.parent_evaluations == evals + 1
        # ... and only after that no-op evaluation does skipping resume.
        skips = engine.evaluations_skipped
        deliver_dio(engine, sender=1, rank=256)
        assert engine.evaluations_skipped == skips + 1


class TestPerCandidateInvalidation:
    def setup_pair(self):
        engine, estimator = make_engine()
        deliver_dio(engine, sender=1, rank=256)
        deliver_dio(engine, sender=2, rank=4 * 256)
        converge(engine)
        return engine, estimator

    def test_etx_update_dirties_exactly_the_affected_candidate(self):
        engine, estimator = self.setup_pair()
        recomputes = engine.candidate_recomputes
        estimator.record_tx(2, success=True, attempts=2)
        deliver_dio(engine, sender=1, rank=256)  # input-free DIO, dirty ETX
        assert engine.candidate_recomputes == recomputes + 1

    def test_advertised_rank_change_dirties_exactly_that_candidate(self):
        engine, _ = self.setup_pair()
        recomputes = engine.candidate_recomputes
        deliver_dio(engine, sender=2, rank=5 * 256)
        assert engine.candidate_recomputes == recomputes + 1

    def test_dodag_version_bump_dirties_exactly_that_candidate(self):
        engine, _ = self.setup_pair()
        recomputes = engine.candidate_recomputes
        deliver_dio(engine, sender=2, rank=4 * 256, version=1)
        assert engine.candidate_recomputes == recomputes + 1

    def test_new_neighbor_scores_only_itself(self):
        engine, _ = self.setup_pair()
        recomputes = engine.candidate_recomputes
        deliver_dio(engine, sender=3, rank=2 * 256)
        assert engine.candidate_recomputes == recomputes + 1

    def test_eviction_dirties_the_memo_and_drops_the_entry(self):
        engine, _ = self.setup_pair()
        evals = engine.parent_evaluations
        recomputes = engine.candidate_recomputes
        engine.evict_neighbor(2)
        assert 2 not in engine.neighbors
        # Eviction re-evaluates immediately; the surviving candidate's memo
        # is still valid, so nothing is re-scored.
        assert engine.parent_evaluations == evals + 1
        assert engine.candidate_recomputes == recomputes
        # And the now-converged state skips again.
        skips = engine.evaluations_skipped
        deliver_dio(engine, sender=1, rank=256)
        assert engine.evaluations_skipped == skips + 1

    def test_evicting_the_parent_detaches_and_readopts(self):
        engine, _ = self.setup_pair()
        assert engine.preferred_parent == 1
        switches = []
        engine.on_parent_changed = lambda old, new: switches.append((old, new))
        engine.evict_neighbor(1)
        assert switches[0] == (1, None)
        # The surviving neighbor (rank 4*256) is adopted as replacement.
        assert engine.preferred_parent == 2
        assert 1 not in engine.neighbors

    def test_children_membership_is_an_evaluation_input(self):
        engine, _ = self.setup_pair()
        from repro.rpl.messages import make_dao

        engine.process_dao(make_dao(sender=2, parent=99, dodag_id=1, rank=5 * 256, now=2.0), 2.0)
        assert 2 in engine.children
        evals = engine.parent_evaluations
        deliver_dio(engine, sender=1, rank=256)  # otherwise input-free
        assert engine.parent_evaluations == evals + 1


class TestEvictionMemoInteraction:
    """``evict_neighbor`` (the fault path's detach primitive) vs the memo.

    Fault detection evicts dead neighbors from every survivor; the memo
    must never serve a stale score for an evicted candidate, and a
    preferred-parent eviction must force re-evaluation rather than settle
    on the pre-eviction fixed point.
    """

    def setup_pair(self):
        engine, estimator = make_engine()
        deliver_dio(engine, sender=1, rank=256)
        deliver_dio(engine, sender=2, rank=4 * 256)
        converge(engine)
        return engine, estimator

    def test_evicted_then_readvertised_candidate_is_scored_fresh(self):
        """Re-adding an evicted neighbor re-scores it: no stale memo entry."""
        engine, _ = self.setup_pair()
        engine.evict_neighbor(2)
        assert 2 not in engine.neighbors
        recomputes = engine.candidate_recomputes
        deliver_dio(engine, sender=2, rank=4 * 256)
        assert 2 in engine.neighbors
        assert engine.candidate_recomputes == recomputes + 1

    def test_sole_parent_eviction_detaches_then_fresh_dio_readopts(self):
        from repro.rpl.rank import INFINITE_RANK

        engine, _ = make_engine()
        deliver_dio(engine, sender=1, rank=256)
        converge(engine)
        engine.evict_neighbor(1)
        assert engine.preferred_parent is None
        assert engine.rank == INFINITE_RANK
        assert engine.neighbors == {}
        # The re-advertising neighbor is evaluated from scratch, never
        # served from a stale memoised candidate score.
        recomputes = engine.candidate_recomputes
        evals = engine.parent_evaluations
        deliver_dio(engine, sender=1, rank=256)
        assert engine.preferred_parent == 1
        assert engine.rank < INFINITE_RANK
        assert engine.parent_evaluations == evals + 1
        assert engine.candidate_recomputes == recomputes + 1

    def test_parent_eviction_clears_the_fixed_point_skip(self):
        """After evicting the preferred parent, the next reception must
        evaluate (own rank changed with the switch), not skip."""
        engine, _ = self.setup_pair()
        assert engine.preferred_parent == 1
        engine.evict_neighbor(1)
        assert engine.preferred_parent == 2  # switched to the survivor
        evals = engine.parent_evaluations
        skips = engine.evaluations_skipped
        deliver_dio(engine, sender=2, rank=4 * 256)
        assert engine.parent_evaluations == evals + 1
        assert engine.evaluations_skipped == skips
        # Once the post-eviction state is a fixed point, skipping resumes.
        converge(engine)
        skips = engine.evaluations_skipped
        deliver_dio(engine, sender=2, rank=4 * 256)
        assert engine.evaluations_skipped == skips + 1


class TestEscapeHatch:
    def test_memo_off_rescores_every_reception(self):
        engine, _ = make_engine(memo=False)
        deliver_dio(engine, sender=1, rank=256)
        deliver_dio(engine, sender=2, rank=4 * 256)
        converge(engine)
        evals = engine.parent_evaluations
        recomputes = engine.candidate_recomputes
        deliver_dio(engine, sender=1, rank=256)
        assert engine.evaluations_skipped == 0
        assert engine.parent_evaluations == evals + 1
        # Every candidate was re-scored, exactly as the seed engine did.
        assert engine.candidate_recomputes == recomputes + 2

    def test_memo_and_escape_hatch_agree_on_state(self):
        on, estimator_on = make_engine(memo=True)
        off, estimator_off = make_engine(memo=False)
        for engine, estimator in ((on, estimator_on), (off, estimator_off)):
            deliver_dio(engine, sender=1, rank=256)
            deliver_dio(engine, sender=2, rank=3 * 256)
            estimator.record_tx(1, success=False, attempts=5)
            deliver_dio(engine, sender=2, rank=3 * 256)
            deliver_dio(engine, sender=2, rank=3 * 256)
            deliver_dio(engine, sender=1, rank=6 * 256)
            deliver_dio(engine, sender=1, rank=6 * 256)
        assert on.preferred_parent == off.preferred_parent
        assert on.rank == off.rank
        assert {n: (v.rank, v.dodag_id) for n, v in on.neighbors.items()} == {
            n: (v.rank, v.dodag_id) for n, v in off.neighbors.items()
        }
