"""Tests for Rank arithmetic and MRHOF."""

import pytest
from hypothesis import given, strategies as st

from repro.rpl.rank import (
    INFINITE_RANK,
    MIN_HOP_RANK_INCREASE,
    MrhofObjectiveFunction,
    RankCalculator,
)


class TestMrhof:
    def test_link_cost_scales_with_etx(self):
        of = MrhofObjectiveFunction()
        assert of.link_cost(1.0) == MIN_HOP_RANK_INCREASE
        assert of.link_cost(2.0) == 2 * MIN_HOP_RANK_INCREASE

    def test_link_cost_floors_at_etx_one(self):
        of = MrhofObjectiveFunction()
        assert of.link_cost(0.5) == MIN_HOP_RANK_INCREASE

    def test_link_cost_capped_at_max_link_metric(self):
        of = MrhofObjectiveFunction(max_link_metric=4.0)
        assert of.link_cost(10.0) == 4.0 * MIN_HOP_RANK_INCREASE

    def test_rank_via_parent(self):
        of = MrhofObjectiveFunction()
        assert of.rank_via(256, 1.0) == 512
        assert of.rank_via(256, 2.0) == 768

    def test_rank_via_infinite_parent_is_infinite(self):
        of = MrhofObjectiveFunction()
        assert of.rank_via(INFINITE_RANK, 1.0) == INFINITE_RANK

    def test_rank_never_exceeds_infinite(self):
        of = MrhofObjectiveFunction()
        assert of.rank_via(INFINITE_RANK - 10, 4.0) == INFINITE_RANK

    def test_hysteresis_blocks_marginal_switches(self):
        of = MrhofObjectiveFunction(parent_switch_threshold=192)
        assert not of.is_worth_switching(current_rank=1000, candidate_rank=900)
        assert of.is_worth_switching(current_rank=1000, candidate_rank=800 - 1)

    def test_switching_from_infinite_rank_always_worth_it(self):
        of = MrhofObjectiveFunction()
        assert of.is_worth_switching(INFINITE_RANK, 768)
        assert not of.is_worth_switching(INFINITE_RANK, INFINITE_RANK)

    @given(
        st.integers(min_value=MIN_HOP_RANK_INCREASE, max_value=INFINITE_RANK - 1),
        st.floats(min_value=1.0, max_value=16.0),
    )
    def test_rank_via_is_monotone_in_parent_rank(self, parent_rank, etx):
        of = MrhofObjectiveFunction()
        assert of.rank_via(parent_rank, etx) >= parent_rank


class TestRankCalculator:
    def test_hop_distance(self):
        calc = RankCalculator()
        assert calc.hop_distance(256) == 0.0
        assert calc.hop_distance(768) == pytest.approx(2.0)
        assert calc.hop_distance(INFINITE_RANK) == float("inf")

    def test_normalised_rank_eq3(self):
        """Eq. (3): Rank~ = MinHopRankIncrease / (Rank - Rank_min)."""
        calc = RankCalculator()
        assert calc.normalised_rank(512) == pytest.approx(1.0)
        assert calc.normalised_rank(768) == pytest.approx(0.5)
        assert calc.normalised_rank(1280) == pytest.approx(0.25)

    def test_normalised_rank_decreases_with_depth(self):
        """Nodes closer to the root get a larger utility weight."""
        calc = RankCalculator()
        shallow = calc.normalised_rank(512)
        deep = calc.normalised_rank(2048)
        assert shallow > deep

    def test_root_and_unreachable_edge_cases(self):
        calc = RankCalculator()
        assert calc.normalised_rank(256) == 1.0  # root
        assert calc.normalised_rank(INFINITE_RANK) == 0.0

    def test_explicit_rank_min(self):
        calc = RankCalculator()
        assert calc.normalised_rank(1024, rank_min=512) == pytest.approx(0.5)

    @given(st.integers(min_value=257, max_value=INFINITE_RANK - 1))
    def test_normalised_rank_positive_and_bounded(self, rank):
        calc = RankCalculator()
        value = calc.normalised_rank(rank)
        assert 0.0 < value <= MIN_HOP_RANK_INCREASE
