"""Tests for the per-node RPL engine (parent selection, DIO/DAO handling)."""

import random

import pytest

from repro.net.packet import PacketType
from repro.rpl.engine import RplConfig, RplEngine
from repro.rpl.messages import make_dao, make_dio
from repro.rpl.rank import INFINITE_RANK, MIN_HOP_RANK_INCREASE
from repro.sim.events import EventQueue


class Harness:
    """Wires an RplEngine to an in-memory outbox and a static ETX table."""

    def __init__(self, node_id=1, is_root=False, config=None):
        self.queue = EventQueue()
        self.sent = []
        self.etx_table = {}
        self.config = config or RplConfig(dio_interval_min_s=2.0, dao_delay_s=0.5)
        self.engine = RplEngine(
            node_id=node_id,
            config=self.config,
            queue=self.queue,
            rng=random.Random(1),
            send_packet=self.sent.append,
            etx_of=lambda neighbor: self.etx_table.get(neighbor, 2.0),
            is_root=is_root,
        )

    def dio_from(self, sender, rank, dodag_id=0, l_rx=None):
        packet = make_dio(sender=sender, dodag_id=dodag_id, rank=rank, l_rx=l_rx)
        self.engine.process_dio(packet, now=self.queue.now)

    def sent_of_type(self, ptype):
        return [p for p in self.sent if p.ptype is ptype]


class TestParentSelection:
    def test_joins_through_first_usable_dio(self):
        h = Harness()
        h.etx_table[0] = 1.0
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE)
        assert h.engine.preferred_parent == 0
        assert h.engine.rank == 2 * MIN_HOP_RANK_INCREASE
        assert h.engine.is_joined()

    def test_prefers_lower_resulting_rank(self):
        h = Harness()
        h.etx_table[0] = 1.0
        h.etx_table[2] = 1.0
        h.dio_from(2, rank=3 * MIN_HOP_RANK_INCREASE)
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE)
        assert h.engine.preferred_parent == 0

    def test_hysteresis_prevents_marginal_switches(self):
        h = Harness()
        h.etx_table[0] = 1.2
        h.etx_table[2] = 1.0
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE)
        original = h.engine.preferred_parent
        # Candidate is only slightly better than the current parent.
        h.dio_from(2, rank=MIN_HOP_RANK_INCREASE)
        assert h.engine.preferred_parent == original

    def test_switches_when_clearly_better(self):
        h = Harness()
        h.etx_table[0] = 4.0
        h.etx_table[2] = 1.0
        h.dio_from(0, rank=2 * MIN_HOP_RANK_INCREASE)
        h.dio_from(2, rank=MIN_HOP_RANK_INCREASE)
        assert h.engine.preferred_parent == 2
        assert h.engine.parent_switches == 1

    def test_never_selects_a_child_as_parent(self):
        h = Harness()
        h.etx_table[5] = 1.0
        dao = make_dao(sender=5, parent=1, dodag_id=0, rank=768)
        h.engine.process_dao(dao, now=0.0)
        h.dio_from(5, rank=MIN_HOP_RANK_INCREASE)
        assert h.engine.preferred_parent is None

    def test_parent_change_callback_fires(self):
        h = Harness()
        changes = []
        h.engine.on_parent_changed = lambda old, new: changes.append((old, new))
        h.etx_table[0] = 1.0
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE)
        assert changes == [(None, 0)]

    def test_infinite_rank_neighbors_ignored(self):
        h = Harness()
        h.dio_from(0, rank=INFINITE_RANK)
        assert h.engine.preferred_parent is None

    def test_roots_never_select_parents(self):
        h = Harness(node_id=0, is_root=True)
        h.dio_from(3, rank=MIN_HOP_RANK_INCREASE)
        assert h.engine.preferred_parent is None
        assert h.engine.rank == h.config.root_rank


class TestNeighborTable:
    def test_dio_populates_neighbor(self):
        h = Harness()
        h.dio_from(4, rank=512, l_rx=6)
        neighbor = h.engine.neighbors[4]
        assert neighbor.rank == 512
        assert neighbor.l_rx == 6

    def test_parent_l_rx(self):
        h = Harness()
        h.etx_table[0] = 1.0
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE, l_rx=9)
        assert h.engine.parent_l_rx() == 9

    def test_parent_l_rx_without_parent_is_zero(self):
        h = Harness()
        assert h.engine.parent_l_rx() == 0

    def test_l_rx_survives_dios_without_option(self):
        h = Harness()
        h.dio_from(4, rank=512, l_rx=6)
        h.dio_from(4, rank=512)
        assert h.engine.neighbors[4].l_rx == 6


class TestChildren:
    def test_dao_adds_child_once(self):
        h = Harness()
        added = []
        h.engine.on_child_added = added.append
        dao = make_dao(sender=9, parent=1, dodag_id=0, rank=1024)
        h.engine.process_dao(dao, now=0.0)
        h.engine.process_dao(dao, now=1.0)
        assert h.engine.children == {9}
        assert added == [9]

    def test_remove_child(self):
        h = Harness()
        removed = []
        h.engine.on_child_removed = removed.append
        h.engine.process_dao(make_dao(sender=9, parent=1, dodag_id=0, rank=1024), now=0.0)
        h.engine.remove_child(9)
        assert h.engine.children == set()
        assert removed == [9]

    def test_own_dao_ignored(self):
        h = Harness(node_id=1)
        h.engine.process_dao(make_dao(sender=1, parent=1, dodag_id=0, rank=1024), now=0.0)
        assert h.engine.children == set()


class TestControlTraffic:
    def test_root_emits_dios(self):
        h = Harness(node_id=0, is_root=True)
        h.engine.start()
        h.queue.run_until(30.0)
        dios = h.sent_of_type(PacketType.DIO)
        assert dios
        assert all(p.payload["rank"] == h.config.root_rank for p in dios)

    def test_dio_carries_scheduler_fields(self):
        h = Harness(node_id=0, is_root=True)
        h.engine.dio_extra_provider = lambda: {"l_rx": 7, "foo": 1}
        h.engine.start()
        h.queue.run_until(10.0)
        dio = h.sent_of_type(PacketType.DIO)[0]
        assert dio.payload["l_rx"] == 7
        assert dio.payload["foo"] == 1

    def test_joining_triggers_dao(self):
        h = Harness()
        h.etx_table[0] = 1.0
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE)
        h.queue.run_until(2.0)
        daos = h.sent_of_type(PacketType.DAO)
        assert daos
        assert daos[0].link_destination == 0

    def test_periodic_dao_refresh(self):
        h = Harness(config=RplConfig(dio_interval_min_s=2.0, dao_delay_s=0.5, dao_period_s=5.0))
        h.etx_table[0] = 1.0
        h.dio_from(0, rank=MIN_HOP_RANK_INCREASE)
        h.queue.run_until(12.0)
        assert len(h.sent_of_type(PacketType.DAO)) >= 2

    def test_non_root_does_not_advertise_before_joining(self):
        h = Harness()
        h.engine.start()
        h.queue.run_until(10.0)
        assert h.sent_of_type(PacketType.DIO) == []


class TestWarmStart:
    def test_warm_start_presets_state_and_sends_dao(self):
        h = Harness()
        changes = []
        h.engine.on_parent_changed = lambda old, new: changes.append((old, new))
        h.engine.warm_start(parent=0, rank=768, dodag_id=0)
        assert h.engine.preferred_parent == 0
        assert h.engine.rank == 768
        assert changes == [(None, 0)]
        h.queue.run_until(2.0)
        assert h.sent_of_type(PacketType.DAO)

    def test_warm_start_root(self):
        h = Harness(node_id=0, is_root=True)
        h.engine.warm_start(parent=None, rank=256, dodag_id=0)
        assert h.engine.trickle.running
        assert h.engine.preferred_parent is None

    def test_normalised_rank_and_hops(self):
        h = Harness()
        h.engine.warm_start(parent=0, rank=768, dodag_id=0)
        assert h.engine.normalised_rank() == pytest.approx(0.5)
        assert h.engine.hop_distance() == pytest.approx(2.0)
