"""Tests for RPL message construction."""

from repro.net.packet import BROADCAST_ADDRESS, PacketType
from repro.rpl.messages import make_dao, make_dio


class TestMakeDio:
    def test_basic_fields(self):
        dio = make_dio(sender=3, dodag_id=0, rank=768, version=2, now=1.0)
        assert dio.ptype is PacketType.DIO
        assert dio.link_source == 3
        assert dio.is_broadcast
        assert dio.payload["dodag_id"] == 0
        assert dio.payload["rank"] == 768
        assert dio.payload["version"] == 2
        assert dio.created_at == 1.0

    def test_l_rx_option_is_optional(self):
        plain = make_dio(sender=1, dodag_id=0, rank=512)
        assert "l_rx" not in plain.payload
        with_option = make_dio(sender=1, dodag_id=0, rank=512, l_rx=5)
        assert with_option.payload["l_rx"] == 5

    def test_extra_fields_merged(self):
        dio = make_dio(sender=1, dodag_id=0, rank=512, extra={"custom": 7})
        assert dio.payload["custom"] == 7

    def test_broadcast_addressing(self):
        dio = make_dio(sender=1, dodag_id=0, rank=512)
        assert dio.destination == BROADCAST_ADDRESS
        assert dio.link_destination == BROADCAST_ADDRESS


class TestMakeDao:
    def test_basic_fields(self):
        dao = make_dao(sender=5, parent=2, dodag_id=0, rank=768, now=2.5)
        assert dao.ptype is PacketType.DAO
        assert dao.source == 5
        assert dao.destination == 2
        assert dao.link_destination == 2
        assert dao.payload["dodag_id"] == 0
        assert dao.payload["rank"] == 768
        assert not dao.is_broadcast

    def test_dao_is_control(self):
        dao = make_dao(sender=5, parent=2, dodag_id=0, rank=768)
        assert dao.is_control
