"""Tests for TSCH cells."""

import pytest

from repro.mac.cell import Cell, CellOption, CellPurpose


class TestCellOptions:
    def test_option_helpers(self):
        cell = Cell(slot_offset=1, channel_offset=2, options=CellOption.TX | CellOption.SHARED)
        assert cell.is_tx
        assert cell.is_shared
        assert not cell.is_rx
        assert not cell.is_broadcast

    def test_broadcast_cell(self):
        cell = Cell(
            slot_offset=0,
            channel_offset=0,
            options=CellOption.TX | CellOption.RX | CellOption.BROADCAST,
        )
        assert cell.is_broadcast
        assert cell.is_tx and cell.is_rx

    def test_cell_requires_an_option(self):
        with pytest.raises(ValueError):
            Cell(slot_offset=0, channel_offset=0, options=CellOption.NONE)

    def test_negative_offsets_rejected(self):
        with pytest.raises(ValueError):
            Cell(slot_offset=-1, channel_offset=0, options=CellOption.TX)
        with pytest.raises(ValueError):
            Cell(slot_offset=0, channel_offset=-1, options=CellOption.TX)


class TestCellPurpose:
    def test_priority_order_matches_section_iv(self):
        """Broadcast > Unicast-6P > Unicast-Data > Shared > Sleep."""
        ordered = sorted(CellPurpose, key=lambda p: p.priority)
        assert ordered == [
            CellPurpose.BROADCAST,
            CellPurpose.UNICAST_6P,
            CellPurpose.UNICAST_DATA,
            CellPurpose.SHARED,
            CellPurpose.SLEEP,
        ]

    def test_priorities_are_distinct(self):
        assert len({p.priority for p in CellPurpose}) == len(CellPurpose)


class TestCellQueries:
    def test_matches(self):
        cell = Cell(slot_offset=3, channel_offset=5, options=CellOption.TX)
        assert cell.matches(3)
        assert cell.matches(3, 5)
        assert not cell.matches(4)
        assert not cell.matches(3, 6)

    def test_coordinate(self):
        cell = Cell(slot_offset=3, channel_offset=5, options=CellOption.RX)
        assert cell.coordinate() == (3, 5)

    def test_repr_mentions_options_and_neighbor(self):
        cell = Cell(slot_offset=1, channel_offset=2, options=CellOption.TX, neighbor=9)
        text = repr(cell)
        assert "TX" in text and "9" in text
