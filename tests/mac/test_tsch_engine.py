"""Tests for the per-node TSCH engine (cell selection, ACKs, retransmissions)."""

import random

import pytest

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.mac.tsch import TschConfig, TschEngine
from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType, make_data_packet
from repro.phy.medium import TransmissionResult


def make_engine(node_id=0, **config_kwargs) -> TschEngine:
    return TschEngine(node_id, TschConfig(**config_kwargs), random.Random(1))


def data_packet(destination=1, source=0):
    packet = make_data_packet(source, destination, created_at=0.0)
    packet.link_destination = destination
    return packet


def broadcast_packet(source=0, ptype=PacketType.EB):
    return Packet(
        ptype=ptype,
        source=source,
        destination=BROADCAST_ADDRESS,
        link_source=source,
        link_destination=BROADCAST_ADDRESS,
    )


def make_result(engine, plan, acked=True, collided=False):
    intent = engine.build_intent(plan)
    return TransmissionResult(intent=intent, delivered=acked, acked=acked, collided=collided)


class TestSlotframeManagement:
    def test_add_and_get_slotframe(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 16)
        assert engine.get_slotframe(0) is sf
        assert engine.add_slotframe(0, 16) is sf

    def test_conflicting_length_rejected(self):
        engine = make_engine()
        engine.add_slotframe(0, 16)
        with pytest.raises(ValueError):
            engine.add_slotframe(0, 32)

    def test_remove_and_clear(self):
        engine = make_engine()
        engine.add_slotframe(0, 16)
        engine.add_slotframe(1, 8)
        engine.remove_slotframe(0)
        assert engine.get_slotframe(0) is None
        engine.clear_schedule()
        assert engine.get_slotframe(1) is None


class TestEnqueue:
    def test_enqueue_sets_time_and_tracks_attempts(self):
        engine = make_engine()
        packet = data_packet()
        assert engine.enqueue(packet, now=1.25)
        assert packet.enqueued_at == 1.25
        assert engine.queue_length() == 1
        assert engine.data_queue_length() == 1

    def test_enqueue_respects_capacity(self):
        engine = make_engine(queue_capacity=2)
        assert engine.enqueue(data_packet())
        assert engine.enqueue(data_packet())
        assert not engine.enqueue(data_packet())


class TestPlanSlot:
    def test_sleep_without_cells(self):
        engine = make_engine()
        assert engine.plan_slot(0).action == "sleep"

    def test_sleep_when_no_cell_at_offset(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(3, 0, CellOption.TX, neighbor=1))
        assert engine.plan_slot(4).action == "sleep"

    def test_tx_preferred_when_packet_pending(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(3, 2, CellOption.TX, neighbor=1))
        engine.enqueue(data_packet(destination=1))
        plan = engine.plan_slot(3)
        assert plan.is_tx
        assert plan.packet.link_destination == 1
        assert plan.channel == engine.hopping.channel_for(3, 2)

    def test_tx_cell_without_matching_packet_falls_back_to_rx(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(3, 0, CellOption.TX, neighbor=1))
        sf.add_cell(Cell(3, 1, CellOption.RX, neighbor=2))
        engine.enqueue(data_packet(destination=9))
        plan = engine.plan_slot(3)
        assert plan.is_rx
        assert plan.cell.neighbor == 2

    def test_rx_cell_listens_when_idle(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(5, 1, CellOption.RX | CellOption.ALWAYS_ON, neighbor=None))
        plan = engine.plan_slot(5)
        assert plan.is_rx
        assert plan.channel == engine.hopping.channel_for(5, 1)

    def test_broadcast_cell_sends_broadcast_first(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(
            Cell(0, 0, CellOption.TX | CellOption.RX | CellOption.BROADCAST, neighbor=None)
        )
        engine.enqueue(broadcast_packet())
        plan = engine.plan_slot(0)
        assert plan.is_tx
        assert plan.packet.is_broadcast

    def test_plain_broadcast_cell_does_not_carry_unicast(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(
            Cell(0, 0, CellOption.TX | CellOption.RX | CellOption.BROADCAST, neighbor=None)
        )
        engine.enqueue(data_packet(destination=1))
        plan = engine.plan_slot(0)
        assert plan.is_rx  # listens instead of sending the unicast frame

    def test_shared_broadcast_cell_carries_unicast_fallback(self):
        """Orchestra's common cell accepts unicast when no broadcast is pending."""
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(
            Cell(
                0,
                0,
                CellOption.TX | CellOption.RX | CellOption.SHARED | CellOption.BROADCAST,
                neighbor=None,
            )
        )
        engine.enqueue(data_packet(destination=1))
        plan = engine.plan_slot(0)
        assert plan.is_tx
        assert not plan.packet.is_broadcast

    def test_purpose_priority_breaks_ties(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(2, 1, CellOption.TX, neighbor=1, purpose=CellPurpose.UNICAST_DATA))
        sf.add_cell(Cell(2, 2, CellOption.TX, neighbor=1, purpose=CellPurpose.UNICAST_6P))
        engine.enqueue(data_packet(destination=1))
        plan = engine.plan_slot(2)
        assert plan.cell.purpose is CellPurpose.UNICAST_6P

    def test_lower_slotframe_handle_wins(self):
        engine = make_engine()
        low = engine.add_slotframe(0, 10)
        high = engine.add_slotframe(1, 10)
        high.add_cell(Cell(2, 2, CellOption.TX, neighbor=1))
        low.add_cell(Cell(2, 1, CellOption.TX, neighbor=1))
        engine.enqueue(data_packet(destination=1))
        assert engine.plan_slot(2).cell.slotframe_handle == 0

    def test_shared_cell_respects_backoff(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(1, 0, CellOption.TX | CellOption.RX | CellOption.SHARED, neighbor=1))
        engine.enqueue(data_packet(destination=1))
        engine.csma.on_transmission_failure(1)
        engine.csma._state(1).window = 2
        plan = engine.plan_slot(1)
        assert plan.is_rx  # backing off, so it listens instead
        assert engine.csma.window(1) == 1

    def test_quiet_shared_neighbor_suppresses_data_but_not_control(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(1, 0, CellOption.TX | CellOption.RX | CellOption.SHARED, neighbor=1))
        engine.quiet_shared_neighbors.add(1)
        engine.enqueue(data_packet(destination=1))
        assert engine.plan_slot(1).is_rx
        sixp = Packet(
            ptype=PacketType.SIXP, source=0, destination=1, link_source=0, link_destination=1
        )
        engine.enqueue(sixp)
        plan = engine.plan_slot(1)
        assert plan.is_tx
        assert plan.packet.ptype is PacketType.SIXP


class TestTransmissionOutcome:
    def _tx_setup(self, max_retries=2):
        engine = make_engine(max_retries=max_retries)
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(1, 0, CellOption.TX, neighbor=1))
        packet = data_packet(destination=1)
        engine.enqueue(packet)
        return engine, packet

    def test_ack_removes_packet_and_updates_stats(self):
        engine, packet = self._tx_setup()
        plan = engine.plan_slot(1)
        engine.on_transmission_result(plan, make_result(engine, plan, acked=True), asn=1, now=0.015)
        assert engine.queue_length() == 0
        assert engine.stats.unicast_acked == 1
        assert engine.etx.etx(1) < 2.0

    def test_failed_attempt_keeps_packet_for_retry(self):
        engine, packet = self._tx_setup(max_retries=2)
        plan = engine.plan_slot(1)
        engine.on_transmission_result(plan, make_result(engine, plan, acked=False), asn=1, now=0.0)
        assert engine.queue_length() == 1
        assert packet.retransmissions == 1
        assert engine.stats.mac_drops == 0

    def test_packet_dropped_after_retry_budget(self):
        engine, packet = self._tx_setup(max_retries=2)
        dropped = []
        engine.tx_done_callback = lambda p, ok, asn: dropped.append((p, ok))
        for asn in (1, 11, 21):  # 1 initial attempt + 2 retries
            plan = engine.plan_slot(asn)
            engine.on_transmission_result(plan, make_result(engine, plan, acked=False), asn, 0.0)
        assert engine.queue_length() == 0
        assert engine.stats.mac_drops == 1
        assert dropped == [(packet, False)]
        assert engine.etx.etx(1) > 2.0

    def test_tx_done_callback_on_success(self):
        engine, packet = self._tx_setup()
        done = []
        engine.tx_done_callback = lambda p, ok, asn: done.append(ok)
        plan = engine.plan_slot(1)
        engine.on_transmission_result(plan, make_result(engine, plan, acked=True), 1, 0.0)
        assert done == [True]

    def test_collision_counted(self):
        engine, _ = self._tx_setup()
        plan = engine.plan_slot(1)
        engine.on_transmission_result(
            plan, make_result(engine, plan, acked=False, collided=True), 1, 0.0
        )
        assert engine.stats.collisions_observed == 1

    def test_broadcast_is_fire_and_forget(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(
            Cell(0, 0, CellOption.TX | CellOption.BROADCAST, neighbor=None)
        )
        engine.enqueue(broadcast_packet())
        plan = engine.plan_slot(0)
        result = TransmissionResult(intent=engine.build_intent(plan))
        engine.on_transmission_result(plan, result, 0, 0.0)
        assert engine.queue_length() == 0
        assert engine.stats.broadcast_sent == 1

    def test_shared_cell_failure_triggers_backoff(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 10)
        sf.add_cell(Cell(1, 0, CellOption.TX | CellOption.SHARED, neighbor=1))
        engine.enqueue(data_packet(destination=1))
        plan = engine.plan_slot(1)
        engine.on_transmission_result(plan, make_result(engine, plan, acked=False), 1, 0.0)
        # The next failure may draw a non-zero window; exponent must have grown.
        assert engine.csma._state(1).exponent > engine.config.min_backoff_exponent


class TestReceptionAndAccounting:
    def test_rx_callback_invoked(self):
        engine = make_engine(node_id=1)
        received = []
        engine.rx_callback = lambda packet, asn: received.append(packet)
        packet = data_packet(destination=1, source=0)
        engine.on_frame_received(packet, asn=5, now=0.075)
        assert received == [packet]
        assert engine.stats.frames_received == 1
        assert engine.etx.stats(0).rx_frames == 1

    def test_build_intent_requires_tx_plan(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.build_intent(engine.plan_slot(0))

    def test_account_slot(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 4)
        sf.add_cell(Cell(0, 0, CellOption.RX, neighbor=None))
        rx_plan = engine.plan_slot(0)
        engine.account_slot(rx_plan, frame_received=False)
        sleep_plan = engine.plan_slot(1)
        engine.account_slot(sleep_plan)
        assert engine.duty_cycle.idle_listen_slots == 1
        assert engine.duty_cycle.sleep_slots == 1

    def test_count_cells_and_all_cells(self):
        engine = make_engine()
        sf = engine.add_slotframe(0, 8)
        sf.add_cell(Cell(0, 0, CellOption.TX, neighbor=1))
        sf.add_cell(Cell(1, 0, CellOption.RX, neighbor=2))
        assert engine.count_cells(options=CellOption.TX) == 1
        assert engine.count_cells(neighbor=2) == 1
        assert len(engine.all_cells()) == 2


class TestScheduleProfile:
    """The kernel-facing derived schedule facts (see ScheduleProfile)."""

    def _engine_with_frames(self):
        engine = make_engine()
        first = engine.add_slotframe(0, 4)
        first.add_cell(Cell(slot_offset=1, channel_offset=0, options=CellOption.RX))
        second = engine.add_slotframe(1, 6)
        second.add_cell(Cell(slot_offset=1, channel_offset=0, options=CellOption.RX))
        second.add_cell(Cell(slot_offset=5, channel_offset=0, options=CellOption.RX))
        return engine

    def test_count_idle_listen_multi_frame_matches_brute_force(self):
        """The CRT inclusion-exclusion count equals slot-by-slot counting."""
        engine = self._engine_with_frames()
        profile = engine.schedule_profile()
        assert profile._rx_incexc is not None

        def brute(start, end):
            count = 0
            for asn in range(start, end):
                if asn % 4 == 1 or asn % 6 in (1, 5):
                    count += 1
            return count

        for start, end in [(0, 0), (0, 1), (0, 24), (3, 77), (120, 121), (7, 2000)]:
            assert profile.count_idle_listen(start, end) == brute(start, end)

    def test_count_idle_listen_falls_back_to_walk_when_many_progressions(self):
        engine = make_engine()
        first = engine.add_slotframe(0, 11)
        second = engine.add_slotframe(1, 13)
        for offset in range(5):
            first.add_cell(Cell(slot_offset=offset, channel_offset=0, options=CellOption.RX))
            second.add_cell(Cell(slot_offset=offset, channel_offset=0, options=CellOption.RX))
        profile = engine.schedule_profile()
        assert profile._rx_incexc is None  # 10 progressions > the 2^k cap

        def brute(start, end):
            return sum(
                1 for asn in range(start, end) if asn % 11 < 5 or asn % 13 < 5
            )

        assert profile.count_idle_listen(3, 500) == brute(3, 500)

    def test_matches_tx_at_mirrors_packet_for_cell(self):
        engine = make_engine()
        frame = engine.add_slotframe(0, 8)
        frame.add_cell(
            Cell(
                slot_offset=2,
                channel_offset=0,
                options=CellOption.TX | CellOption.SHARED | CellOption.BROADCAST,
            )
        )
        frame.add_cell(
            Cell(slot_offset=5, channel_offset=0, options=CellOption.TX, neighbor=7)
        )
        profile = engine.schedule_profile()
        # Broadcast frames match the shared broadcast cell only.
        assert profile.matches_tx_at(2, set(), True, False)
        assert not profile.matches_tx_at(5, set(), True, False)
        # The shared neighbour-less broadcast cell also carries unicast.
        assert profile.matches_tx_at(2, {9}, False, True)
        # Dedicated cells match only their neighbour's packets.
        assert profile.matches_tx_at(5, {7}, False, True)
        assert not profile.matches_tx_at(5, {9}, False, True)
        # Idle residues match nothing.
        assert not profile.matches_tx_at(3, {7, 9}, True, True)

    def test_queue_signature_memoised_by_queue_version(self):
        engine = make_engine()
        assert engine.queue_signature() == (False, False, set())
        engine.enqueue(data_packet(destination=4))
        has_broadcast, has_unicast, destinations = engine.queue_signature()
        assert (has_broadcast, has_unicast, destinations) == (False, True, {4})
        engine.enqueue(broadcast_packet())
        has_broadcast, has_unicast, destinations = engine.queue_signature()
        assert has_broadcast and has_unicast and destinations == {4}

    def test_settle_duty_cycle_credits_idle_listen_and_sleep(self):
        engine = self._engine_with_frames()
        engine.settle_duty_cycle(24)
        meter = engine.duty_cycle
        # Residues 1 mod 4 (6 of 24) plus 1,5 mod 6 (8 of 24) minus the
        # overlaps at 1 mod 12 and 5 mod 12 (2 each) = 10 listen slots.
        assert meter.total_slots == 24
        assert meter.idle_listen_slots == 10
        assert meter.sleep_slots == 14
        assert engine.duty_accounted_asn == 24
        # Settling again for the same ASN is a no-op.
        engine.settle_duty_cycle(24)
        assert meter.total_slots == 24
