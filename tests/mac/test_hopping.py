"""Tests for the channel-hopping function."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.hopping import (
    DEFAULT_HOPPING_SEQUENCE,
    FULL_HOPPING_SEQUENCE,
    ChannelHopping,
)


class TestHoppingSequences:
    def test_default_sequence_matches_table_ii(self):
        assert DEFAULT_HOPPING_SEQUENCE == (17, 23, 15, 25, 19, 11, 13, 21)

    def test_full_sequence_has_16_unique_channels(self):
        assert len(FULL_HOPPING_SEQUENCE) == 16
        assert len(set(FULL_HOPPING_SEQUENCE)) == 16
        assert all(11 <= channel <= 26 for channel in FULL_HOPPING_SEQUENCE)


class TestChannelHopping:
    def test_channel_formula(self):
        hopping = ChannelHopping((11, 12, 13, 14))
        assert hopping.channel_for(asn=0, channel_offset=0) == 11
        assert hopping.channel_for(asn=1, channel_offset=0) == 12
        assert hopping.channel_for(asn=0, channel_offset=3) == 14
        assert hopping.channel_for(asn=5, channel_offset=2) == 14  # (5+2) % 4 == 3

    def test_same_offset_visits_every_channel(self):
        hopping = ChannelHopping()
        visited = {hopping.channel_for(asn, 0) for asn in range(len(hopping.sequence))}
        assert visited == set(DEFAULT_HOPPING_SEQUENCE)

    def test_different_offsets_same_asn_use_different_channels(self):
        """Two cells in the same timeslot with different channel offsets never
        share a physical channel -- the property GT-TSCH's channel allocation
        relies on."""
        hopping = ChannelHopping()
        for asn in range(32):
            channels = [hopping.channel_for(asn, off) for off in hopping.offsets()]
            assert len(set(channels)) == len(channels)

    def test_rejects_empty_or_duplicate_sequences(self):
        with pytest.raises(ValueError):
            ChannelHopping(())
        with pytest.raises(ValueError):
            ChannelHopping((11, 11, 12))

    def test_rejects_negative_arguments(self):
        hopping = ChannelHopping()
        with pytest.raises(ValueError):
            hopping.channel_for(-1, 0)
        with pytest.raises(ValueError):
            hopping.channel_for(0, -1)

    def test_num_channels(self):
        assert ChannelHopping().num_channels == 8

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=7))
    def test_channel_always_from_sequence(self, asn, offset):
        hopping = ChannelHopping()
        assert hopping.channel_for(asn, offset) in DEFAULT_HOPPING_SEQUENCE

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=7))
    def test_periodicity(self, asn, offset):
        hopping = ChannelHopping()
        period = len(hopping.sequence)
        assert hopping.channel_for(asn, offset) == hopping.channel_for(asn + period, offset)
