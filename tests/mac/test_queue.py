"""Tests for the bounded MAC transmission queue."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.queue import TxQueue
from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType, make_data_packet


def data_packet(destination=1, source=0):
    packet = make_data_packet(source, destination, created_at=0.0)
    packet.link_destination = destination
    return packet


def control_packet(destination=BROADCAST_ADDRESS, ptype=PacketType.DIO):
    return Packet(
        ptype=ptype,
        source=0,
        destination=destination,
        link_source=0,
        link_destination=destination,
    )


class TestCapacity:
    def test_accepts_until_full(self):
        queue = TxQueue(capacity=3)
        assert all(queue.add(data_packet()) for _ in range(3))
        assert queue.is_full
        assert not queue.add(data_packet())
        assert queue.drops == 1
        assert queue.data_drops == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TxQueue(capacity=0)

    def test_free_space_and_max_occupancy(self):
        queue = TxQueue(capacity=4)
        queue.add(data_packet())
        queue.add(data_packet())
        assert queue.free_space == 2
        assert queue.max_occupancy == 2

    def test_control_packet_evicts_youngest_data_when_full(self):
        """Schedule/topology maintenance must survive data overload."""
        queue = TxQueue(capacity=2)
        first = data_packet(destination=1)
        second = data_packet(destination=2)
        queue.add(first)
        queue.add(second)
        assert queue.add(control_packet())
        assert queue.data_drops == 1
        remaining = list(queue)
        assert second not in remaining
        assert first in remaining

    def test_control_dropped_when_queue_full_of_control(self):
        queue = TxQueue(capacity=2)
        queue.add(control_packet())
        queue.add(control_packet())
        assert not queue.add(control_packet())
        assert queue.data_drops == 0
        assert queue.drops == 1


class TestOrderingAndLookup:
    def test_fifo_for_data(self):
        queue = TxQueue(capacity=5)
        first = data_packet(destination=1)
        second = data_packet(destination=1)
        queue.add(first)
        queue.add(second)
        assert queue.peek_for(1) is first

    def test_control_prioritized_before_data(self):
        queue = TxQueue(capacity=5)
        data = data_packet(destination=1)
        queue.add(data)
        dao = control_packet(destination=1, ptype=PacketType.DAO)
        queue.add(dao)
        assert queue.peek_for(1) is dao

    def test_peek_for_specific_neighbor(self):
        queue = TxQueue(capacity=5)
        to_one = data_packet(destination=1)
        to_two = data_packet(destination=2)
        queue.add(to_one)
        queue.add(to_two)
        assert queue.peek_for(2) is to_two
        assert queue.peek_for(3) is None

    def test_peek_any_unicast_skips_broadcast(self):
        queue = TxQueue(capacity=5)
        dio = control_packet()
        data = data_packet(destination=4)
        queue.add(dio)
        queue.add(data)
        assert queue.peek_for(None) is data

    def test_peek_broadcast(self):
        queue = TxQueue(capacity=5)
        data = data_packet(destination=4)
        dio = control_packet()
        queue.add(data)
        queue.add(dio)
        assert queue.peek_for(None, broadcast=True) is dio
        assert queue.has_packet_for(None, broadcast=True)

    def test_pending_counters(self):
        queue = TxQueue(capacity=10)
        queue.add(data_packet(destination=1))
        queue.add(data_packet(destination=1))
        queue.add(data_packet(destination=2))
        queue.add(control_packet())
        assert queue.pending_for(1) == 2
        assert queue.pending_for(None) == 3
        assert queue.pending_broadcast() == 1

    def test_data_packets_filter(self):
        queue = TxQueue(capacity=10)
        queue.add(control_packet())
        queue.add(data_packet())
        assert len(queue.data_packets()) == 1


class TestMutation:
    def test_remove(self):
        queue = TxQueue(capacity=5)
        packet = data_packet()
        queue.add(packet)
        assert queue.remove(packet)
        assert not queue.remove(packet)
        assert len(queue) == 0

    def test_retarget_rewrites_link_destination(self):
        queue = TxQueue(capacity=5)
        packets = [data_packet(destination=1) for _ in range(3)]
        for packet in packets:
            queue.add(packet)
        queue.add(data_packet(destination=9))
        assert queue.retarget(1, 2) == 3
        assert queue.pending_for(2) == 3
        assert queue.pending_for(9) == 1

    def test_clear(self):
        queue = TxQueue(capacity=5)
        queue.add(data_packet())
        queue.clear()
        assert len(queue) == 0

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=40))
    def test_occupancy_never_exceeds_capacity(self, capacity, additions):
        queue = TxQueue(capacity=capacity)
        for index in range(additions):
            queue.add(data_packet(destination=index % 3))
        assert len(queue) <= capacity
        assert queue.drops == max(0, additions - capacity)


class TestPtypeCounts:
    def test_contains_ptype_tracks_add_remove_and_eviction(self):
        queue = TxQueue(capacity=2)
        assert not queue.contains_ptype(PacketType.EB)
        data = make_data_packet(1, 2, created_at=0.0)
        data.link_destination = 2
        queue.add(data)
        second = make_data_packet(1, 2, created_at=0.0)
        second.link_destination = 2
        queue.add(second)
        assert queue.contains_ptype(PacketType.DATA)
        # A control frame arriving at a full queue evicts the youngest data
        # packet; both counts must follow.
        eb = Packet(
            ptype=PacketType.EB,
            source=1,
            destination=BROADCAST_ADDRESS,
            link_source=1,
            link_destination=BROADCAST_ADDRESS,
        )
        assert queue.add(eb)
        assert queue.contains_ptype(PacketType.EB)
        assert queue.contains_ptype(PacketType.DATA)
        queue.remove(data)
        assert not queue.contains_ptype(PacketType.DATA)
        queue.clear()
        assert not queue.contains_ptype(PacketType.EB)
