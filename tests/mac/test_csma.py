"""Tests for the shared-cell CSMA/CA back-off."""

import random

import pytest

from repro.mac.csma import CsmaBackoff


class TestCsmaBackoff:
    def test_initially_allowed_to_transmit(self):
        backoff = CsmaBackoff(random.Random(1))
        assert backoff.can_transmit(5)
        assert backoff.window(5) == 0

    def test_failure_draws_a_window(self):
        backoff = CsmaBackoff(random.Random(1), min_be=2, max_be=5)
        window = backoff.on_transmission_failure(5)
        assert 0 <= window < 2 ** 3  # exponent grew from 2 to 3
        assert backoff.window(5) == window

    def test_window_counts_down_on_skipped_cells(self):
        backoff = CsmaBackoff(random.Random(3), min_be=3, max_be=5)
        window = backoff.on_transmission_failure(1)
        for _ in range(window):
            assert not backoff.can_transmit(1) or backoff.window(1) == 0
            backoff.on_shared_cell_skipped(1)
        assert backoff.can_transmit(1)

    def test_success_resets_exponent_and_window(self):
        backoff = CsmaBackoff(random.Random(1))
        backoff.on_transmission_failure(1)
        backoff.on_transmission_failure(1)
        backoff.on_transmission_success(1)
        assert backoff.can_transmit(1)
        assert backoff.window(1) == 0

    def test_exponent_capped_at_max_be(self):
        rng = random.Random(2)
        backoff = CsmaBackoff(rng, min_be=1, max_be=3)
        for _ in range(20):
            window = backoff.on_transmission_failure(1)
            assert window < 2 ** 3

    def test_windows_grow_statistically_with_failures(self):
        rng = random.Random(4)
        backoff = CsmaBackoff(rng, min_be=1, max_be=7)
        first_windows = [CsmaBackoff(random.Random(i), 1, 7).on_transmission_failure(1) for i in range(50)]
        # After many consecutive failures the exponent saturates at max_be.
        for _ in range(10):
            backoff.on_transmission_failure(1)
        late_windows = [backoff.on_transmission_failure(1) for _ in range(50)]
        assert sum(late_windows) / len(late_windows) > sum(first_windows) / len(first_windows)

    def test_per_neighbor_isolation(self):
        backoff = CsmaBackoff(random.Random(5), min_be=3)
        backoff.on_transmission_failure(1)
        assert backoff.can_transmit(2)

    def test_none_neighbor_supported(self):
        backoff = CsmaBackoff(random.Random(1))
        backoff.on_transmission_failure(None)
        assert backoff.window(None) >= 0

    def test_reset_single_and_all(self):
        backoff = CsmaBackoff(random.Random(6), min_be=4)
        backoff.on_transmission_failure(1)
        backoff.on_transmission_failure(2)
        backoff.reset(1)
        assert backoff.can_transmit(1)
        backoff.reset()
        assert backoff.can_transmit(2)

    def test_invalid_exponents_rejected(self):
        with pytest.raises(ValueError):
            CsmaBackoff(random.Random(1), min_be=3, max_be=2)
        with pytest.raises(ValueError):
            CsmaBackoff(random.Random(1), min_be=-1)


class TestBulkSettlement:
    """settle_skips must equal the same number of per-cell pass-bys."""

    @pytest.mark.parametrize("count", [0, 1, 3, 7, 100])
    def test_settle_equals_repeated_skips(self, count):
        bulk = CsmaBackoff(random.Random(9), min_be=2, max_be=5)
        loop = CsmaBackoff(random.Random(9), min_be=2, max_be=5)
        bulk.on_transmission_failure(4)
        loop.on_transmission_failure(4)
        bulk.settle_skips(4, count)
        for _ in range(count):
            loop.on_shared_cell_skipped(4)
        assert bulk.window(4) == loop.window(4)

    def test_settle_clamps_at_zero(self):
        backoff = CsmaBackoff(random.Random(2), min_be=1, max_be=3)
        backoff.on_transmission_failure(1)
        backoff.settle_skips(1, 10_000)
        assert backoff.window(1) == 0
        assert backoff.can_transmit(1)

    def test_settle_on_expired_window_is_a_no_op(self):
        backoff = CsmaBackoff(random.Random(2))
        backoff.settle_skips(1, 5)
        assert backoff.window(1) == 0

    def test_settle_is_per_destination(self):
        backoff = CsmaBackoff(random.Random(3), min_be=4)
        backoff.on_transmission_failure(1)
        backoff.on_transmission_failure(2)
        before = backoff.window(2)
        backoff.settle_skips(1, 100)
        assert backoff.window(1) == 0
        assert backoff.window(2) == before
