"""Tests for Energest-style radio duty-cycle accounting."""

import pytest

from repro.mac.duty_cycle import (
    IDLE_LISTEN_FRACTION,
    RX_SLOT_FRACTION,
    TX_SLOT_FRACTION,
    DutyCycleMeter,
)


class TestDutyCycleMeter:
    def test_starts_at_zero(self):
        meter = DutyCycleMeter()
        assert meter.duty_cycle == 0.0
        assert meter.duty_cycle_percent == 0.0

    def test_all_sleep_is_zero(self):
        meter = DutyCycleMeter()
        for _ in range(100):
            meter.record_sleep()
        assert meter.duty_cycle == 0.0
        assert meter.sleep_slots == 100

    def test_tx_slot_weight(self):
        meter = DutyCycleMeter()
        meter.record_tx()
        meter.record_sleep()
        assert meter.duty_cycle == pytest.approx(TX_SLOT_FRACTION / 2)

    def test_rx_with_frame_weight(self):
        meter = DutyCycleMeter()
        meter.record_rx(frame_received=True)
        assert meter.duty_cycle == pytest.approx(RX_SLOT_FRACTION)
        assert meter.idle_listen_slots == 0

    def test_idle_listen_weight(self):
        meter = DutyCycleMeter()
        meter.record_rx(frame_received=False)
        assert meter.duty_cycle == pytest.approx(IDLE_LISTEN_FRACTION)
        assert meter.idle_listen_slots == 1

    def test_idle_listen_cheaper_than_reception(self):
        """The Energest model: an idle Rx slot costs less than a busy one."""
        assert IDLE_LISTEN_FRACTION < RX_SLOT_FRACTION
        assert IDLE_LISTEN_FRACTION < TX_SLOT_FRACTION

    def test_mixed_accounting(self):
        meter = DutyCycleMeter()
        meter.record_tx()
        meter.record_rx(True)
        meter.record_rx(False)
        meter.record_sleep()
        expected = (TX_SLOT_FRACTION + RX_SLOT_FRACTION + IDLE_LISTEN_FRACTION) / 4
        assert meter.duty_cycle == pytest.approx(expected)
        assert meter.radio_on_slots == 3
        assert meter.total_slots == 4

    def test_percent(self):
        meter = DutyCycleMeter()
        meter.record_rx(True)
        assert meter.duty_cycle_percent == pytest.approx(100.0 * RX_SLOT_FRACTION)

    def test_snapshot_keys(self):
        meter = DutyCycleMeter()
        meter.record_tx()
        snapshot = meter.snapshot()
        assert snapshot["tx_slots"] == 1
        assert snapshot["duty_cycle"] == meter.duty_cycle
        assert "radio_on_slot_equivalents" in snapshot

    def test_reset(self):
        meter = DutyCycleMeter()
        meter.record_tx()
        meter.record_rx(False)
        meter.reset()
        assert meter.total_slots == 0
        assert meter.duty_cycle == 0.0

    def test_duty_cycle_bounded_by_one(self):
        meter = DutyCycleMeter()
        for _ in range(50):
            meter.record_rx(True)
        assert meter.duty_cycle <= 1.0
