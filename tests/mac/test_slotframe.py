"""Tests for slotframes and CDU-matrix rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.cell import Cell, CellOption, CellPurpose
from repro.mac.slotframe import Slotframe, render_cdu_matrix


def tx_cell(slot, channel=0, neighbor=None):
    return Cell(slot_offset=slot, channel_offset=channel, options=CellOption.TX, neighbor=neighbor)


class TestSlotframeBasics:
    def test_requires_positive_length(self):
        with pytest.raises(ValueError):
            Slotframe(0, 0)

    def test_add_and_len(self):
        sf = Slotframe(0, 10)
        sf.add_cell(tx_cell(1))
        sf.add_cell(tx_cell(2))
        assert len(sf) == 2

    def test_add_rejects_out_of_range_offset(self):
        sf = Slotframe(0, 10)
        with pytest.raises(ValueError):
            sf.add_cell(tx_cell(10))

    def test_duplicate_add_is_idempotent(self):
        sf = Slotframe(0, 10)
        first = sf.add_cell(tx_cell(1, neighbor=5))
        second = sf.add_cell(tx_cell(1, neighbor=5))
        assert first is second
        assert len(sf) == 1

    def test_add_sets_handle(self):
        sf = Slotframe(3, 10)
        cell = sf.add_cell(tx_cell(1))
        assert cell.slotframe_handle == 3


class TestSlotframeQueries:
    def test_cells_at_wraps_with_asn(self):
        sf = Slotframe(0, 7)
        cell = sf.add_cell(tx_cell(3))
        assert sf.cells_at(3) == [cell]
        assert sf.cells_at(10) == [cell]
        assert sf.cells_at(4) == []

    def test_find_cell_filters(self):
        sf = Slotframe(0, 10)
        a = sf.add_cell(tx_cell(1, channel=2, neighbor=7))
        assert sf.find_cell(1) is a
        assert sf.find_cell(1, channel_offset=2) is a
        assert sf.find_cell(1, neighbor=7) is a
        assert sf.find_cell(1, neighbor=8) is None
        assert sf.find_cell(2) is None

    def test_cells_with_neighbor(self):
        sf = Slotframe(0, 10)
        sf.add_cell(tx_cell(1, neighbor=7))
        sf.add_cell(tx_cell(2, neighbor=8))
        sf.add_cell(tx_cell(3, neighbor=7))
        assert [c.slot_offset for c in sf.cells_with_neighbor(7)] == [1, 3]

    def test_used_and_free_offsets(self):
        sf = Slotframe(0, 5)
        sf.add_cell(tx_cell(1))
        sf.add_cell(tx_cell(3))
        assert sf.used_slot_offsets() == [1, 3]
        assert sf.free_slot_offsets() == [0, 2, 4]

    def test_count_cells_by_option_and_purpose(self):
        sf = Slotframe(0, 10)
        sf.add_cell(Cell(1, 0, CellOption.TX, neighbor=5, purpose=CellPurpose.UNICAST_DATA))
        sf.add_cell(Cell(2, 0, CellOption.RX, neighbor=5, purpose=CellPurpose.UNICAST_DATA))
        sf.add_cell(Cell(3, 0, CellOption.RX, neighbor=6, purpose=CellPurpose.UNICAST_6P))
        assert sf.count_cells(options=CellOption.RX) == 2
        assert sf.count_cells(neighbor=5) == 2
        assert sf.count_cells(purpose=CellPurpose.UNICAST_6P) == 1

    def test_occupancy(self):
        sf = Slotframe(0, 10)
        sf.add_cell(tx_cell(0))
        sf.add_cell(tx_cell(5))
        assert sf.occupancy() == pytest.approx(0.2)


class TestSlotframeRemoval:
    def test_remove_cell(self):
        sf = Slotframe(0, 10)
        cell = sf.add_cell(tx_cell(1))
        assert sf.remove_cell(cell)
        assert len(sf) == 0
        assert not sf.remove_cell(cell)

    def test_remove_cells_with_neighbor(self):
        sf = Slotframe(0, 10)
        sf.add_cell(tx_cell(1, neighbor=7))
        sf.add_cell(tx_cell(2, neighbor=7))
        sf.add_cell(tx_cell(3, neighbor=8))
        assert sf.remove_cells_with_neighbor(7) == 2
        assert len(sf) == 1

    def test_clear(self):
        sf = Slotframe(0, 10)
        sf.add_cell(tx_cell(1))
        sf.clear()
        assert len(sf) == 0

    @given(st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=20))
    def test_free_plus_used_covers_slotframe(self, offsets):
        sf = Slotframe(0, 32)
        for offset in offsets:
            sf.add_cell(tx_cell(offset))
        assert sorted(sf.used_slot_offsets() + sf.free_slot_offsets()) == list(range(32))


class TestCduRendering:
    def test_render_contains_labels(self):
        sf = Slotframe(0, 6)
        sf.add_cell(Cell(1, 2, CellOption.TX, neighbor=4))
        sf.add_cell(Cell(3, 0, CellOption.RX, neighbor=None))
        grid = render_cdu_matrix([sf], num_channels=4)
        assert grid[2][1] == "Tx->4"
        assert grid[0][3] == "Rx->*"
        assert grid[0][0] == ""

    def test_render_merges_multiple_cells(self):
        sf = Slotframe(0, 4)
        sf.add_cell(Cell(1, 1, CellOption.TX, neighbor=2))
        sf.add_cell(Cell(1, 1, CellOption.RX, neighbor=3))
        grid = render_cdu_matrix([sf], num_channels=2)
        assert "Tx->2" in grid[1][1] and "Rx->3" in grid[1][1]


class TestVersionTracking:
    def test_version_bumps_on_every_mutation(self):
        sf = Slotframe(handle=0, length=10)
        v0 = sf.version
        cell = sf.add_cell(Cell(slot_offset=1, channel_offset=0, options=CellOption.TX))
        assert sf.version > v0
        v1 = sf.version
        sf.remove_cell(cell)
        assert sf.version > v1
        v2 = sf.version
        sf.add_cell(Cell(slot_offset=2, channel_offset=0, options=CellOption.RX, neighbor=7))
        sf.remove_cells_with_neighbor(7)
        assert sf.version > v2
        v3 = sf.version
        sf.clear()
        assert sf.version > v3

    def test_duplicate_add_does_not_bump_version(self):
        sf = Slotframe(handle=0, length=10)
        cell = Cell(slot_offset=1, channel_offset=0, options=CellOption.TX)
        sf.add_cell(cell)
        version = sf.version
        sf.add_cell(Cell(slot_offset=1, channel_offset=0, options=CellOption.TX))
        assert sf.version == version

    def test_on_change_callback_fires(self):
        sf = Slotframe(handle=0, length=10)
        calls = []
        sf.on_change = lambda: calls.append(True)
        sf.add_cell(Cell(slot_offset=1, channel_offset=0, options=CellOption.TX))
        assert calls

    def test_add_cell_out_of_range_raises_value_error(self):
        sf = Slotframe(handle=0, length=10)
        with pytest.raises(ValueError):
            sf.add_cell(Cell(slot_offset=12, channel_offset=0, options=CellOption.TX))

    def test_cells_at_is_constant_time_lookup(self):
        sf = Slotframe(handle=0, length=10)
        cell = sf.add_cell(Cell(slot_offset=4, channel_offset=0, options=CellOption.RX))
        # The same bucket object is returned for every equivalent ASN.
        assert sf.cells_at(4) is sf.cells_at(14)
        assert sf.cells_at(4) == [cell]
        assert sf.cells_at(5) == []


class TestParticipantIndexInvalidation:
    """A 6top ADD/DELETE mid-run must reach the network's participant index
    through the Slotframe.on_change push chain before the next slot."""

    def _network(self):
        from repro.net.network import Network
        from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig

        network = Network()
        for node_id in (1, 2):
            network.add_node(
                node_id,
                position=(float(node_id), 0.0),
                scheduler=MinimalScheduler(MinimalSchedulerConfig()),
                is_root=node_id == 1,
            )
        return network

    def test_sixtop_add_updates_index_before_next_slot(self):
        network = self._network()
        engine = network.nodes[2].tsch
        frame = engine.add_slotframe(0, 10)
        assert network._participants_at(3) == []
        # A 6top ADD transaction ends with both peers installing the
        # negotiated cell -- the Slotframe mutation below is that final step.
        cell = frame.add_cell(
            Cell(slot_offset=3, channel_offset=0, options=CellOption.TX, neighbor=1)
        )
        assert network._participants_at(3) == [network.nodes[2]]
        assert network.next_active_asn(0) == 3
        # 6top DELETE: the cell disappears from the index immediately too.
        frame.remove_cell(cell)
        assert network._participants_at(3) == []
        assert network.next_active_asn(0) is None

    def test_add_mid_run_is_visible_at_the_very_next_slot(self):
        network = self._network()
        network.run_slots(9)
        engine = network.nodes[1].tsch
        # A fresh slotframe next to the minimal scheduler's own (handle 0).
        frame = engine.add_slotframe(5, 4)
        asn = network.clock.asn
        assert network.nodes[1] not in network._participants_at(asn)
        frame.add_cell(Cell(slot_offset=asn % 4, channel_offset=0, options=CellOption.RX))
        # The index answers for the current ASN without any slot being stepped.
        assert network.nodes[1] in network._participants_at(asn)

    def test_participants_ordered_by_node_insertion(self):
        network = self._network()
        # Install cells in reverse node order; the bucket must still come out
        # in node-insertion order (the dispatch kernel's RNG-order contract).
        frame2 = network.nodes[2].tsch.add_slotframe(0, 8)
        frame2.add_cell(Cell(slot_offset=2, channel_offset=0, options=CellOption.RX))
        frame1 = network.nodes[1].tsch.add_slotframe(0, 8)
        frame1.add_cell(Cell(slot_offset=2, channel_offset=0, options=CellOption.TX))
        assert network._participants_at(2) == [network.nodes[1], network.nodes[2]]

    def test_multi_length_participants_merge_and_dedupe(self):
        network = self._network()
        first = network.nodes[1].tsch.add_slotframe(0, 4)
        first.add_cell(Cell(slot_offset=0, channel_offset=0, options=CellOption.RX))
        second = network.nodes[1].tsch.add_slotframe(1, 6)
        second.add_cell(Cell(slot_offset=0, channel_offset=0, options=CellOption.RX))
        other = network.nodes[2].tsch.add_slotframe(0, 6)
        other.add_cell(Cell(slot_offset=0, channel_offset=0, options=CellOption.TX, neighbor=1))
        # ASN 0 hits every frame; node 1 appears once despite two frames.
        assert network._participants_at(0) == [network.nodes[1], network.nodes[2]]
        # ASN 4 hits only the length-4 frame of node 1.
        assert network._participants_at(4) == [network.nodes[1]]
