"""Tests for the named RNG registry."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("phy") is registry.stream("phy")

    def test_different_names_give_independent_streams(self):
        registry = RngRegistry(seed=1)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproduces_sequences(self):
        first = RngRegistry(seed=42)
        second = RngRegistry(seed=42)
        assert [first.stream("x").random() for _ in range(10)] == [
            second.stream("x").random() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        first = RngRegistry(seed=1)
        second = RngRegistry(seed=2)
        assert first.stream("x").random() != second.stream("x").random()

    def test_stream_isolation_under_extra_draws(self):
        """Adding draws on one stream must not perturb another stream."""
        baseline = RngRegistry(seed=9)
        expected = [baseline.stream("traffic").random() for _ in range(3)]

        perturbed = RngRegistry(seed=9)
        for _ in range(100):
            perturbed.stream("phy").random()
        observed = [perturbed.stream("traffic").random() for _ in range(3)]
        assert observed == expected

    def test_reset_recreates_streams(self):
        registry = RngRegistry(seed=5)
        first = registry.stream("a").random()
        registry.reset()
        assert registry.stream("a").random() == first

    def test_seed_is_stored_as_int(self):
        registry = RngRegistry(seed=7)
        assert registry.seed == 7
