"""Tests for the event queue and periodic timers."""

import random

import pytest

from repro.sim.events import EventQueue, PeriodicTimer


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, fired.append, "b")
        queue.schedule(1.0, fired.append, "a")
        queue.schedule(3.0, fired.append, "c")
        queue.run_until(5.0)
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for label in ("first", "second", "third"):
            queue.schedule(1.0, fired.append, label)
        queue.run_until(1.0)
        assert fired == ["first", "second", "third"]

    def test_run_until_is_inclusive(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, fired.append, "x")
        queue.run_until(1.0)
        assert fired == ["x"]

    def test_events_after_window_stay_pending(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, fired.append, "later")
        assert queue.run_until(1.0) == 0
        assert fired == []
        assert len(queue) == 1

    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, fired.append, "x")
        event.cancel()
        queue.run_until(2.0)
        assert fired == []

    def test_schedule_in_is_relative_to_now(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: queue.schedule_in(1.0, fired.append, "nested"))
        queue.run_until(3.0)
        assert fired == ["nested"]
        assert queue.now == 3.0

    def test_callbacks_can_schedule_within_window(self):
        queue = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                queue.schedule_in(0.5, chain, n + 1)

        queue.schedule(0.5, chain, 1)
        queue.run_until(10.0)
        assert fired == [1, 2, 3]

    def test_past_schedule_clamped_to_now(self):
        queue = EventQueue()
        queue.run_until(5.0)
        fired = []
        queue.schedule(1.0, fired.append, "late")
        queue.run_until(5.0)
        assert fired == ["late"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 2.0

    def test_len_counts_only_pending(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        drop = queue.schedule(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_until(0.5)
        queue.clear()
        assert len(queue) == 0
        assert queue.now == 0.0

    def test_kwargs_are_passed(self):
        queue = EventQueue()
        result = {}
        queue.schedule(1.0, result.update, value=42)
        queue.run_until(1.0)
        assert result == {"value": 42}


class TestPeriodicTimer:
    def test_fires_every_period(self):
        queue = EventQueue()
        count = []
        timer = PeriodicTimer(queue, 1.0, lambda: count.append(1))
        timer.start()
        queue.run_until(5.5)
        assert len(count) == 5

    def test_start_offset(self):
        queue = EventQueue()
        times = []
        timer = PeriodicTimer(queue, 2.0, lambda: times.append(queue.now), start_offset=0.5)
        timer.start()
        queue.run_until(5.0)
        assert times == pytest.approx([0.5, 2.5, 4.5])

    def test_stop(self):
        queue = EventQueue()
        count = []
        timer = PeriodicTimer(queue, 1.0, lambda: count.append(1))
        timer.start()
        queue.run_until(2.5)
        timer.stop()
        queue.run_until(10.0)
        assert len(count) == 2
        assert not timer.running

    def test_callback_returning_false_stops_timer(self):
        queue = EventQueue()
        count = []

        def callback():
            count.append(1)
            return False

        timer = PeriodicTimer(queue, 1.0, callback)
        timer.start()
        queue.run_until(10.0)
        assert len(count) == 1
        assert not timer.running

    def test_double_start_is_idempotent(self):
        queue = EventQueue()
        count = []
        timer = PeriodicTimer(queue, 1.0, lambda: count.append(1))
        timer.start()
        timer.start()
        queue.run_until(3.5)
        assert len(count) == 3

    def test_rejects_non_positive_period(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            PeriodicTimer(queue, 0.0, lambda: None)

    def test_jitter_requires_rng(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            PeriodicTimer(queue, 1.0, lambda: None, jitter=0.2)

    def test_jittered_periods_stay_within_bounds(self):
        queue = EventQueue()
        times = []
        timer = PeriodicTimer(
            queue,
            1.0,
            lambda: times.append(queue.now),
            start_offset=0.0,
            jitter=0.25,
            rng=random.Random(3),
        )
        timer.start()
        queue.run_until(20.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps, "timer should have fired repeatedly"
        assert all(0.75 - 1e-9 <= gap <= 1.25 + 1e-9 for gap in gaps)
        # Jitter must actually vary the period.
        assert len({round(gap, 6) for gap in gaps}) > 1


class TestHeapCompaction:
    def test_cancelled_entries_are_compacted(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(40)]
        assert len(queue._heap) == 40
        # Cancelling more than half the heap triggers a compaction sweep.
        for event in events[:30]:
            event.cancel()
        assert queue.compactions >= 1
        # The sweep dropped every entry cancelled before it fired; the few
        # cancelled afterwards wait for the next sweep.
        assert len(queue._heap) < 30
        assert len(queue) == 10

    def test_compaction_preserves_firing_order(self):
        queue = EventQueue()
        fired = []
        keep = []
        cancel = []
        for i in range(50):
            event = queue.schedule(float(i % 5), fired.append, i)
            (cancel if i % 2 else keep).append(event)
        for event in cancel:
            event.cancel()
        queue.run_until(10.0)
        # Only the kept events fire, in (time, insertion) order.
        expected = sorted((i for i in range(50) if i % 2 == 0), key=lambda i: (i % 5, i))
        assert fired == expected

    def test_small_heaps_are_not_compacted(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(8)]
        for event in events:
            event.cancel()
        assert queue.compactions == 0
        assert len(queue) == 0

    def test_cancel_after_fire_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        later = [queue.schedule(2.0 + i, lambda: None) for i in range(20)]
        queue.run_until(1.5)
        event.cancel()  # already fired and popped: must not count as heaped
        assert len(queue) == 20
        for item in later:
            item.cancel()
        assert len(queue) == 0

    def test_len_is_exact_after_mixed_operations(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(30)]
        for event in events[::3]:
            event.cancel()
        assert len(queue) == 20
        queue.run_until(100.0)
        assert len(queue) == 0
