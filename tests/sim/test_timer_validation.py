"""Validation of delays and periods fed to the event-queue machinery.

``EventQueue.schedule_in`` has rejected NaN delays since the original NaN
clamp bug; these tests cover the sibling hardening: ``reschedule_in`` (both
the flat queue's and the timer wheel's) rejects non-finite and negative
re-arm delays outright, and ``PeriodicTimer`` refuses non-finite periods at
construction and validates each ``period_fn`` draw before it reaches the
heap.
"""

from __future__ import annotations

import math

import pytest

from repro.sim.events import EventQueue, PeriodicTimer

NON_FINITE = (float("nan"), float("inf"), float("-inf"))


class TestRescheduleInValidation:
    def _popped_event(self, queue):
        event = queue.schedule_in(0.0, lambda: None)
        queue.run_until(0.0)
        return event

    @pytest.mark.parametrize("delay", NON_FINITE)
    def test_queue_rejects_non_finite_delay(self, delay):
        queue = EventQueue()
        event = self._popped_event(queue)
        with pytest.raises(ValueError, match="finite"):
            queue.reschedule_in(event, delay)

    def test_queue_rejects_negative_delay(self):
        queue = EventQueue()
        event = self._popped_event(queue)
        with pytest.raises(ValueError, match="non-negative"):
            queue.reschedule_in(event, -0.5)

    @pytest.mark.parametrize("delay", NON_FINITE)
    def test_wheel_rejects_non_finite_delay(self, delay):
        queue = EventQueue()
        wheel = queue.wheel("test")
        event = wheel.schedule_in(0.0, lambda: None)
        queue.run_until(0.0)
        with pytest.raises(ValueError, match="finite"):
            wheel.reschedule_in(event, delay)

    def test_wheel_rejects_negative_delay(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        event = wheel.schedule_in(0.0, lambda: None)
        queue.run_until(0.0)
        with pytest.raises(ValueError, match="non-negative"):
            wheel.reschedule_in(event, -1.0)

    def test_zero_delay_still_allowed(self):
        queue = EventQueue()
        event = self._popped_event(queue)
        queue.reschedule_in(event, 0.0)
        assert queue.peek_time() == 0.0

    def test_schedule_in_keeps_negative_clamp(self):
        # The documented behaviour for fresh schedules is unchanged: a timer
        # computed from stale state fires immediately instead of raising.
        queue = EventQueue()
        queue.run_until(5.0)
        queue.schedule_in(-1.0, lambda: None)
        assert queue.peek_time() == 5.0

    def test_schedule_in_still_rejects_nan(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule_in(float("nan"), lambda: None)


class TestPeriodicTimerValidation:
    @pytest.mark.parametrize("period", NON_FINITE)
    def test_rejects_non_finite_period(self, period):
        queue = EventQueue()
        with pytest.raises(ValueError, match="positive and finite"):
            PeriodicTimer(queue, period, lambda: None)

    @pytest.mark.parametrize("period", (0.0, -1.0))
    def test_rejects_non_positive_period(self, period):
        queue = EventQueue()
        with pytest.raises(ValueError, match="positive"):
            PeriodicTimer(queue, period, lambda: None)

    @pytest.mark.parametrize("bad", NON_FINITE + (-0.25,))
    def test_period_fn_draw_is_validated_at_tick(self, bad):
        queue = EventQueue()
        timer = PeriodicTimer(queue, 1.0, lambda: None, period_fn=lambda: bad)
        timer.start()
        # The first firing uses the (validated) start offset; the re-arm
        # consults period_fn and must fail loudly instead of corrupting the
        # heap or spinning at the current instant.
        with pytest.raises(ValueError, match="period_fn"):
            queue.run_until(1.0)

    def test_valid_period_fn_keeps_ticking(self):
        queue = EventQueue()
        fired = []
        timer = PeriodicTimer(
            queue, 1.0, lambda: fired.append(queue.now), period_fn=lambda: 0.5
        )
        timer.start()
        queue.run_until(2.0)
        assert fired == [1.0, 1.5, 2.0]
        assert all(math.isfinite(t) for t in fired)
