"""Tests for the timer-wheel subsystem: cohort sub-queues behind one head.

The wheel's contract is *exact equivalence* with flat scheduling: member
events fire at the same times and in the same global order (including ties at
one instant, which follow creation order), timers draw the same rng numbers,
and a full simulation run with wheels disabled finalizes bit-identical
metrics for every scheduler.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.sim.events import EventQueue, PeriodicTimer


class TestWheelOrdering:
    def test_wheel_members_interleave_with_flat_events_by_time(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        fired = []
        queue.schedule(2.0, fired.append, "flat-2")
        wheel.schedule(1.0, fired.append, "wheel-1")
        queue.schedule(0.5, fired.append, "flat-0.5")
        wheel.schedule(3.0, fired.append, "wheel-3")
        queue.run_until(5.0)
        assert fired == ["flat-0.5", "wheel-1", "flat-2", "wheel-3"]

    def test_same_instant_ties_follow_creation_order(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        other = queue.wheel("other")
        fired = []
        queue.schedule(1.0, fired.append, "a")
        wheel.schedule(1.0, fired.append, "b")
        queue.schedule(1.0, fired.append, "c")
        other.schedule(1.0, fired.append, "d")
        wheel.schedule(1.0, fired.append, "e")
        queue.run_until(1.0)
        assert fired == ["a", "b", "c", "d", "e"]

    def test_callbacks_can_schedule_into_the_window(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                wheel.schedule_in(0.5, chain, n + 1)

        wheel.schedule(0.5, chain, 1)
        queue.run_until(10.0)
        assert fired == [1, 2, 3]

    def test_peek_time_sees_wheel_heads(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        queue.schedule(5.0, lambda: None)
        wheel.schedule(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_len_counts_wheel_members(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        queue.schedule(1.0, lambda: None)
        wheel.schedule(2.0, lambda: None)
        wheel.schedule(3.0, lambda: None)
        assert len(queue) == 3
        assert len(wheel) == 2

    def test_clear_drops_wheel_members(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        wheel.schedule(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.peek_time() is None


class TestWheelCancellation:
    def test_cancelled_members_do_not_fire(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        fired = []
        event = wheel.schedule(1.0, fired.append, "x")
        wheel.schedule(2.0, fired.append, "y")
        event.cancel()
        queue.run_until(5.0)
        assert fired == ["y"]

    def test_cancelled_head_is_skipped_by_peek(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        head = wheel.schedule(1.0, lambda: None)
        wheel.schedule(4.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 4.0

    def test_wheel_compaction(self):
        queue = EventQueue()
        wheel = queue.wheel("test")
        events = [wheel.schedule(float(i), lambda: None) for i in range(40)]
        for event in events[:30]:
            event.cancel()
        assert wheel.compactions >= 1
        assert len(wheel) == 10


class TestWheelRegistry:
    def test_wheel_is_memoised_by_name(self):
        queue = EventQueue()
        assert queue.wheel("a") is queue.wheel("a")
        assert queue.wheel("a") is not queue.wheel("b")

    def test_disabled_queue_returns_none(self):
        queue = EventQueue(use_wheels=False)
        assert queue.wheel("a") is None

    def test_stats_reports_wheels(self):
        queue = EventQueue()
        wheel = queue.wheel("eb")
        wheel.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        stats = queue.stats()
        assert stats["live"] == 2
        assert stats["wheels"]["eb"]["members"] == 1
        queue.run_until(5.0)
        assert queue.stats()["wheels"]["eb"]["fired"] == 1


class TestNaNRejection:
    def test_queue_schedule_in_rejects_nan(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="NaN"):
            queue.schedule_in(float("nan"), lambda: None)

    def test_wheel_schedule_in_rejects_nan(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="NaN"):
            queue.wheel("w").schedule_in(float("nan"), lambda: None)

    def test_negative_delay_still_clamps_to_now(self):
        queue = EventQueue()
        queue.run_until(5.0)
        fired = []
        queue.schedule_in(-1.0, fired.append, "x")
        queue.run_until(5.0)
        assert fired == ["x"]


class TestPeriodicTimerOnWheel:
    def _firing_times(self, wheel: bool, jitter: float = 0.25):
        queue = EventQueue()
        times = []
        timer = PeriodicTimer(
            queue,
            1.0,
            lambda: times.append(queue.now),
            start_offset=0.3,
            jitter=jitter,
            rng=random.Random(7),
            wheel=queue.wheel("t") if wheel else None,
        )
        timer.start()
        queue.run_until(20.0)
        return times

    def test_wheel_and_flat_timers_fire_identically(self):
        assert self._firing_times(wheel=True) == self._firing_times(wheel=False)

    def test_idle_probe_settles_ticks_without_callback(self):
        queue = EventQueue()
        fired = []
        gate = {"idle": True}
        timer = PeriodicTimer(
            queue,
            1.0,
            lambda: fired.append(queue.now),
            start_offset=0.5,
            wheel=queue.wheel("t"),
            idle_probe=lambda: gate["idle"],
        )
        timer.start()
        queue.run_until(3.0)
        assert fired == []
        assert timer.settled_ticks == 3
        # The cadence survives settling: once the probe releases, firing
        # resumes at exactly the next period boundary.
        gate["idle"] = False
        queue.run_until(5.0)
        assert fired == pytest.approx([3.5, 4.5])

    def test_probe_side_is_not_consulted_after_stop(self):
        queue = EventQueue()
        probes = []
        timer = PeriodicTimer(
            queue,
            1.0,
            lambda: None,
            wheel=queue.wheel("t"),
            idle_probe=lambda: probes.append(1) or True,
        )
        timer.start()
        queue.run_until(2.5)
        timer.stop()
        queue.run_until(10.0)
        assert len(probes) == 2


class TestScenarioEquivalence:
    """Wheels on vs wheels off: finalized metrics must be bit-identical."""

    @pytest.mark.parametrize("scheduler", ["6TiSCH-minimal", "Orchestra", "GT-TSCH"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_metrics_bit_identical(self, scheduler, seed):
        from repro.experiments.scenarios import traffic_load_scenario

        def run(timer_wheels):
            scenario = traffic_load_scenario(
                rate_ppm=60.0,
                scheduler=scheduler,
                seed=seed,
                measurement_s=8.0,
                warmup_s=6.0,
            )
            network = scenario.build_network()
            network.events.use_wheels = timer_wheels
            if not timer_wheels:
                # Rebuild so every protocol timer lands on the flat heap.
                from repro.net.network import Network

                network = Network(
                    propagation=scenario.propagation
                    or type(network.medium.propagation)(),
                    seed=scenario.seed,
                    default_node_config=scenario.contiki.node_config(),
                    timer_wheels=False,
                )
                network.build_from_topology(
                    scenario.topology,
                    scenario._scheduler_factory(),
                    scenario._traffic_factory(),
                    warm_start=scenario.warm_start,
                )
            metrics = network.run_experiment(
                warmup_s=6.0, measurement_s=8.0, drain_s=2.0, scheduler_name=scheduler
            )
            return network, metrics

        wheel_net, with_wheels = run(True)
        flat_net, without_wheels = run(False)
        assert dataclasses.asdict(with_wheels) == dataclasses.asdict(without_wheels)
        assert wheel_net.clock.asn == flat_net.clock.asn
        assert (
            wheel_net.medium.total_transmissions == flat_net.medium.total_transmissions
        )
        # The wheel run actually used cohorts; the flat run did not.
        assert wheel_net.events.stats()["wheels"]
        assert not flat_net.events.stats()["wheels"]
