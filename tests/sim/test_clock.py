"""Tests for the simulation clock (seconds <-> ASN)."""

import pytest

from repro.sim.clock import DEFAULT_SLOT_DURATION_S, SimClock


class TestSimClock:
    def test_starts_at_asn_zero(self):
        clock = SimClock()
        assert clock.asn == 0
        assert clock.now == 0.0

    def test_default_slot_duration_matches_paper(self):
        assert DEFAULT_SLOT_DURATION_S == pytest.approx(0.015)

    def test_advance_slot_increments_asn(self):
        clock = SimClock()
        assert clock.advance_slot() == 1
        assert clock.advance_slot() == 2
        assert clock.asn == 2

    def test_now_tracks_slot_duration(self):
        clock = SimClock(slot_duration_s=0.01)
        for _ in range(10):
            clock.advance_slot()
        assert clock.now == pytest.approx(0.1)

    def test_seconds_to_slots_rounds_to_whole_slots(self):
        clock = SimClock(slot_duration_s=0.015)
        assert clock.seconds_to_slots(0.015) == 1
        assert clock.seconds_to_slots(1.0) == 67
        assert clock.seconds_to_slots(0.48) == 32

    def test_seconds_to_slots_never_returns_zero(self):
        clock = SimClock()
        assert clock.seconds_to_slots(0.0) == 1
        assert clock.seconds_to_slots(-5.0) == 1
        assert clock.seconds_to_slots(1e-9) == 1

    def test_slots_to_seconds_roundtrip(self):
        clock = SimClock(slot_duration_s=0.015)
        assert clock.slots_to_seconds(100) == pytest.approx(1.5)

    def test_reset(self):
        clock = SimClock()
        clock.advance_slot()
        clock.reset()
        assert clock.asn == 0
        assert clock.now == 0.0

    def test_rejects_non_positive_slot_duration(self):
        with pytest.raises(ValueError):
            SimClock(slot_duration_s=0.0)
        with pytest.raises(ValueError):
            SimClock(slot_duration_s=-0.01)
